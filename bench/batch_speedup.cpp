// Engineering bench (not a paper figure): BatchRunner wall-clock scaling
// and CachingBackend memoization, measured at corpus-forge scale.
//
// The hand-written corpus (126 cases) is too small to say anything about
// batching, so this bench sweeps a procedurally generated corpus of >= 500
// cases — forged in-process at a fixed seed by default, or loaded from a
// file saved by examples/corpus_forge:
//
//   $ ./bench/batch_speedup                      # forge 560 cases at seed 42
//   $ ./bench/batch_speedup --count 1000         # bigger in-process forge
//   $ ./bench/batch_speedup --corpus forged.rbc  # saved corpus
//
// The flagship configuration runs at 1, 2, 4, 8 workers — every engine
// built from the registry over a knowledge base seeded from the SAME
// generated corpus, every cached run sharing one PromptCache AND one
// verify::Oracle — and reports wall time, speedup vs serial, the LLM and
// verify cache hit rates each run observed, and a cross-check that every
// run (cached or not, at any worker count) is bit-identical to the fully
// uncached serial baseline: the determinism contract that makes worker
// count and both caches pure performance knobs.
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <exception>
#include <string>

#include "common.hpp"
#include "core/batch_runner.hpp"
#include "core/thinking_policy.hpp"
#include "gen/corpus_io.hpp"
#include "gen/forge.hpp"
#include "llm/caching_backend.hpp"
#include "support/thread_pool.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

namespace {

/// "proven/likely/unknown" verdict-mix cell.
std::string screen_cell(std::uint64_t proven, std::uint64_t likely,
                        std::uint64_t unknown) {
    return std::to_string(proven) + "/" + std::to_string(likely) + "/" +
           std::to_string(unknown);
}

// Compares every behavior field; the screen_* counters are deliberately
// excluded — they are pure observability and legitimately differ
// screen-on vs screen-off.
bool identical(const core::BatchReport& a, const core::BatchReport& b) {
    if (a.results.size() != b.results.size()) return false;
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const core::CaseResult& x = a.results[i];
        const core::CaseResult& y = b.results[i];
        if (x.case_id != y.case_id || x.pass != y.pass || x.exec != y.exec ||
            x.time_ms != y.time_ms || x.final_source != y.final_source ||
            x.winning_rule != y.winning_rule || x.llm_calls != y.llm_calls ||
            x.solutions_generated != y.solutions_generated ||
            x.steps_executed != y.steps_executed ||
            x.rollbacks != y.rollbacks || x.kb_consulted != y.kb_consulted ||
            x.kb_skipped_by_feedback != y.kb_skipped_by_feedback ||
            x.thinking_switches != y.thinking_switches ||
            x.escalations != y.escalations || x.early_stops != y.early_stops ||
            x.attempts_skipped != y.attempts_skipped ||
            x.error_trajectory != y.error_trajectory ||
            x.time_breakdown != y.time_breakdown) {
            return false;
        }
    }
    return a.clock.now_ms() == b.clock.now_ms() &&
           a.clock.breakdown() == b.clock.breakdown();
}

}  // namespace

int main(int argc, char** argv) {
    std::string corpus_path;
    std::size_t count = 560;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--corpus" && i + 1 < argc) {
            corpus_path = argv[++i];
        } else if (arg == "--count" && i + 1 < argc) {
            const char* text = argv[++i];
            char* end = nullptr;
            const unsigned long value = std::strtoul(text, &end, 10);
            if (end == text || *end != '\0' || value == 0) {
                std::printf("error: --count expects a positive number, "
                            "got '%s'\n",
                            text);
                return 2;
            }
            count = static_cast<std::size_t>(value);
        } else {
            std::printf("usage: %s [--corpus <file>] [--count N]\n", argv[0]);
            return 2;
        }
    }

    dataset::Corpus big_corpus;
    try {
        if (corpus_path.empty()) {
            gen::ForgeOptions forge_options;
            forge_options.seed = 42;
            forge_options.count = count;
            big_corpus = gen::forge_corpus(forge_options);
            std::printf("forged %zu cases in-process at seed 42\n",
                        big_corpus.size());
        } else {
            big_corpus = gen::load_corpus(corpus_path);
            std::printf("loaded %zu cases from %s\n", big_corpus.size(),
                        corpus_path.c_str());
        }
    } catch (const std::exception& error) {
        std::printf("error: %s\n", error.what());
        return 1;
    }

    // The knowledge base is seeded from the generated corpus itself —
    // seeding takes an arbitrary corpus, not just the standard one.
    kb::KnowledgeBase kbase;
    kb::seed_from_corpus(big_corpus, kbase);
    core::EngineBuildContext context;
    context.knowledge_base = &kbase;

    const std::string engine_id = "rustbrain";
    const core::EngineOptions options = core::EngineOptions::parse("model=gpt-4");

    // Fully uncached serial baseline: no prompt cache, and a verify::Oracle
    // that recomputes every compile and every interpretation — the
    // reference every other run must match bit-for-bit.
    core::EngineBuildContext uncached_context = context;
    {
        verify::OracleOptions oracle_options;
        oracle_options.caching = false;
        uncached_context.oracle =
            std::make_shared<verify::Oracle>(std::move(oracle_options));
    }

    std::printf("== BatchRunner scaling: %zu-case sweep, gpt-4 + knowledge "
                "base ==\n",
                big_corpus.size());
    // Which interpreter executes uncached verifications (RUSTBRAIN_INTERP
    // selects it; every run below uses the same tier, so the speedups stay
    // comparable).
    std::printf("hardware threads: %zu, interpreter tier: %s\n\n",
                support::ThreadPool::hardware_threads(),
                verify::to_string(uncached_context.oracle->interp_tier()));
    const core::BatchRunner serial_runner(engine_id, options, uncached_context,
                                          core::BatchOptions{1});
    const core::BatchReport serial = serial_runner.run(big_corpus);
    std::printf("%zu cases, %d pass / %d exec, %.1f virtual minutes\n\n",
                serial.results.size(), serial.pass_total(), serial.exec_total(),
                serial.virtual_ms_total() / 60000.0);

    // Every subsequent run shares one prompt cache and one verification
    // oracle: the first run fills them, repeat configurations answer from
    // them.
    const auto cache = std::make_shared<llm::PromptCache>();
    core::EngineBuildContext cached_context = context;
    cached_context.backend_factory = llm::caching_backend_factory(cache);
    verify::OracleOptions oracle_options;
    oracle_options.cache = std::make_shared<verify::VerifyCache>();
    oracle_options.caching = true;
    cached_context.oracle =
        std::make_shared<verify::Oracle>(std::move(oracle_options));

    support::TextTable table({"workers", "wall (ms)", "speedup", "llm hits",
                              "verify hits", "screen p/l/u",
                              "bit-identical to serial"});
    table.add_row({"1 (no cache)", support::format_double(serial.wall_ms, 0),
                   "1.00x", "-", "-", "-", "-"});
    llm::PromptCacheStats llm_before = cache->stats();
    verify::VerifyCacheStats verify_before = cached_context.oracle->stats();
    verify::ScreenStats screen_before = cached_context.oracle->screen_stats();
    verify::VerifyCacheStats last_delta;
    core::BatchReport last_report;
    std::size_t last_workers = 0;
    for (std::size_t workers : {1UL, 2UL, 4UL, 8UL}) {
        core::BatchRunner runner(engine_id, options, cached_context,
                                 core::BatchOptions{workers});
        const core::BatchReport report = runner.run(big_corpus);
        const llm::PromptCacheStats llm_after = cache->stats();
        const std::uint64_t llm_hits = llm_after.hits - llm_before.hits;
        const std::uint64_t llm_calls = (llm_after.hits + llm_after.misses) -
                                        (llm_before.hits + llm_before.misses);
        llm_before = llm_after;
        const verify::VerifyCacheStats verify_after =
            cached_context.oracle->stats();
        last_delta = verify_delta(verify_before, verify_after);
        verify_before = verify_after;
        const verify::ScreenStats screen_after =
            cached_context.oracle->screen_stats();
        table.add_row(
            {std::to_string(workers),
             support::format_double(report.wall_ms, 0),
             support::format_double(serial.wall_ms / report.wall_ms, 2) + "x",
             hit_rate_cell(llm_hits, llm_calls),
             hit_rate_cell(last_delta.report_hits,
                           last_delta.report_hits + last_delta.report_misses),
             screen_cell(screen_after.proven_safe - screen_before.proven_safe,
                         screen_after.likely_ub - screen_before.likely_ub,
                         screen_after.unknown - screen_before.unknown),
             identical(serial, report) ? "yes" : "NO (BUG)"});
        screen_before = screen_after;
        last_report = report;
        last_workers = workers;
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("aggregate virtual-time breakdown of the last run "
                "(%zu workers):\n%s\n",
                last_workers, time_breakdown_table(last_report, &last_delta).c_str());

    // Per-policy aggregate: the same corpus under every registered thinking
    // policy (all runs share the caches above). The switch tallies come
    // from the ThinkingSwitch trace events each CaseResult surfaces;
    // bench/policy_ablation is the dedicated (feedback-warmed) study.
    support::TextTable policy_table({"policy", "pass", "exec", "virtual min",
                                     "switches", "escal", "stops", "skips",
                                     "screen p/l/u"});
    for (const std::string& policy_id :
         core::PolicyRegistry::builtin().ids()) {
        // Same engine configuration as the scaling rows, policy swapped in.
        core::EngineOptions policy_options = options;
        core::set_policy_option(policy_options, policy_id);
        const core::BatchRunner runner(engine_id, policy_options,
                                       cached_context, core::BatchOptions{});
        const core::BatchReport report = runner.run(big_corpus);
        int switches = 0;
        int escalations = 0;
        int early_stops = 0;
        int skips = 0;
        std::uint64_t proven = 0;
        std::uint64_t likely = 0;
        std::uint64_t unknown = 0;
        for (const core::CaseResult& result : report.results) {
            switches += result.thinking_switches;
            escalations += result.escalations;
            early_stops += result.early_stops;
            skips += result.attempts_skipped;
            proven += static_cast<std::uint64_t>(result.screen_proven_safe);
            likely += static_cast<std::uint64_t>(result.screen_likely_ub);
            unknown += static_cast<std::uint64_t>(result.screen_unknown);
        }
        policy_table.add_row(
            {policy_id, std::to_string(report.pass_total()),
             std::to_string(report.exec_total()),
             support::format_double(report.virtual_ms_total() / 60000.0, 1),
             std::to_string(switches), std::to_string(escalations),
             std::to_string(early_stops), std::to_string(skips),
             screen_cell(proven, likely, unknown)});
    }
    std::printf("aggregate per thinking policy (same corpus, shared "
                "caches):\n%s\n",
                policy_table.render().c_str());
    const llm::PromptCacheStats final_stats = cache->stats();
    std::printf("prompt cache: %zu entries, %llu hits / %llu misses "
                "(%.1f%% overall), %llu shard flushes\n",
                final_stats.entries,
                static_cast<unsigned long long>(final_stats.hits),
                static_cast<unsigned long long>(final_stats.misses),
                100.0 * final_stats.hit_rate(),
                static_cast<unsigned long long>(final_stats.flushes));
    const verify::VerifyCacheStats verify_total =
        cached_context.oracle->stats();
    std::printf("verify cache: %zu compiled programs, %zu memoized reports, "
                "%llu report hits / %llu misses (%.1f%% overall), "
                "%llu program / %llu report shard flushes\n",
                verify_total.programs, verify_total.reports,
                static_cast<unsigned long long>(verify_total.report_hits),
                static_cast<unsigned long long>(verify_total.report_misses),
                100.0 * verify_total.report_hit_rate(),
                static_cast<unsigned long long>(verify_total.program_flushes),
                static_cast<unsigned long long>(verify_total.report_flushes));
    std::printf("static pre-screen: %s\n",
                cached_context.oracle->screen_summary().c_str());
    std::printf("note: speedup saturates at the machine's physical core "
                "count; after the first cached run the sweep answers almost "
                "entirely from both caches, and results are identical at any "
                "worker count, cached or not.\n");
    return 0;
}
