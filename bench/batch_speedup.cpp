// Engineering bench (not a paper figure): BatchRunner wall-clock scaling
// and CachingBackend memoization.
//
// Sweeps the standard corpus with the flagship configuration at 1, 2, 4, 8
// workers — every engine built from the registry, every run sharing one
// PromptCache — and reports wall time, speedup vs serial, the cache hit
// rate each run observed, and a cross-check that every run (cached or
// not, at any worker count) is bit-identical to the uncached serial
// baseline: the determinism contract that makes worker count and the
// cache pure performance knobs.
#include <cstdio>
#include <cmath>

#include "common.hpp"
#include "core/batch_runner.hpp"
#include "llm/caching_backend.hpp"
#include "support/thread_pool.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

namespace {

bool identical(const core::BatchReport& a, const core::BatchReport& b) {
    if (a.results.size() != b.results.size()) return false;
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const core::CaseResult& x = a.results[i];
        const core::CaseResult& y = b.results[i];
        if (x.case_id != y.case_id || x.pass != y.pass || x.exec != y.exec ||
            x.time_ms != y.time_ms || x.final_source != y.final_source ||
            x.winning_rule != y.winning_rule || x.llm_calls != y.llm_calls ||
            x.solutions_generated != y.solutions_generated ||
            x.steps_executed != y.steps_executed ||
            x.rollbacks != y.rollbacks || x.kb_consulted != y.kb_consulted ||
            x.kb_skipped_by_feedback != y.kb_skipped_by_feedback ||
            x.error_trajectory != y.error_trajectory ||
            x.time_breakdown != y.time_breakdown) {
            return false;
        }
    }
    return a.clock.now_ms() == b.clock.now_ms() &&
           a.clock.breakdown() == b.clock.breakdown();
}

}  // namespace

int main() {
    std::printf("== BatchRunner scaling: corpus sweep, gpt-4 + knowledge base ==\n");
    std::printf("hardware threads: %zu\n\n",
                support::ThreadPool::hardware_threads());

    const std::string engine_id = "rustbrain";
    const core::EngineOptions options = core::EngineOptions::parse("model=gpt-4");

    // Uncached serial baseline: the reference every other run must match.
    const core::BatchRunner serial_runner(engine_id, options, kb_context(),
                                          core::BatchOptions{1});
    const core::BatchReport serial = serial_runner.run(corpus());
    std::printf("%zu cases, %d pass / %d exec, %.1f virtual minutes\n\n",
                serial.results.size(), serial.pass_total(), serial.exec_total(),
                serial.virtual_ms_total() / 60000.0);

    // Every subsequent run shares one prompt cache: the first run fills it,
    // repeat configurations answer from it.
    const auto cache = std::make_shared<llm::PromptCache>();
    core::EngineBuildContext cached_context = kb_context();
    cached_context.backend_factory = llm::caching_backend_factory(cache);

    support::TextTable table({"workers", "wall (ms)", "speedup", "cache hits",
                              "bit-identical to serial"});
    table.add_row({"1 (no cache)", support::format_double(serial.wall_ms, 0),
                   "1.00x", "-", "-"});
    llm::PromptCacheStats before = cache->stats();
    for (std::size_t workers : {1UL, 2UL, 4UL, 8UL}) {
        core::BatchRunner runner(engine_id, options, cached_context,
                                 core::BatchOptions{workers});
        const core::BatchReport report = runner.run(corpus());
        const llm::PromptCacheStats after = cache->stats();
        const std::uint64_t hits = after.hits - before.hits;
        const std::uint64_t calls =
            (after.hits + after.misses) - (before.hits + before.misses);
        before = after;
        table.add_row(
            {std::to_string(workers),
             support::format_double(report.wall_ms, 0),
             support::format_double(serial.wall_ms / report.wall_ms, 2) + "x",
             support::format_double(
                 calls == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / calls,
                 1) +
                 "%",
             identical(serial, report) ? "yes" : "NO (BUG)"});
    }
    std::printf("%s\n", table.render().c_str());
    const llm::PromptCacheStats final_stats = cache->stats();
    std::printf("prompt cache: %zu entries, %llu hits / %llu misses "
                "(%.1f%% overall)\n",
                final_stats.entries,
                static_cast<unsigned long long>(final_stats.hits),
                static_cast<unsigned long long>(final_stats.misses),
                100.0 * final_stats.hit_rate());
    std::printf("note: speedup saturates at the machine's physical core "
                "count; after the first cached run the sweep answers almost "
                "entirely from cache, and results are identical at any "
                "worker count, cached or not.\n");
    return 0;
}
