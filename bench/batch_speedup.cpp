// Engineering bench (not a paper figure): BatchRunner wall-clock scaling.
//
// Sweeps the standard corpus with the flagship configuration at 1, 2, 4, 8
// workers, reports wall time and speedup vs serial, and cross-checks that
// every parallel run is bit-identical to the serial one (same CaseResult
// sequence, same aggregate SimClock) — the determinism contract that makes
// worker count a pure performance knob.
#include <cstdio>
#include <cmath>

#include "common.hpp"
#include "core/batch_runner.hpp"
#include "support/thread_pool.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

namespace {

bool identical(const core::BatchReport& a, const core::BatchReport& b) {
    if (a.results.size() != b.results.size()) return false;
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const core::CaseResult& x = a.results[i];
        const core::CaseResult& y = b.results[i];
        if (x.case_id != y.case_id || x.pass != y.pass || x.exec != y.exec ||
            x.time_ms != y.time_ms || x.final_source != y.final_source ||
            x.winning_rule != y.winning_rule || x.llm_calls != y.llm_calls ||
            x.solutions_generated != y.solutions_generated ||
            x.steps_executed != y.steps_executed ||
            x.rollbacks != y.rollbacks || x.kb_consulted != y.kb_consulted ||
            x.kb_skipped_by_feedback != y.kb_skipped_by_feedback ||
            x.error_trajectory != y.error_trajectory ||
            x.time_breakdown != y.time_breakdown) {
            return false;
        }
    }
    return a.clock.now_ms() == b.clock.now_ms() &&
           a.clock.breakdown() == b.clock.breakdown();
}

}  // namespace

int main() {
    std::printf("== BatchRunner scaling: corpus sweep, gpt-4 + knowledge base ==\n");
    std::printf("hardware threads: %zu\n\n",
                support::ThreadPool::hardware_threads());

    const core::RustBrainConfig config = rustbrain_config("gpt-4", true);

    core::BatchRunner serial_runner(config, &knowledge_base(),
                                    core::BatchOptions{1});
    const core::BatchReport serial = serial_runner.run(corpus());
    std::printf("%zu cases, %d pass / %d exec, %.1f virtual minutes\n\n",
                serial.results.size(), serial.pass_total(), serial.exec_total(),
                serial.virtual_ms_total() / 60000.0);

    support::TextTable table(
        {"workers", "wall (ms)", "speedup", "bit-identical to serial"});
    table.add_row({"1", support::format_double(serial.wall_ms, 0), "1.00x", "-"});
    for (std::size_t workers : {2UL, 4UL, 8UL}) {
        core::BatchRunner runner(config, &knowledge_base(),
                                 core::BatchOptions{workers});
        const core::BatchReport report = runner.run(corpus());
        table.add_row({std::to_string(workers),
                       support::format_double(report.wall_ms, 0),
                       support::format_double(serial.wall_ms / report.wall_ms, 2) +
                           "x",
                       identical(serial, report) ? "yes" : "NO (BUG)"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("note: speedup saturates at the machine's physical core "
                "count; results are identical at any worker count.\n");
    return 0;
}
