// Fig. 8 — "RustBrain fixes UBs pass by Miri rate": pass rate per UB
// category for seven configurations (three bare models, three +RustBrain,
// GPT-4+RustBrain without the knowledge base).
#include "common.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

int main() {
    std::printf("== Fig. 8: pass-by-Miri rate (%%) per UB category ==\n\n");

    const std::vector<LabelledRates> configs = seven_standard_configs();

    std::vector<std::string> headers = {"category"};
    for (const auto& config : configs) headers.push_back(config.label);
    support::TextTable table(headers);
    for (miri::UbCategory category : corpus().categories()) {
        std::vector<std::string> row = {miri::ub_category_label(category)};
        for (const auto& config : configs) {
            row.push_back(pct(config.rates.pass_rate(category)));
        }
        table.add_row(std::move(row));
    }
    std::vector<std::string> avg_row = {"AVERAGE"};
    for (const auto& config : configs) {
        avg_row.push_back(pct(config.rates.pass_rate_total()));
    }
    table.add_row(std::move(avg_row));
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "paper headline: GPT-4+RustBrain(+KB) averages 94.3%% pass; "
        "+RustBrain lifts every base model by 25-35 points.\n");
    return 0;
}
