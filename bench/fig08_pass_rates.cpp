// Fig. 8 — "RustBrain fixes UBs pass by Miri rate": pass rate per UB
// category for seven configurations (three bare models, three +RustBrain,
// GPT-4+RustBrain without the knowledge base).
#include "common.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

int main() {
    std::printf("== Fig. 8: pass-by-Miri rate (%%) per UB category ==\n\n");

    struct Config {
        std::string label;
        CategoryRates rates;
    };
    std::vector<Config> configs;

    for (const char* model : {"gpt-3.5", "claude-3.5", "gpt-4"}) {
        baselines::StandaloneLlmRepair solo({model, 0.5, 2, 42});
        configs.push_back({model, sweep([&](const dataset::UbCase& ub_case) {
                               return solo.repair(ub_case);
                           })});
    }
    for (const char* model : {"gpt-3.5", "claude-3.5"}) {
        core::FeedbackStore feedback;
        core::RustBrain rb(rustbrain_config(model, true), &knowledge_base(),
                           &feedback);
        configs.push_back({std::string(model) + "+RustBrain",
                           sweep([&](const dataset::UbCase& ub_case) {
                               return rb.repair(ub_case);
                           })});
    }
    {
        core::FeedbackStore feedback;
        core::RustBrain rb(rustbrain_config("gpt-4", false), nullptr, &feedback);
        configs.push_back({"gpt-4+RustBrain(non-knowledge)",
                           sweep([&](const dataset::UbCase& ub_case) {
                               return rb.repair(ub_case);
                           })});
    }
    {
        core::FeedbackStore feedback;
        core::RustBrain rb(rustbrain_config("gpt-4", true), &knowledge_base(),
                           &feedback);
        configs.push_back({"gpt-4+RustBrain",
                           sweep([&](const dataset::UbCase& ub_case) {
                               return rb.repair(ub_case);
                           })});
    }

    std::vector<std::string> headers = {"category"};
    for (const auto& config : configs) headers.push_back(config.label);
    support::TextTable table(headers);
    for (miri::UbCategory category : corpus().categories()) {
        std::vector<std::string> row = {miri::ub_category_label(category)};
        for (const auto& config : configs) {
            row.push_back(pct(config.rates.pass_rate(category)));
        }
        table.add_row(std::move(row));
    }
    std::vector<std::string> avg_row = {"AVERAGE"};
    for (const auto& config : configs) {
        avg_row.push_back(pct(config.rates.pass_rate_total()));
    }
    table.add_row(std::move(avg_row));
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "paper headline: GPT-4+RustBrain(+KB) averages 94.3%% pass; "
        "+RustBrain lifts every base model by 25-35 points.\n");
    return 0;
}
