// Shared evaluation harness for the figure/table benches: config
// construction, per-category sweeps (parallel over a BatchRunner by
// default), rate formatting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/expert_model.hpp"
#include "baselines/fixed_pipeline.hpp"
#include "baselines/standalone_llm.hpp"
#include "core/batch_runner.hpp"
#include "core/rustbrain.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace rustbrain::bench {

inline const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

inline const kb::KnowledgeBase& knowledge_base() {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase k;
        kb::seed_from_corpus(corpus(), k);
        return k;
    }();
    return kbase;
}

struct CategoryRates {
    std::map<miri::UbCategory, int> pass;
    std::map<miri::UbCategory, int> exec;
    std::map<miri::UbCategory, int> total;
    std::map<miri::UbCategory, double> time_ms;
    int pass_total = 0;
    int exec_total = 0;
    int case_total = 0;
    double time_total_ms = 0.0;

    void add(const dataset::UbCase& ub_case, const core::CaseResult& result) {
        ++total[ub_case.category];
        ++case_total;
        time_ms[ub_case.category] += result.time_ms;
        time_total_ms += result.time_ms;
        if (result.pass) {
            ++pass[ub_case.category];
            ++pass_total;
        }
        if (result.exec) {
            ++exec[ub_case.category];
            ++exec_total;
        }
    }

    [[nodiscard]] double pass_rate(miri::UbCategory category) const {
        auto it = total.find(category);
        if (it == total.end() || it->second == 0) return 0.0;
        auto passed = pass.find(category);
        return 100.0 * (passed == pass.end() ? 0 : passed->second) / it->second;
    }
    [[nodiscard]] double exec_rate(miri::UbCategory category) const {
        auto it = total.find(category);
        if (it == total.end() || it->second == 0) return 0.0;
        auto executed = exec.find(category);
        return 100.0 * (executed == exec.end() ? 0 : executed->second) / it->second;
    }
    [[nodiscard]] double avg_time_s(miri::UbCategory category) const {
        auto it = total.find(category);
        if (it == total.end() || it->second == 0) return 0.0;
        return time_ms.at(category) / it->second / 1000.0;
    }
    [[nodiscard]] double pass_rate_total() const {
        return case_total == 0 ? 0.0 : 100.0 * pass_total / case_total;
    }
    [[nodiscard]] double exec_rate_total() const {
        return case_total == 0 ? 0.0 : 100.0 * exec_total / case_total;
    }
};

/// Worker count for the parallel sweeps: RUSTBRAIN_WORKERS env override,
/// else one per hardware thread.
inline std::size_t sweep_workers() {
    if (const char* env = std::getenv("RUSTBRAIN_WORKERS")) {
        const long value = std::strtol(env, nullptr, 10);
        if (value > 0) return static_cast<std::size_t>(value);
    }
    return support::ThreadPool::hardware_threads();
}

/// Corpus cases, optionally restricted to a category subset, in corpus order.
inline std::vector<const dataset::UbCase*> corpus_cases(
    const std::vector<miri::UbCategory>* only = nullptr) {
    std::vector<const dataset::UbCase*> cases;
    for (const dataset::UbCase& ub_case : corpus().cases()) {
        if (only != nullptr) {
            bool wanted = false;
            for (miri::UbCategory category : *only) {
                if (ub_case.category == category) wanted = true;
            }
            if (!wanted) continue;
        }
        cases.push_back(&ub_case);
    }
    return cases;
}

/// Fold a BatchReport back into per-category rates (case order preserved).
inline CategoryRates rates_from(const std::vector<const dataset::UbCase*>& cases,
                                const core::BatchReport& report) {
    CategoryRates rates;
    for (std::size_t i = 0; i < cases.size(); ++i) {
        rates.add(*cases[i], report.results[i]);
    }
    return rates;
}

/// Parallel corpus sweep over an already-configured BatchRunner.
inline CategoryRates sweep(const core::BatchRunner& runner,
                           const std::vector<miri::UbCategory>* only = nullptr) {
    const std::vector<const dataset::UbCase*> cases = corpus_cases(only);
    return rates_from(cases, runner.run(cases));
}

/// Parallel corpus sweep with a per-worker engine factory: `make_engine`
/// runs once per worker, and the functor it returns is only called from
/// that worker's thread. Results are aggregated in corpus order, so the
/// outcome is identical to a serial sweep.
template <typename MakeEngine>
CategoryRates parallel_sweep(MakeEngine&& make_engine,
                             const std::vector<miri::UbCategory>* only = nullptr) {
    core::BatchRunner runner(
        core::EngineFactory(std::forward<MakeEngine>(make_engine)),
        core::BatchOptions{sweep_workers()});
    return sweep(runner, only);
}

/// Ordered single-engine sweep for configurations whose whole point is
/// cross-case state (a shared FeedbackStore accumulating over the corpus).
template <typename RepairFn>
CategoryRates sequential_sweep(RepairFn&& repair,
                               const std::vector<miri::UbCategory>* only = nullptr) {
    const std::vector<const dataset::UbCase*> cases = corpus_cases(only);
    return rates_from(cases, core::BatchRunner::run_sequential(
                                 cases, core::RepairFn(std::forward<RepairFn>(repair))));
}

/// Parallel RustBrain sweep: one instance per worker over the shared KB.
inline CategoryRates rustbrain_sweep(
    const core::RustBrainConfig& config, const kb::KnowledgeBase* kbase,
    const std::vector<miri::UbCategory>* only = nullptr,
    const core::FeedbackStore* warm_feedback = nullptr) {
    const core::BatchRunner runner(config, kbase,
                                   core::BatchOptions{sweep_workers()},
                                   warm_feedback);
    return sweep(runner, only);
}

/// One baseline engine of type Engine per worker, constructed from
/// `config`. Every baseline derives all randomness from its config seed +
/// the case id, so these sweeps are scheduling-invariant.
template <typename Engine, typename Config>
core::EngineFactory engine_per_worker(Config config) {
    return [config](std::size_t) -> core::RepairFn {
        auto engine = std::make_shared<Engine>(config);
        return [engine](const dataset::UbCase& ub_case) {
            return engine->repair(ub_case);
        };
    };
}

inline std::string pct(double value) {
    return support::format_double(value, 1);
}

struct LabelledRates {
    std::string label;
    CategoryRates rates;
};

inline core::RustBrainConfig rustbrain_config(const std::string& model,
                                              bool use_kb, double temperature = 0.5,
                                              std::uint64_t seed = 42) {
    core::RustBrainConfig config;
    config.model = model;
    config.temperature = temperature;
    config.use_knowledge_base = use_kb;
    config.seed = seed;
    return config;
}

/// The seven configurations Figs. 8 and 9 share: three bare models, two
/// +RustBrain pairs, GPT-4+RustBrain without the knowledge base, and the
/// flagship. All swept in parallel with cases repaired independently (no
/// cross-case feedback), so every rate is order- and worker-count-
/// invariant; the feedback mechanism is measured where it is the subject
/// (fig07's warmed groups, Table I's feedback-bearing columns,
/// repair_campaign's focused phase).
inline std::vector<LabelledRates> seven_standard_configs() {
    std::vector<LabelledRates> configs;
    for (const char* model : {"gpt-3.5", "claude-3.5", "gpt-4"}) {
        configs.push_back(
            {model, parallel_sweep(engine_per_worker<baselines::StandaloneLlmRepair>(
                        baselines::StandaloneConfig{model, 0.5, 2, 42}))});
    }
    for (const char* model : {"gpt-3.5", "claude-3.5"}) {
        configs.push_back({std::string(model) + "+RustBrain",
                           rustbrain_sweep(rustbrain_config(model, true),
                                           &knowledge_base())});
    }
    configs.push_back(
        {"gpt-4+RustBrain(non-knowledge)",
         rustbrain_sweep(rustbrain_config("gpt-4", false), nullptr)});
    configs.push_back({"gpt-4+RustBrain",
                       rustbrain_sweep(rustbrain_config("gpt-4", true),
                                       &knowledge_base())});
    return configs;
}

}  // namespace rustbrain::bench
