// Shared evaluation harness for the figure/table benches: registry-driven
// engine sweeps (parallel over a BatchRunner by default), per-category
// rate folding, rate formatting.
//
// No bench constructs an engine class directly: every configuration is a
// (registry id, option spec) pair handed to core::EngineRegistry /
// core::BatchRunner, exactly the way a sweep config file would express it.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/engine_registry.hpp"
#include "core/rustbrain.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::bench {

inline const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

inline const kb::KnowledgeBase& knowledge_base() {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase k;
        kb::seed_from_corpus(corpus(), k);
        return k;
    }();
    return kbase;
}

/// Build context wired to the shared seeded knowledge base (engines whose
/// options say knowledge=off simply ignore it).
inline core::EngineBuildContext kb_context() {
    core::EngineBuildContext context;
    context.knowledge_base = &knowledge_base();
    return context;
}

struct CategoryRates {
    std::map<miri::UbCategory, int> pass;
    std::map<miri::UbCategory, int> exec;
    std::map<miri::UbCategory, int> total;
    std::map<miri::UbCategory, double> time_ms;
    int pass_total = 0;
    int exec_total = 0;
    int case_total = 0;
    double time_total_ms = 0.0;

    void add(const dataset::UbCase& ub_case, const core::CaseResult& result) {
        ++total[ub_case.category];
        ++case_total;
        time_ms[ub_case.category] += result.time_ms;
        time_total_ms += result.time_ms;
        if (result.pass) {
            ++pass[ub_case.category];
            ++pass_total;
        }
        if (result.exec) {
            ++exec[ub_case.category];
            ++exec_total;
        }
    }

    [[nodiscard]] double pass_rate(miri::UbCategory category) const {
        auto it = total.find(category);
        if (it == total.end() || it->second == 0) return 0.0;
        auto passed = pass.find(category);
        return 100.0 * (passed == pass.end() ? 0 : passed->second) / it->second;
    }
    [[nodiscard]] double exec_rate(miri::UbCategory category) const {
        auto it = total.find(category);
        if (it == total.end() || it->second == 0) return 0.0;
        auto executed = exec.find(category);
        return 100.0 * (executed == exec.end() ? 0 : executed->second) / it->second;
    }
    [[nodiscard]] double avg_time_s(miri::UbCategory category) const {
        auto it = total.find(category);
        if (it == total.end() || it->second == 0) return 0.0;
        return time_ms.at(category) / it->second / 1000.0;
    }
    [[nodiscard]] double pass_rate_total() const {
        return case_total == 0 ? 0.0 : 100.0 * pass_total / case_total;
    }
    [[nodiscard]] double exec_rate_total() const {
        return case_total == 0 ? 0.0 : 100.0 * exec_total / case_total;
    }
};

/// Corpus cases, optionally restricted to a category subset, in corpus order.
inline std::vector<const dataset::UbCase*> corpus_cases(
    const std::vector<miri::UbCategory>* only = nullptr) {
    std::vector<const dataset::UbCase*> cases;
    for (const dataset::UbCase& ub_case : corpus().cases()) {
        if (only != nullptr) {
            bool wanted = false;
            for (miri::UbCategory category : *only) {
                if (ub_case.category == category) wanted = true;
            }
            if (!wanted) continue;
        }
        cases.push_back(&ub_case);
    }
    return cases;
}

/// Fold a BatchReport back into per-category rates (case order preserved).
inline CategoryRates rates_from(const std::vector<const dataset::UbCase*>& cases,
                                const core::BatchReport& report) {
    CategoryRates rates;
    for (std::size_t i = 0; i < cases.size(); ++i) {
        rates.add(*cases[i], report.results[i]);
    }
    return rates;
}

/// Parallel corpus sweep over an already-configured BatchRunner.
inline CategoryRates sweep(const core::BatchRunner& runner,
                           const std::vector<miri::UbCategory>* only = nullptr) {
    const std::vector<const dataset::UbCase*> cases = corpus_cases(only);
    return rates_from(cases, runner.run(cases));
}

/// THE corpus sweep: build `engine_id` with `option_spec` through the
/// registry (one engine per worker; worker count = hardware threads, or
/// RUSTBRAIN_WORKERS when set) and fan the cases out. Cases are repaired
/// independently, so every rate is order- and worker-count-invariant; a
/// non-null `warm_feedback` gives each case a private snapshot copy.
inline CategoryRates engine_sweep(
    const std::string& engine_id, const std::string& option_spec,
    const core::EngineBuildContext& context = kb_context(),
    const std::vector<miri::UbCategory>* only = nullptr,
    const core::FeedbackStore* warm_feedback = nullptr) {
    const core::BatchRunner runner(engine_id,
                                   core::EngineOptions::parse(option_spec),
                                   context, core::BatchOptions{}, warm_feedback);
    return sweep(runner, only);
}

/// Ordered single-engine sweep for configurations whose whole point is
/// cross-case state (a shared FeedbackStore accumulating over the corpus).
/// The engine comes from the registry like everywhere else.
inline CategoryRates ordered_engine_sweep(
    const std::string& engine_id, const std::string& option_spec,
    const core::EngineBuildContext& context,
    const std::vector<miri::UbCategory>* only = nullptr) {
    const auto engine = core::EngineRegistry::builtin().build(
        engine_id, core::EngineOptions::parse(option_spec), context);
    const std::vector<const dataset::UbCase*> cases = corpus_cases(only);
    return rates_from(cases, core::BatchRunner::run_sequential(
                                 cases, [&](const dataset::UbCase& ub_case) {
                                     return engine->repair(ub_case);
                                 }));
}

inline std::string pct(double value) {
    return support::format_double(value, 1);
}

/// "87.5%" from a hits/total pair; "-" when nothing was looked up. Shared
/// by the LLM prompt-cache and verify-cache columns.
inline std::string hit_rate_cell(std::uint64_t hits, std::uint64_t total) {
    if (total == 0) return "-";
    return support::format_double(100.0 * static_cast<double>(hits) /
                                      static_cast<double>(total),
                                  1) +
           "%";
}

/// Difference of two verify-cache snapshots (the hits/misses a single run
/// observed between them).
inline verify::VerifyCacheStats verify_delta(
    const verify::VerifyCacheStats& before,
    const verify::VerifyCacheStats& after) {
    verify::VerifyCacheStats delta;
    delta.program_hits = after.program_hits - before.program_hits;
    delta.program_misses = after.program_misses - before.program_misses;
    delta.report_hits = after.report_hits - before.report_hits;
    delta.report_misses = after.report_misses - before.report_misses;
    delta.programs = after.programs;
    delta.reports = after.reports;
    return delta;
}

/// A sweep's aggregate virtual-time breakdown (the merged SimClock
/// categories of a BatchReport) with the share each category carried —
/// "miri" is the verification line the Oracle accelerates. When `verify`
/// is non-null, a verify-cache hit-rate column is appended per row so the
/// table shows how much of the miri time was served from cache.
inline std::string time_breakdown_table(
    const core::BatchReport& report,
    const verify::VerifyCacheStats* verify_stats = nullptr) {
    std::vector<std::string> headers = {"category", "virtual min", "share"};
    if (verify_stats != nullptr) headers.push_back("verify-cache hits");
    support::TextTable table(headers);
    const double total = report.clock.now_ms();
    for (const auto& [category, ms] : report.clock.breakdown()) {
        std::vector<std::string> row = {
            category, support::format_double(ms / 60000.0, 1),
            total > 0.0 ? pct(100.0 * ms / total) + "%" : "-"};
        if (verify_stats != nullptr) {
            row.push_back(category == "miri"
                              ? hit_rate_cell(verify_stats->report_hits,
                                              verify_stats->report_hits +
                                                  verify_stats->report_misses)
                              : "-");
        }
        table.add_row(row);
    }
    return table.render();
}

struct LabelledRates {
    std::string label;
    CategoryRates rates;
};

/// The seven configurations Figs. 8 and 9 share: three bare models, two
/// +RustBrain pairs, GPT-4+RustBrain without the knowledge base, and the
/// flagship — each a declarative (engine id, options) row. All swept in
/// parallel with cases repaired independently (no cross-case feedback),
/// so every rate is order- and worker-count-invariant; the feedback
/// mechanism is measured where it is the subject (fig07's warmed groups,
/// Table I's feedback-bearing columns, repair_campaign's focused phase).
inline std::vector<LabelledRates> seven_standard_configs() {
    struct Row {
        const char* label;
        const char* engine;
        const char* options;
        bool with_kb;
    };
    const Row rows[] = {
        {"gpt-3.5", "standalone", "model=gpt-3.5", false},
        {"claude-3.5", "standalone", "model=claude-3.5", false},
        {"gpt-4", "standalone", "model=gpt-4", false},
        {"gpt-3.5+RustBrain", "rustbrain", "model=gpt-3.5", true},
        {"claude-3.5+RustBrain", "rustbrain", "model=claude-3.5", true},
        {"gpt-4+RustBrain(non-knowledge)", "rustbrain",
         "model=gpt-4,knowledge=off", false},
        {"gpt-4+RustBrain", "rustbrain", "model=gpt-4", true},
    };
    std::vector<LabelledRates> configs;
    for (const Row& row : rows) {
        configs.push_back(
            {row.label,
             engine_sweep(row.engine, row.options,
                          row.with_kb ? kb_context() : core::EngineBuildContext{})});
    }
    return configs;
}

}  // namespace rustbrain::bench
