// Shared evaluation harness for the figure/table benches: config
// construction, per-category sweeps, rate formatting.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/expert_model.hpp"
#include "baselines/fixed_pipeline.hpp"
#include "baselines/standalone_llm.hpp"
#include "core/rustbrain.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace rustbrain::bench {

inline const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

inline const kb::KnowledgeBase& knowledge_base() {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase k;
        kb::seed_from_corpus(corpus(), k);
        return k;
    }();
    return kbase;
}

struct CategoryRates {
    std::map<miri::UbCategory, int> pass;
    std::map<miri::UbCategory, int> exec;
    std::map<miri::UbCategory, int> total;
    std::map<miri::UbCategory, double> time_ms;
    int pass_total = 0;
    int exec_total = 0;
    int case_total = 0;
    double time_total_ms = 0.0;

    void add(const dataset::UbCase& ub_case, const core::CaseResult& result) {
        ++total[ub_case.category];
        ++case_total;
        time_ms[ub_case.category] += result.time_ms;
        time_total_ms += result.time_ms;
        if (result.pass) {
            ++pass[ub_case.category];
            ++pass_total;
        }
        if (result.exec) {
            ++exec[ub_case.category];
            ++exec_total;
        }
    }

    [[nodiscard]] double pass_rate(miri::UbCategory category) const {
        auto it = total.find(category);
        if (it == total.end() || it->second == 0) return 0.0;
        auto passed = pass.find(category);
        return 100.0 * (passed == pass.end() ? 0 : passed->second) / it->second;
    }
    [[nodiscard]] double exec_rate(miri::UbCategory category) const {
        auto it = total.find(category);
        if (it == total.end() || it->second == 0) return 0.0;
        auto executed = exec.find(category);
        return 100.0 * (executed == exec.end() ? 0 : executed->second) / it->second;
    }
    [[nodiscard]] double avg_time_s(miri::UbCategory category) const {
        auto it = total.find(category);
        if (it == total.end() || it->second == 0) return 0.0;
        return time_ms.at(category) / it->second / 1000.0;
    }
    [[nodiscard]] double pass_rate_total() const {
        return case_total == 0 ? 0.0 : 100.0 * pass_total / case_total;
    }
    [[nodiscard]] double exec_rate_total() const {
        return case_total == 0 ? 0.0 : 100.0 * exec_total / case_total;
    }
};

/// Run a repair functor over every corpus case (optionally a category
/// subset) and aggregate per-category rates.
template <typename RepairFn>
CategoryRates sweep(RepairFn&& repair,
                    const std::vector<miri::UbCategory>* only = nullptr) {
    CategoryRates rates;
    for (const dataset::UbCase& ub_case : corpus().cases()) {
        if (only != nullptr) {
            bool wanted = false;
            for (miri::UbCategory category : *only) {
                if (ub_case.category == category) wanted = true;
            }
            if (!wanted) continue;
        }
        rates.add(ub_case, repair(ub_case));
    }
    return rates;
}

inline std::string pct(double value) {
    return support::format_double(value, 1);
}

inline core::RustBrainConfig rustbrain_config(const std::string& model,
                                              bool use_kb, double temperature = 0.5,
                                              std::uint64_t seed = 42) {
    core::RustBrainConfig config;
    config.model = model;
    config.temperature = temperature;
    config.use_knowledge_base = use_kb;
    config.seed = seed;
    return config;
}

}  // namespace rustbrain::bench
