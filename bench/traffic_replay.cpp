// traffic_replay: zipfian repair traffic through the persistent
// RepairService — the regime the one-shot sweeps never measure.
//
//   $ ./bench/traffic_replay                  # full report
//   $ ./bench/traffic_replay --requests 40    # smaller trace (CI smoke)
//   $ ./bench/traffic_replay --deterministic-only
//
// Three experiments over one catalog (the standard corpus plus a slice of
// freshly forged cases):
//   1. skew sweep — replay a zipf(s)-sampled trace per skew through a
//      fresh service each time: throughput, p50/p99 latency, and the
//      cross-request prompt/verify cache hit-rates, which rise with skew
//      (hotter traffic, warmer caches);
//   2. cold vs warm — the identical trace replayed twice through one
//      service; the repeat pass answers from the shared caches and must be
//      measurably faster;
//   3. deterministic mode — RepairService::run_batch over every catalog
//      case, rendered with serve::render_case_result and byte-compared
//      against a serial BatchRunner sweep over the same list (exit 1 on
//      any divergence — CI runs this).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "gen/forge.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/zipf.hpp"

using namespace rustbrain;

namespace {

struct ReplayOutcome {
    double wall_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double prompt_hit_rate = 0.0;
    double report_hit_rate = 0.0;
    std::size_t unique_cases = 0;
    std::uint64_t steals = 0;
};

double percentile(std::vector<double> values, double fraction) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const auto index = static_cast<std::size_t>(
        fraction * static_cast<double>(values.size() - 1));
    return values[index];
}

/// The request trace for one skew: `requests` draws over the catalog from
/// a deterministic zipf sampler (same seed => same trace).
std::vector<std::size_t> make_trace(std::size_t catalog_size,
                                    std::size_t requests, double skew) {
    support::Rng rng(support::derive_seed(42, "traffic-replay"));
    support::ZipfSampler sampler(catalog_size, skew);
    std::vector<std::size_t> trace;
    trace.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
        trace.push_back(sampler.sample(rng));
    }
    return trace;
}

ReplayOutcome replay(serve::RepairService& service,
                     const std::vector<dataset::UbCase>& catalog,
                     const std::vector<std::size_t>& trace,
                     const std::string& engine,
                     const std::string& option_spec) {
    const serve::ServiceStats before = service.stats();
    std::vector<serve::RepairRequest> requests;
    requests.reserve(trace.size());
    for (std::size_t index : trace) {
        serve::RepairRequest request;
        request.engine = engine;
        request.options = option_spec;
        request.ub_case = catalog[index];
        requests.push_back(std::move(request));
    }
    const auto start = std::chrono::steady_clock::now();
    const std::vector<serve::RepairResponse> responses =
        service.run_batch(std::move(requests));
    const auto stop = std::chrono::steady_clock::now();

    ReplayOutcome outcome;
    outcome.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    std::vector<double> latencies;
    latencies.reserve(responses.size());
    for (const serve::RepairResponse& response : responses) {
        if (!response.ok) {
            std::printf("error: request failed: %s\n", response.error.c_str());
            std::exit(1);
        }
        latencies.push_back(response.service_ms);
    }
    outcome.p50_ms = percentile(latencies, 0.50);
    outcome.p99_ms = percentile(latencies, 0.99);

    const serve::ServiceStats after = service.stats();
    const std::uint64_t prompt_lookups =
        (after.prompt_cache.hits - before.prompt_cache.hits) +
        (after.prompt_cache.misses - before.prompt_cache.misses);
    if (prompt_lookups > 0) {
        outcome.prompt_hit_rate =
            100.0 *
            static_cast<double>(after.prompt_cache.hits -
                                before.prompt_cache.hits) /
            static_cast<double>(prompt_lookups);
    }
    const std::uint64_t report_lookups =
        (after.verify_cache.report_hits - before.verify_cache.report_hits) +
        (after.verify_cache.report_misses - before.verify_cache.report_misses);
    if (report_lookups > 0) {
        outcome.report_hit_rate =
            100.0 *
            static_cast<double>(after.verify_cache.report_hits -
                                before.verify_cache.report_hits) /
            static_cast<double>(report_lookups);
    }
    outcome.steals = after.scheduler.steals - before.scheduler.steals;
    std::vector<std::size_t> unique(trace);
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    outcome.unique_cases = unique.size();
    return outcome;
}

/// The catalog every experiment shares: the standard corpus plus freshly
/// forged cases (the "new traffic" the service has never seen).
std::vector<dataset::UbCase> build_catalog(std::size_t forged) {
    std::vector<dataset::UbCase> catalog = bench::corpus().cases();
    if (forged > 0) {
        gen::ForgeOptions options;
        options.seed = 2025;
        options.count = forged;
        const dataset::Corpus fresh = gen::forge_corpus(options);
        catalog.insert(catalog.end(), fresh.cases().begin(),
                       fresh.cases().end());
    }
    return catalog;
}

int deterministic_check(const std::vector<dataset::UbCase>& catalog,
                        const std::string& engine,
                        const std::string& option_spec) {
    std::printf("== deterministic mode vs serial BatchRunner ==\n");
    serve::ServiceOptions service_options;
    service_options.knowledge_base = &bench::knowledge_base();
    serve::RepairService service(service_options);
    std::vector<serve::RepairRequest> requests;
    for (const dataset::UbCase& ub_case : catalog) {
        serve::RepairRequest request;
        request.engine = engine;
        request.options = option_spec;
        request.ub_case = ub_case;
        requests.push_back(std::move(request));
    }
    const std::vector<serve::RepairResponse> responses =
        service.run_batch(std::move(requests));

    core::EngineBuildContext context;
    context.knowledge_base = &bench::knowledge_base();
    const auto serial_engine = core::EngineRegistry::builtin().build(
        engine, core::EngineOptions::parse(option_spec), context);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const std::string service_text =
            serve::render_case_result(responses[i].result);
        const std::string serial_text =
            serve::render_case_result(serial_engine->repair(catalog[i]));
        if (service_text != serial_text) {
            ++mismatches;
            if (mismatches == 1) {
                std::printf("MISMATCH on case %s:\n-- service --\n%s\n"
                            "-- serial --\n%s\n",
                            catalog[i].id.c_str(), service_text.c_str(),
                            serial_text.c_str());
            }
        }
    }
    if (mismatches > 0) {
        std::printf("FAIL: %zu/%zu rendered results diverge\n", mismatches,
                    catalog.size());
        return 1;
    }
    std::printf("byte-identical: %zu/%zu rendered CaseResults match the "
                "serial sweep (%zu workers)\n\n",
                catalog.size(), catalog.size(), service.workers());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t requests = 120;
    std::size_t forged = 12;
    bool deterministic_only = false;
    std::string engine = "rustbrain";
    std::string option_spec;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--requests" && i + 1 < argc) {
            requests = static_cast<std::size_t>(std::strtoul(argv[++i],
                                                             nullptr, 10));
        } else if (arg == "--forged" && i + 1 < argc) {
            forged = static_cast<std::size_t>(std::strtoul(argv[++i],
                                                           nullptr, 10));
        } else if (arg == "--engine" && i + 1 < argc) {
            engine = argv[++i];
        } else if (arg == "--options" && i + 1 < argc) {
            option_spec = argv[++i];
        } else if (arg == "--deterministic-only") {
            deterministic_only = true;
        } else {
            std::printf("usage: %s [--requests N] [--forged N] "
                        "[--engine <id>] [--options k=v,...] "
                        "[--deterministic-only]\n",
                        argv[0]);
            return 2;
        }
    }

    const std::vector<dataset::UbCase> catalog = build_catalog(forged);
    std::printf("catalog: %zu cases (%zu standard + %zu forged), trace: %zu "
                "requests, engine: %s\n\n",
                catalog.size(), catalog.size() - forged, forged, requests,
                engine.c_str());

    const int deterministic_rc =
        deterministic_check(catalog, engine, option_spec);
    if (deterministic_only || deterministic_rc != 0) return deterministic_rc;

    std::printf("== zipf skew sweep (%zu requests each, fresh service per "
                "row) ==\n",
                requests);
    support::TextTable table({"skew", "unique", "wall ms", "req/s",
                              "p50 ms", "p99 ms", "prompt hits",
                              "verify hits", "steals"});
    for (double skew : {0.0, 0.7, 1.4}) {
        serve::ServiceOptions service_options;
        service_options.knowledge_base = &bench::knowledge_base();
        serve::RepairService service(service_options);
        const std::vector<std::size_t> trace =
            make_trace(catalog.size(), requests, skew);
        const ReplayOutcome outcome =
            replay(service, catalog, trace, engine, option_spec);
        table.add_row(
            {support::format_double(skew, 1),
             std::to_string(outcome.unique_cases),
             support::format_double(outcome.wall_ms, 0),
             support::format_double(
                 1000.0 * static_cast<double>(requests) / outcome.wall_ms, 1),
             support::format_double(outcome.p50_ms, 1),
             support::format_double(outcome.p99_ms, 1),
             support::format_double(outcome.prompt_hit_rate, 1) + "%",
             support::format_double(outcome.report_hit_rate, 1) + "%",
             std::to_string(outcome.steals)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("== cold vs warm (identical trace, one service) ==\n");
    {
        serve::ServiceOptions service_options;
        service_options.knowledge_base = &bench::knowledge_base();
        serve::RepairService service(service_options);
        const std::vector<std::size_t> trace =
            make_trace(catalog.size(), requests, 1.0);
        const ReplayOutcome cold =
            replay(service, catalog, trace, engine, option_spec);
        const ReplayOutcome warm =
            replay(service, catalog, trace, engine, option_spec);
        std::printf("cold: %.0f ms (prompt %.1f%%, verify %.1f%%)\n",
                    cold.wall_ms, cold.prompt_hit_rate, cold.report_hit_rate);
        std::printf("warm: %.0f ms (prompt %.1f%%, verify %.1f%%) — %.2fx\n",
                    warm.wall_ms, warm.prompt_hit_rate, warm.report_hit_rate,
                    warm.wall_ms > 0.0 ? cold.wall_ms / warm.wall_ms : 0.0);
        const serve::ServiceStats stats = service.stats();
        std::printf("service: %llu completed, queue p. wait avg %.2f ms "
                    "(max %.2f), %llu steals across %zu workers\n\n",
                    static_cast<unsigned long long>(stats.completed),
                    stats.completed > 0
                        ? stats.queue_ms_total /
                              static_cast<double>(stats.completed)
                        : 0.0,
                    stats.queue_ms_max,
                    static_cast<unsigned long long>(stats.scheduler.steals),
                    service.workers());
    }
    return 0;
}
