// traffic_replay: zipfian repair traffic through the persistent
// RepairService — the regime the one-shot sweeps never measure.
//
//   $ ./bench/traffic_replay                  # full report
//   $ ./bench/traffic_replay --requests 40    # smaller trace (CI smoke)
//   $ ./bench/traffic_replay --deterministic-only
//
// Three experiments over one catalog (the standard corpus plus a slice of
// freshly forged cases):
//   1. skew sweep — replay a zipf(s)-sampled trace per skew through a
//      fresh service each time: throughput, p50/p99 latency, and the
//      cross-request prompt/verify cache hit-rates, which rise with skew
//      (hotter traffic, warmer caches);
//   2. cold vs warm — the identical trace replayed twice through one
//      service; the repeat pass answers from the shared caches and must be
//      measurably faster;
//   3. deterministic mode — RepairService::run_batch over every catalog
//      case, rendered with serve::render_case_result and byte-compared
//      against a serial BatchRunner sweep over the same list (exit 1 on
//      any divergence — CI runs this).
//
// --open-loop switches to the fourth experiment: arrivals follow a
// deterministic seeded Poisson-plus-burst schedule (virtual arrival times,
// independent of completions — the regime where queues actually build) and
// the requests go over real sockets through the epoll reactor frontend,
// pipelined across a few connections. Rows sweep worker counts x arrival
// rates. Deterministic facts (schedule hash, ok/shed counts, a fingerprint
// of every rendered result in request order) go to stdout so CI can run it
// twice and `cmp`; measured facts (throughput, queue p50/p95/p99,
// shed-rate, reactor loop stats) go to stderr.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "gen/forge.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/zipf.hpp"

using namespace rustbrain;

namespace {

struct ReplayOutcome {
    double wall_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double prompt_hit_rate = 0.0;
    double report_hit_rate = 0.0;
    std::size_t unique_cases = 0;
    std::uint64_t steals = 0;
};

double percentile(std::vector<double> values, double fraction) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const auto index = static_cast<std::size_t>(
        fraction * static_cast<double>(values.size() - 1));
    return values[index];
}

/// The request trace for one skew: `requests` draws over the catalog from
/// a deterministic zipf sampler (same seed => same trace).
std::vector<std::size_t> make_trace(std::size_t catalog_size,
                                    std::size_t requests, double skew) {
    support::Rng rng(support::derive_seed(42, "traffic-replay"));
    support::ZipfSampler sampler(catalog_size, skew);
    std::vector<std::size_t> trace;
    trace.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
        trace.push_back(sampler.sample(rng));
    }
    return trace;
}

ReplayOutcome replay(serve::RepairService& service,
                     const std::vector<dataset::UbCase>& catalog,
                     const std::vector<std::size_t>& trace,
                     const std::string& engine,
                     const std::string& option_spec) {
    const serve::ServiceStats before = service.stats();
    std::vector<serve::RepairRequest> requests;
    requests.reserve(trace.size());
    for (std::size_t index : trace) {
        serve::RepairRequest request;
        request.engine = engine;
        request.options = option_spec;
        request.ub_case = catalog[index];
        requests.push_back(std::move(request));
    }
    const auto start = std::chrono::steady_clock::now();
    const std::vector<serve::RepairResponse> responses =
        service.run_batch(std::move(requests));
    const auto stop = std::chrono::steady_clock::now();

    ReplayOutcome outcome;
    outcome.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    std::vector<double> latencies;
    latencies.reserve(responses.size());
    for (const serve::RepairResponse& response : responses) {
        if (!response.ok) {
            std::printf("error: request failed: %s\n", response.error.c_str());
            std::exit(1);
        }
        latencies.push_back(response.service_ms);
    }
    outcome.p50_ms = percentile(latencies, 0.50);
    outcome.p99_ms = percentile(latencies, 0.99);

    const serve::ServiceStats after = service.stats();
    const std::uint64_t prompt_lookups =
        (after.prompt_cache.hits - before.prompt_cache.hits) +
        (after.prompt_cache.misses - before.prompt_cache.misses);
    if (prompt_lookups > 0) {
        outcome.prompt_hit_rate =
            100.0 *
            static_cast<double>(after.prompt_cache.hits -
                                before.prompt_cache.hits) /
            static_cast<double>(prompt_lookups);
    }
    const std::uint64_t report_lookups =
        (after.verify_cache.report_hits - before.verify_cache.report_hits) +
        (after.verify_cache.report_misses - before.verify_cache.report_misses);
    if (report_lookups > 0) {
        outcome.report_hit_rate =
            100.0 *
            static_cast<double>(after.verify_cache.report_hits -
                                before.verify_cache.report_hits) /
            static_cast<double>(report_lookups);
    }
    outcome.steals = after.scheduler.steals - before.scheduler.steals;
    std::vector<std::size_t> unique(trace);
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    outcome.unique_cases = unique.size();
    return outcome;
}

/// The catalog every experiment shares: the standard corpus plus freshly
/// forged cases (the "new traffic" the service has never seen).
std::vector<dataset::UbCase> build_catalog(std::size_t forged) {
    std::vector<dataset::UbCase> catalog = bench::corpus().cases();
    if (forged > 0) {
        gen::ForgeOptions options;
        options.seed = 2025;
        options.count = forged;
        const dataset::Corpus fresh = gen::forge_corpus(options);
        catalog.insert(catalog.end(), fresh.cases().begin(),
                       fresh.cases().end());
    }
    return catalog;
}

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

struct Arrival {
    double at_ms = 0.0;  // virtual arrival time from the schedule start
    std::size_t case_index = 0;
};

struct OpenLoopConfig {
    std::size_t requests = 120;
    std::uint64_t seed = 42;
    double gap_ms = 2.0;  // mean Poisson interarrival at rate 1.0
    std::size_t burst_every = 16;  // every Nth arrival brings a burst
    std::size_t burst_size = 4;    // extra same-instant arrivals per burst
    std::size_t connections = 4;
    std::size_t max_inflight = 0;  // admission control (0 = off)
    double max_queue_ms = 0.0;
};

/// Deterministic open-loop arrival schedule: exponential interarrival
/// times (mean gap_ms / rate) with a same-instant burst injected every
/// burst_every arrivals. Same seed => same schedule, bit for bit.
std::vector<Arrival> make_schedule(std::size_t catalog_size,
                                   const OpenLoopConfig& config,
                                   double rate) {
    support::Rng rng(support::derive_seed(config.seed, "open-loop"));
    support::ZipfSampler sampler(catalog_size, 1.0);
    std::vector<Arrival> schedule;
    schedule.reserve(config.requests);
    const double mean_gap = config.gap_ms / rate;
    double clock = 0.0;
    while (schedule.size() < config.requests) {
        // next_double() is in [0, 1), so 1-u is in (0, 1] and log is safe.
        clock += -mean_gap * std::log(1.0 - rng.next_double());
        schedule.push_back({clock, sampler.sample(rng)});
        if (config.burst_every > 0 &&
            schedule.size() % config.burst_every == 0) {
            for (std::size_t b = 0;
                 b < config.burst_size && schedule.size() < config.requests;
                 ++b) {
                schedule.push_back({clock, sampler.sample(rng)});
            }
        }
    }
    return schedule;
}

std::uint64_t schedule_hash(const std::vector<Arrival>& schedule) {
    std::uint64_t hash = kFnvOffset;
    for (const Arrival& arrival : schedule) {
        hash = fnv1a(hash, &arrival.at_ms, sizeof arrival.at_ms);
        hash = fnv1a(hash, &arrival.case_index, sizeof arrival.case_index);
    }
    return hash;
}

int run_open_loop(const std::vector<dataset::UbCase>& catalog,
                  const OpenLoopConfig& config, const std::string& engine,
                  const std::string& option_spec) {
    const bool admission =
        config.max_inflight > 0 || config.max_queue_ms > 0.0;
    std::printf("== open-loop replay (reactor frontend, seed %llu, "
                "%zu connections) ==\n",
                static_cast<unsigned long long>(config.seed),
                config.connections);
    for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        for (double rate : {1.0, 4.0}) {
            const std::vector<Arrival> schedule =
                make_schedule(catalog.size(), config, rate);

            serve::ServerOptions server_options;
            server_options.service.workers = workers;
            server_options.service.knowledge_base = &bench::knowledge_base();
            server_options.service.max_inflight = config.max_inflight;
            server_options.service.max_queue_ms = config.max_queue_ms;
            server_options.frontend = serve::Frontend::Reactor;
            serve::RepairServer server(server_options);

            std::vector<std::unique_ptr<serve::RepairClient>> clients;
            for (std::size_t i = 0; i < config.connections; ++i) {
                clients.push_back(
                    std::make_unique<serve::RepairClient>(server.port()));
            }

            // Open loop: send at the schedule's times regardless of how
            // many responses are outstanding (round-robin across the
            // connections), then collect. Per-connection response order
            // matches per-connection send order, so reading round-robin
            // yields response j for request j.
            const auto start = std::chrono::steady_clock::now();
            for (std::size_t j = 0; j < schedule.size(); ++j) {
                std::this_thread::sleep_until(
                    start + std::chrono::duration<double, std::milli>(
                                schedule[j].at_ms));
                serve::RepairRequest request;
                request.ticket = std::to_string(j);
                request.engine = engine;
                request.options = option_spec;
                request.ub_case = catalog[schedule[j].case_index];
                clients[j % clients.size()]->send_async(request);
            }
            std::size_t ok = 0;
            std::size_t shed = 0;
            std::size_t failed = 0;
            std::uint64_t fingerprint = kFnvOffset;
            for (std::size_t j = 0; j < schedule.size(); ++j) {
                const serve::RepairResponse response =
                    clients[j % clients.size()]->recv_one();
                if (response.shed) {
                    ++shed;
                } else if (response.ok) {
                    ++ok;
                    const std::string rendered =
                        serve::render_case_result(response.result);
                    fingerprint =
                        fnv1a(fingerprint, rendered.data(), rendered.size());
                } else {
                    ++failed;
                    std::fprintf(stderr, "request %zu failed: %s\n", j,
                                 response.error.c_str());
                }
            }
            const double wall_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();

            const serve::ServiceStats stats = server.service().stats();
            const serve::ServerStats frontend = server.stats();
            server.stop();

            // Deterministic facts -> stdout (CI runs this twice and cmps);
            // under admission control the ok/shed split and fingerprint
            // are load-dependent, so they move to stderr with the timings.
            if (admission) {
                std::printf("row workers=%zu rate=%.1f requests=%zu "
                            "schedule=%016llx results=load-dependent\n",
                            workers, rate, schedule.size(),
                            static_cast<unsigned long long>(
                                schedule_hash(schedule)));
                std::fprintf(stderr,
                             "row workers=%zu rate=%.1f: ok=%zu shed=%zu "
                             "failed=%zu fingerprint=%016llx\n",
                             workers, rate, ok, shed, failed,
                             static_cast<unsigned long long>(fingerprint));
            } else {
                std::printf("row workers=%zu rate=%.1f requests=%zu "
                            "schedule=%016llx ok=%zu shed=%zu failed=%zu "
                            "fingerprint=%016llx\n",
                            workers, rate, schedule.size(),
                            static_cast<unsigned long long>(
                                schedule_hash(schedule)),
                            ok, shed, failed,
                            static_cast<unsigned long long>(fingerprint));
            }
            std::fprintf(
                stderr,
                "row workers=%zu rate=%.1f: wall %.0f ms, %.1f req/s, "
                "queue p50 %.3f p95 %.3f p99 %.3f ms, shed %zu (%.1f%%), "
                "loop_wakeups %llu, frames %llu/%llu, epollout_arms %llu, "
                "max_pipeline_depth %llu\n",
                workers, rate, wall_ms,
                wall_ms > 0.0
                    ? 1000.0 * static_cast<double>(schedule.size()) / wall_ms
                    : 0.0,
                stats.queue_ms_p50, stats.queue_ms_p95, stats.queue_ms_p99,
                shed,
                100.0 * static_cast<double>(shed) /
                    static_cast<double>(schedule.size()),
                static_cast<unsigned long long>(frontend.loop_wakeups),
                static_cast<unsigned long long>(frontend.frames_read),
                static_cast<unsigned long long>(frontend.frames_written),
                static_cast<unsigned long long>(frontend.epollout_arms),
                static_cast<unsigned long long>(
                    frontend.max_pipeline_depth));
            if (failed > 0) return 1;
        }
    }
    return 0;
}

int deterministic_check(const std::vector<dataset::UbCase>& catalog,
                        const std::string& engine,
                        const std::string& option_spec) {
    std::printf("== deterministic mode vs serial BatchRunner ==\n");
    serve::ServiceOptions service_options;
    service_options.knowledge_base = &bench::knowledge_base();
    serve::RepairService service(service_options);
    std::vector<serve::RepairRequest> requests;
    for (const dataset::UbCase& ub_case : catalog) {
        serve::RepairRequest request;
        request.engine = engine;
        request.options = option_spec;
        request.ub_case = ub_case;
        requests.push_back(std::move(request));
    }
    const std::vector<serve::RepairResponse> responses =
        service.run_batch(std::move(requests));

    core::EngineBuildContext context;
    context.knowledge_base = &bench::knowledge_base();
    const auto serial_engine = core::EngineRegistry::builtin().build(
        engine, core::EngineOptions::parse(option_spec), context);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const std::string service_text =
            serve::render_case_result(responses[i].result);
        const std::string serial_text =
            serve::render_case_result(serial_engine->repair(catalog[i]));
        if (service_text != serial_text) {
            ++mismatches;
            if (mismatches == 1) {
                std::printf("MISMATCH on case %s:\n-- service --\n%s\n"
                            "-- serial --\n%s\n",
                            catalog[i].id.c_str(), service_text.c_str(),
                            serial_text.c_str());
            }
        }
    }
    if (mismatches > 0) {
        std::printf("FAIL: %zu/%zu rendered results diverge\n", mismatches,
                    catalog.size());
        return 1;
    }
    std::printf("byte-identical: %zu/%zu rendered CaseResults match the "
                "serial sweep (%zu workers)\n\n",
                catalog.size(), catalog.size(), service.workers());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t requests = 120;
    std::size_t forged = 12;
    bool deterministic_only = false;
    bool open_loop = false;
    OpenLoopConfig open_config;
    std::string engine = "rustbrain";
    std::string option_spec;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--requests" && i + 1 < argc) {
            requests = static_cast<std::size_t>(std::strtoul(argv[++i],
                                                             nullptr, 10));
        } else if (arg == "--forged" && i + 1 < argc) {
            forged = static_cast<std::size_t>(std::strtoul(argv[++i],
                                                           nullptr, 10));
        } else if (arg == "--engine" && i + 1 < argc) {
            engine = argv[++i];
        } else if (arg == "--options" && i + 1 < argc) {
            option_spec = argv[++i];
        } else if (arg == "--deterministic-only") {
            deterministic_only = true;
        } else if (arg == "--open-loop") {
            open_loop = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            open_config.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--gap-ms" && i + 1 < argc) {
            open_config.gap_ms = std::strtod(argv[++i], nullptr);
        } else if (arg == "--burst-every" && i + 1 < argc) {
            open_config.burst_every = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--burst-size" && i + 1 < argc) {
            open_config.burst_size = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--connections" && i + 1 < argc) {
            open_config.connections = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--max-inflight" && i + 1 < argc) {
            open_config.max_inflight = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--max-queue-ms" && i + 1 < argc) {
            open_config.max_queue_ms = std::strtod(argv[++i], nullptr);
        } else {
            std::printf("usage: %s [--requests N] [--forged N] "
                        "[--engine <id>] [--options k=v,...] "
                        "[--deterministic-only]\n"
                        "          [--open-loop] [--seed N] [--gap-ms X] "
                        "[--burst-every N] [--burst-size N]\n"
                        "          [--connections N] [--max-inflight N] "
                        "[--max-queue-ms X]\n",
                        argv[0]);
            return 2;
        }
    }

    const std::vector<dataset::UbCase> catalog = build_catalog(forged);
    std::printf("catalog: %zu cases (%zu standard + %zu forged), trace: %zu "
                "requests, engine: %s\n\n",
                catalog.size(), catalog.size() - forged, forged, requests,
                engine.c_str());

    if (open_loop) {
        open_config.requests = requests;
        if (open_config.connections == 0) open_config.connections = 1;
        return run_open_loop(catalog, open_config, engine, option_spec);
    }

    const int deterministic_rc =
        deterministic_check(catalog, engine, option_spec);
    if (deterministic_only || deterministic_rc != 0) return deterministic_rc;

    std::printf("== zipf skew sweep (%zu requests each, fresh service per "
                "row) ==\n",
                requests);
    support::TextTable table({"skew", "unique", "wall ms", "req/s",
                              "p50 ms", "p99 ms", "prompt hits",
                              "verify hits", "steals"});
    for (double skew : {0.0, 0.7, 1.4}) {
        serve::ServiceOptions service_options;
        service_options.knowledge_base = &bench::knowledge_base();
        serve::RepairService service(service_options);
        const std::vector<std::size_t> trace =
            make_trace(catalog.size(), requests, skew);
        const ReplayOutcome outcome =
            replay(service, catalog, trace, engine, option_spec);
        table.add_row(
            {support::format_double(skew, 1),
             std::to_string(outcome.unique_cases),
             support::format_double(outcome.wall_ms, 0),
             support::format_double(
                 1000.0 * static_cast<double>(requests) / outcome.wall_ms, 1),
             support::format_double(outcome.p50_ms, 1),
             support::format_double(outcome.p99_ms, 1),
             support::format_double(outcome.prompt_hit_rate, 1) + "%",
             support::format_double(outcome.report_hit_rate, 1) + "%",
             std::to_string(outcome.steals)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("== cold vs warm (identical trace, one service) ==\n");
    {
        serve::ServiceOptions service_options;
        service_options.knowledge_base = &bench::knowledge_base();
        serve::RepairService service(service_options);
        const std::vector<std::size_t> trace =
            make_trace(catalog.size(), requests, 1.0);
        const ReplayOutcome cold =
            replay(service, catalog, trace, engine, option_spec);
        const ReplayOutcome warm =
            replay(service, catalog, trace, engine, option_spec);
        std::printf("cold: %.0f ms (prompt %.1f%%, verify %.1f%%)\n",
                    cold.wall_ms, cold.prompt_hit_rate, cold.report_hit_rate);
        std::printf("warm: %.0f ms (prompt %.1f%%, verify %.1f%%) — %.2fx\n",
                    warm.wall_ms, warm.prompt_hit_rate, warm.report_hit_rate,
                    warm.wall_ms > 0.0 ? cold.wall_ms / warm.wall_ms : 0.0);
        const serve::ServiceStats stats = service.stats();
        std::printf("service: %llu completed, queue p. wait avg %.2f ms "
                    "(max %.2f), %llu steals across %zu workers\n\n",
                    static_cast<unsigned long long>(stats.completed),
                    stats.completed > 0
                        ? stats.queue_ms_total /
                              static_cast<double>(stats.completed)
                        : 0.0,
                    stats.queue_ms_max,
                    static_cast<unsigned long long>(stats.scheduler.steals),
                    service.workers());
    }
    return 0;
}
