// Fig. 7 (RQ1, flexibility) — one UB requiring semantic modification is
// repaired under ten solution-group configurations with agents selectively
// enabled/disabled. The paper's observations reproduced here:
//   (i)   fast thinking yields diverse solutions, not one fixed path;
//   (ii)  the knowledge base helps but costs 2-4x overhead; the feedback
//         mechanism recovers most of the benefit without it;
//   (iii) fixed-process configurations include generic steps that add
//         overhead and can miss semantically acceptable fixes;
//   (iv)  wrong strategy families may pass Miri yet fail acceptability.
#include "common.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

int main() {
    std::printf("== Fig. 7: flexible repair of one semantic-modification UB ==\n\n");

    // A both-borrow case whose developer fix is a semantic modification.
    const dataset::UbCase* ub_case = corpus().find("bothborrow/juggle_0");
    if (ub_case == nullptr) {
        std::printf("corpus case missing\n");
        return 1;
    }
    std::printf("case: %s (category %s, intended fix: %s)\n\n",
                ub_case->id.c_str(), miri::ub_category_label(ub_case->category),
                dataset::fix_strategy_name(ub_case->intended_strategy));

    struct Group {
        const char* label;
        bool kb;
        bool feedback;
        bool rollback;
        bool features;
        int solutions;
    };
    const Group groups[] = {
        {"G1  full RustBrain", true, true, true, true, 6},
        {"G2  no knowledge base", false, true, true, true, 6},
        {"G3  fixed single-solution", false, false, true, true, 1},
        {"G4  no rollback", true, true, false, true, 6},
        {"G5  KB only (no feedback)", true, false, true, true, 6},
        {"G6  KB + feedback, 3 solutions", true, true, true, true, 3},
        {"G7  no features, single", false, false, true, false, 1},
        {"G8  KB, no features", true, true, true, false, 6},
        {"G9  feedback only", false, true, true, true, 6},
        {"G10 minimal (no scaffolding)", false, false, false, false, 1},
    };

    support::TextTable table({"group", "agents", "solutions", "pass", "exec",
                              "time(s)", "winning rule"});
    // Groups are independent configurations, so they fan out across the
    // thread pool; the feedback warm-up inside a group stays sequential
    // (that ordering is the mechanism being measured). Rows are emitted in
    // group order after the join, so output is identical to a serial run.
    constexpr std::size_t kGroupCount = sizeof(groups) / sizeof(groups[0]);
    std::vector<core::CaseResult> results(kGroupCount);
    support::ThreadPool pool(support::ThreadPool::hardware_threads());
    pool.parallel_for(kGroupCount, [&](std::size_t index, std::size_t) {
        const Group& group = groups[index];
        const std::string options =
            std::string("model=gpt-4") +
            ",knowledge=" + (group.kb ? "on" : "off") +
            ",feedback=" + (group.feedback ? "on" : "off") +
            ",rollback=" + (group.rollback ? "on" : "off") +
            ",features=" + (group.features ? "on" : "off") +
            ",max_solutions=" + std::to_string(group.solutions);
        core::FeedbackStore feedback;
        core::EngineBuildContext context;
        if (group.kb) context.knowledge_base = &knowledge_base();
        context.feedback = &feedback;
        const auto engine = core::EngineRegistry::builtin().build(
            "rustbrain", core::EngineOptions::parse(options), context);
        // Feedback needs history to matter: warm it on the sibling variants
        // (the engine shares the store across its repairs).
        if (group.feedback) {
            for (const char* sibling :
                 {"bothborrow/juggle_1", "bothborrow/juggle_2"}) {
                if (const auto* warm_case = corpus().find(sibling)) {
                    (void)engine->repair(*warm_case);
                }
            }
        }
        results[index] = engine->repair(*ub_case);
    });

    for (std::size_t index = 0; index < kGroupCount; ++index) {
        const Group& group = groups[index];
        const core::CaseResult& result = results[index];
        std::string agents = "fix";
        if (group.rollback) agents += "+rollback";
        if (group.kb) agents += "+reasoning";
        table.add_row({group.label, agents, std::to_string(result.solutions_generated),
                       result.pass ? "yes" : "no", result.exec ? "yes" : "no",
                       support::format_double(result.time_ms / 1000.0, 1),
                       result.winning_rule.empty() ? "-" : result.winning_rule});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "observations: multi-solution groups succeed where single-solution "
        "fixed configurations miss acceptability; the knowledge base and "
        "feedback trade overhead for precision (paper notes 2-4x KB cost).\n");
    return 0;
}
