// Policy ablation (not a paper figure): every registered thinking policy
// swept over one forged corpus, so the fast↔slow switch strategies can be
// compared on the (accuracy, acceptability, overhead) triplet the paper
// evaluates solutions on.
//
//   $ ./bench/policy_ablation                      # forge 560 cases at seed 42
//   $ ./bench/policy_ablation --count 160 --limit 40   # CI smoke slice
//   $ ./bench/policy_ablation --corpus forged.rbc  # saved corpus
//   $ ./bench/policy_ablation --engine standalone  # gate a baseline instead
//
// Two phases:
//   1. a sequential warm-up campaign under the default `paper` policy
//      accumulates a FeedbackStore over the slice — the confidence signal
//      the feedback-guided policy thresholds on (without it, every policy
//      that keys off feedback degenerates to `paper`);
//   2. per policy, a parallel sweep warm-started from that snapshot (each
//      case gets a private copy, so results are worker-count-invariant),
//      all policies sharing one prompt cache and one verification oracle.
//
// Columns: pass/exec rates, total + per-case virtual overhead, LLM calls,
// and the ThinkingSwitch tallies (escalations / early stops / skips /
// fast-only shortcuts). `paper` is the reference row — bit-identical to
// the pre-policy orchestrator by the registry's default contract.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/batch_runner.hpp"
#include "core/thinking_policy.hpp"
#include "gen/corpus_io.hpp"
#include "gen/forge.hpp"
#include "llm/caching_backend.hpp"
#include "support/thread_pool.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

namespace {

int usage(const char* argv0) {
    std::printf("usage: %s [--count N] [--limit N] [--corpus <file>] "
                "[--engine <id>]\n\navailable policies:\n%s",
                argv0, core::PolicyRegistry::builtin().help().c_str());
    return 2;
}

bool parse_size(const char* text, std::size_t& out) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0') return false;
    out = static_cast<std::size_t>(value);
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    std::string corpus_path;
    std::string engine_id = "rustbrain";
    std::size_t count = 560;
    std::size_t limit = 0;  // 0 = whole corpus
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--corpus" && i + 1 < argc) {
            corpus_path = argv[++i];
        } else if (arg == "--engine" && i + 1 < argc) {
            engine_id = argv[++i];
        } else if (arg == "--count" && i + 1 < argc) {
            if (!parse_size(argv[++i], count) || count == 0) {
                std::printf("error: --count expects a positive number\n\n");
                return usage(argv[0]);
            }
        } else if (arg == "--limit" && i + 1 < argc) {
            if (!parse_size(argv[++i], limit)) {
                std::printf("error: --limit expects a number\n\n");
                return usage(argv[0]);
            }
        } else {
            return usage(argv[0]);
        }
    }

    dataset::Corpus big_corpus;
    try {
        if (corpus_path.empty()) {
            gen::ForgeOptions forge_options;
            forge_options.seed = 42;
            forge_options.count = count;
            big_corpus = gen::forge_corpus(forge_options);
            std::printf("forged %zu cases in-process at seed 42\n",
                        big_corpus.size());
        } else {
            big_corpus = gen::load_corpus(corpus_path);
            std::printf("loaded %zu cases from %s\n", big_corpus.size(),
                        corpus_path.c_str());
        }
    } catch (const std::exception& error) {
        std::printf("error: %s\n", error.what());
        return 1;
    }

    std::vector<const dataset::UbCase*> cases;
    for (const dataset::UbCase& ub_case : big_corpus.cases()) {
        if (limit != 0 && cases.size() >= limit) break;
        cases.push_back(&ub_case);
    }

    kb::KnowledgeBase kbase;
    kb::seed_from_corpus(big_corpus, kbase);
    core::EngineBuildContext context;
    context.knowledge_base = &kbase;
    // One prompt cache + one verification oracle shared by every policy
    // sweep: the policies differ in *which* work they do, not in what any
    // repeated piece of work answers.
    context.backend_factory =
        llm::caching_backend_factory(std::make_shared<llm::PromptCache>());
    {
        verify::OracleOptions oracle_options;
        oracle_options.cache = std::make_shared<verify::VerifyCache>();
        oracle_options.caching = true;
        context.oracle =
            std::make_shared<verify::Oracle>(std::move(oracle_options));
    }

    // Fail fast on a bad engine id before the warm-up runs.
    try {
        (void)core::EngineRegistry::builtin().build(engine_id, {}, context);
    } catch (const std::invalid_argument& error) {
        std::printf("error: %s\n\n", error.what());
        return usage(argv[0]);
    }

    std::printf("== policy ablation: %zu-case sweep, engine %s ==\n\n",
                cases.size(), engine_id.c_str());

    // Phase 1: sequential paper-policy campaign to learn feedback (the
    // signal feedback-guided thresholds on).
    core::FeedbackStore warm;
    {
        core::EngineBuildContext warm_context = context;
        warm_context.feedback = &warm;
        const auto engine =
            core::EngineRegistry::builtin().build(engine_id, {}, warm_context);
        (void)core::BatchRunner::run_sequential(
            cases, [&](const dataset::UbCase& ub_case) {
                return engine->repair(ub_case);
            });
    }
    std::printf("feedback warm-up: %zu feature keys, %llu records\n\n",
                warm.key_count(),
                static_cast<unsigned long long>(warm.records()));

    // Phase 2: one warm-started parallel sweep per registered policy.
    // "screen p/l/u" is the proven-safe / likely-ub / unknown verdict mix
    // the pre-screener handed the cases of that sweep (what the `screened`
    // policy keys on).
    support::TextTable table({"policy", "pass", "exec", "virtual min",
                              "s/case", "llm calls", "escal", "stops", "skips",
                              "fast-only", "screen p/l/u"});
    const std::size_t workers = support::ThreadPool::hardware_threads();
    for (const std::string& policy_id :
         core::PolicyRegistry::builtin().ids()) {
        core::EngineOptions options;
        core::set_policy_option(options, policy_id);
        const core::BatchRunner runner(engine_id, options, context,
                                       core::BatchOptions{workers}, &warm);
        const core::BatchReport report = runner.run(cases);

        std::uint64_t llm_calls = 0;
        int escalations = 0;
        int early_stops = 0;
        int skips = 0;
        int fast_only = 0;
        int screen_proven = 0;
        int screen_likely = 0;
        int screen_unknown = 0;
        for (const core::CaseResult& result : report.results) {
            llm_calls += result.llm_calls;
            escalations += result.escalations;
            early_stops += result.early_stops;
            skips += result.attempts_skipped;
            // A case that switched but never escalated ran on intuition.
            fast_only += result.thinking_switches > 0 && result.escalations == 0;
            screen_proven += result.screen_proven_safe;
            screen_likely += result.screen_likely_ub;
            screen_unknown += result.screen_unknown;
        }
        table.add_row(
            {policy_id, pct(100.0 * report.pass_total() / cases.size()) + "%",
             pct(100.0 * report.exec_total() / cases.size()) + "%",
             support::format_double(report.virtual_ms_total() / 60000.0, 1),
             support::format_double(report.virtual_ms_total() / 1000.0 /
                                        static_cast<double>(cases.size()),
                                    2),
             std::to_string(llm_calls), std::to_string(escalations),
             std::to_string(early_stops), std::to_string(skips),
             std::to_string(fast_only),
             std::to_string(screen_proven) + "/" +
                 std::to_string(screen_likely) + "/" +
                 std::to_string(screen_unknown)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "note: `paper` is the fixed switch the paper describes (and the "
        "bit-identity reference); feedback-guided trades escalations for "
        "fast-only shortcuts on confident shapes, screened keys the switch "
        "off the static pre-screener's verdict, budget cuts long "
        "refinement tails, fast-only/slow-all bracket the trade-off space.\n");
    std::printf("static pre-screen (all sweeps): %s\n",
                context.oracle->screen_summary().c_str());
    return 0;
}
