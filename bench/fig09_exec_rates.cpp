// Fig. 9 — "RustBrain fixes UBs semantic acceptability rate": exec rate
// (passes MiriLite AND matches the developer reference semantics) per UB
// category for the same seven configurations as Fig. 8.
#include "common.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

int main() {
    std::printf("== Fig. 9: execution (semantic acceptability) rate (%%) ==\n\n");

    const std::vector<LabelledRates> configs = seven_standard_configs();

    std::vector<std::string> headers = {"category"};
    for (const auto& config : configs) headers.push_back(config.label);
    support::TextTable table(headers);
    for (miri::UbCategory category : corpus().categories()) {
        std::vector<std::string> row = {miri::ub_category_label(category)};
        for (const auto& config : configs) {
            row.push_back(pct(config.rates.exec_rate(category)));
        }
        table.add_row(std::move(row));
    }
    std::vector<std::string> avg_row = {"AVERAGE"};
    for (const auto& config : configs) {
        avg_row.push_back(pct(config.rates.exec_rate_total()));
    }
    table.add_row(std::move(avg_row));
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "paper headline: GPT-4+RustBrain(+KB) averages 80.4%% exec; the KB "
        "lifts exec by ~10 points over the non-knowledge configuration.\n");
    return 0;
}
