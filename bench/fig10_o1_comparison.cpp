// Fig. 10 — GPT-4+RustBrain vs GPT-O1+RustBrain on the subset of categories
// the paper evaluated (O1's cost limited the study): alloc, tailcall,
// danglingpointer, func.pointer, panic, unaligned, func.call.
#include "common.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

int main() {
    std::printf("== Fig. 10: GPT-4+RustBrain vs GPT-O1+RustBrain (subset) ==\n\n");

    const std::vector<miri::UbCategory> subset = {
        miri::UbCategory::Alloc,       miri::UbCategory::TailCall,
        miri::UbCategory::DanglingPointer, miri::UbCategory::FuncPointer,
        miri::UbCategory::Panic,       miri::UbCategory::Unaligned,
        miri::UbCategory::FuncCall,
    };

    // Parallel, case-independent sweeps (no cross-case feedback — see the
    // note in fig08), both selected by registry id.
    const CategoryRates gpt4_rates =
        engine_sweep("rustbrain", "model=gpt-4", kb_context(), &subset);
    const CategoryRates o1_rates =
        engine_sweep("rustbrain", "model=gpt-o1", kb_context(), &subset);

    support::TextTable table({"category", "gpt4+RB pass", "o1+RB pass",
                              "gpt4+RB exec", "o1+RB exec"});
    for (miri::UbCategory category : subset) {
        table.add_row({miri::ub_category_label(category),
                       pct(gpt4_rates.pass_rate(category)),
                       pct(o1_rates.pass_rate(category)),
                       pct(gpt4_rates.exec_rate(category)),
                       pct(o1_rates.exec_rate(category))});
    }
    table.add_row({"AVERAGE", pct(gpt4_rates.pass_rate_total()),
                   pct(o1_rates.pass_rate_total()),
                   pct(gpt4_rates.exec_rate_total()),
                   pct(o1_rates.exec_rate_total())});
    std::printf("%s\n", table.render().c_str());

    const double panic_gap = gpt4_rates.exec_rate(miri::UbCategory::Panic) -
                             o1_rates.exec_rate(miri::UbCategory::Panic);
    std::printf(
        "panic exec gap (gpt4+RB - o1+RB): %+.1f points — the paper reports "
        "O1 'fails to provide suitable solutions' for uncommon errors like "
        "panic (RustBrain+GPT-4 exec +35.6%% there).\n",
        panic_gap);
    std::printf("avg o1 repair time: %.1fs vs gpt-4: %.1fs (O1's cost is why "
                "the paper only ran a subset).\n",
                o1_rates.time_total_ms / o1_rates.case_total / 1000.0,
                gpt4_rates.time_total_ms / gpt4_rates.case_total / 1000.0);
    return 0;
}
