// Fig. 12 — RustBrain vs RustAssistant (the state-of-the-art fixed-pipeline
// LLM repair tool): pass and exec per category, plus RustBrain's
// non-knowledge exec. Paper headline: +33% pass, +41% exec for RustBrain.
#include "common.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

int main() {
    std::printf("== Fig. 12: RustBrain vs RustAssistant-style fixed pipeline ==\n\n");

    core::FeedbackStore feedback;
    core::RustBrain rb(rustbrain_config("gpt-4", true), &knowledge_base(),
                       &feedback);
    const CategoryRates rb_rates = sweep(
        [&](const dataset::UbCase& ub_case) { return rb.repair(ub_case); });

    core::FeedbackStore feedback_nk;
    core::RustBrain rb_nk(rustbrain_config("gpt-4", false), nullptr, &feedback_nk);
    const CategoryRates rb_nk_rates = sweep(
        [&](const dataset::UbCase& ub_case) { return rb_nk.repair(ub_case); });

    baselines::FixedPipeline assistant({"gpt-4", 0.5, 2, 42});
    const CategoryRates ra_rates = sweep(
        [&](const dataset::UbCase& ub_case) { return assistant.repair(ub_case); });

    support::TextTable table({"category", "RustBrain pass", "RustAssistant pass",
                              "RustBrain exec", "RustAssistant exec",
                              "RB non-knowledge exec"});
    for (miri::UbCategory category : corpus().categories()) {
        table.add_row({miri::ub_category_label(category),
                       pct(rb_rates.pass_rate(category)),
                       pct(ra_rates.pass_rate(category)),
                       pct(rb_rates.exec_rate(category)),
                       pct(ra_rates.exec_rate(category)),
                       pct(rb_nk_rates.exec_rate(category))});
    }
    table.add_row({"AVERAGE", pct(rb_rates.pass_rate_total()),
                   pct(ra_rates.pass_rate_total()),
                   pct(rb_rates.exec_rate_total()),
                   pct(ra_rates.exec_rate_total()),
                   pct(rb_nk_rates.exec_rate_total())});
    std::printf("%s\n", table.render().c_str());

    const double pass_gain = 100.0 * (rb_rates.pass_rate_total() -
                                      ra_rates.pass_rate_total()) /
                             ra_rates.pass_rate_total();
    const double exec_gain = 100.0 * (rb_rates.exec_rate_total() -
                                      ra_rates.exec_rate_total()) /
                             ra_rates.exec_rate_total();
    std::printf("RustBrain over RustAssistant: pass %+.0f%%, exec %+.0f%% "
                "(paper: +33%% pass, +41%% exec).\n",
                pass_gain, exec_gain);
    return 0;
}
