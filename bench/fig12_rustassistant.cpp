// Fig. 12 — RustBrain vs RustAssistant (the state-of-the-art fixed-pipeline
// LLM repair tool): pass and exec per category, plus RustBrain's
// non-knowledge exec. Paper headline: +33% pass, +41% exec for RustBrain.
#include "common.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

int main() {
    std::printf("== Fig. 12: RustBrain vs RustAssistant-style fixed pipeline ==\n\n");

    // Parallel, case-independent sweeps (no cross-case feedback — see the
    // note in fig08); both contenders are measured under the same rules.
    const CategoryRates rb_rates = engine_sweep("rustbrain", "model=gpt-4");
    const CategoryRates rb_nk_rates =
        engine_sweep("rustbrain", "model=gpt-4,knowledge=off",
                     core::EngineBuildContext{});
    const CategoryRates ra_rates =
        engine_sweep("fixed-pipeline", "model=gpt-4,max_iterations=2",
                     core::EngineBuildContext{});

    support::TextTable table({"category", "RustBrain pass", "RustAssistant pass",
                              "RustBrain exec", "RustAssistant exec",
                              "RB non-knowledge exec"});
    for (miri::UbCategory category : corpus().categories()) {
        table.add_row({miri::ub_category_label(category),
                       pct(rb_rates.pass_rate(category)),
                       pct(ra_rates.pass_rate(category)),
                       pct(rb_rates.exec_rate(category)),
                       pct(ra_rates.exec_rate(category)),
                       pct(rb_nk_rates.exec_rate(category))});
    }
    table.add_row({"AVERAGE", pct(rb_rates.pass_rate_total()),
                   pct(ra_rates.pass_rate_total()),
                   pct(rb_rates.exec_rate_total()),
                   pct(ra_rates.exec_rate_total()),
                   pct(rb_nk_rates.exec_rate_total())});
    std::printf("%s\n", table.render().c_str());

    const double pass_gain = 100.0 * (rb_rates.pass_rate_total() -
                                      ra_rates.pass_rate_total()) /
                             ra_rates.pass_rate_total();
    const double exec_gain = 100.0 * (rb_rates.exec_rate_total() -
                                      ra_rates.exec_rate_total()) /
                             ra_rates.exec_rate_total();
    std::printf("RustBrain over RustAssistant: pass %+.0f%%, exec %+.0f%% "
                "(paper: +33%% pass, +41%% exec).\n",
                pass_gain, exec_gain);
    return 0;
}
