// Table I — repair time of RustBrain vs human experts, per UB category.
//
// Columns follow the paper: RustBrain with no knowledge base, RustBrain
// with the knowledge base (feedback disabled so every case pays the KB
// consultation — the "knowledge" cost column), the human expert, and the
// speedup (human / no-knowledge, as in the paper's average of 7.4x).
// A final column shows knowledge+feedback, where the self-learning loop
// skips KB lookups once it is confident — the paper's red cells. Every
// column is a registry id + option spec.
#include "common.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

int main() {
    std::printf("== Table I: execution time of RustBrain against human ==\n\n");

    // Table I is a *time* table and self-learning is precisely a time
    // effect, so both feedback-bearing columns (no-knowledge and
    // knowledge+feedback) keep their ordered, shared-store semantics.
    core::FeedbackStore fb_nk;
    core::EngineBuildContext nk_context;
    nk_context.feedback = &fb_nk;
    const CategoryRates nk =
        ordered_engine_sweep("rustbrain", "model=gpt-4,knowledge=off", nk_context);

    // Pure-knowledge column: consult always.
    const CategoryRates kn = engine_sweep("rustbrain", "model=gpt-4,feedback=off");

    // The knowledge+feedback column is the self-learning demonstration
    // (the paper's red cells): feedback recorded on early cases must be
    // visible to later ones, so this sweep is also ordered.
    core::FeedbackStore fb_kf;
    core::EngineBuildContext kf_context = kb_context();
    kf_context.feedback = &fb_kf;
    const CategoryRates kf =
        ordered_engine_sweep("rustbrain", "model=gpt-4", kf_context);

    const CategoryRates human =
        engine_sweep("expert", "seed=42", core::EngineBuildContext{});

    support::TextTable table({"type", "RB no-knowledge (s)", "RB knowledge (s)",
                              "human (s)", "speedup", "knowledge+feedback (s)"});
    for (miri::UbCategory category : corpus().categories()) {
        const double nk_s = nk.avg_time_s(category);
        const double human_s = human.avg_time_s(category);
        table.add_row({miri::ub_category_label(category),
                       support::format_double(nk_s, 1),
                       support::format_double(kn.avg_time_s(category), 1),
                       support::format_double(human_s, 1),
                       support::format_double(nk_s > 0 ? human_s / nk_s : 0.0, 2) +
                           "x",
                       support::format_double(kf.avg_time_s(category), 1)});
    }
    const double nk_avg = nk.time_total_ms / nk.case_total / 1000.0;
    const double kn_avg = kn.time_total_ms / kn.case_total / 1000.0;
    const double kf_avg = kf.time_total_ms / kf.case_total / 1000.0;
    const double human_avg = human.time_total_ms / human.case_total / 1000.0;
    table.add_row({"Average", support::format_double(nk_avg, 1),
                   support::format_double(kn_avg, 1),
                   support::format_double(human_avg, 1),
                   support::format_double(human_avg / nk_avg, 2) + "x",
                   support::format_double(kf_avg, 1)});
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "paper: avg 62.6s (no knowledge) / 84.9s (knowledge) / 442s (human), "
        "7.4x average speedup, up to 18.1x on func.calls; the feedback "
        "mechanism reduces knowledge-base dependence (red cells).\n");
    return 0;
}
