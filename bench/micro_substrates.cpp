// Engineering micro-benchmarks (google-benchmark) for the substrates:
// parser, type checker, interpreter, pruning, vectorization, KB query,
// rule application. Not a paper figure — performance guardrails for the
// toolchain the experiments run on.
#include <benchmark/benchmark.h>

#include "analysis/prune.hpp"
#include "analysis/vectorize.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/typecheck.hpp"
#include "llm/rules.hpp"
#include "miri/interp.hpp"
#include "miri/lower.hpp"
#include "miri/mirilite.hpp"
#include "screen/screen.hpp"
#include "verify/oracle.hpp"

namespace {

using namespace rustbrain;

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

const std::string& sample_source() {
    static const std::string source =
        corpus().find("uninit/partial_init_0")->buggy_source;
    return source;
}

void BM_Parse(benchmark::State& state) {
    for (auto _ : state) {
        auto program = lang::try_parse(sample_source());
        benchmark::DoNotOptimize(program);
    }
}
BENCHMARK(BM_Parse);

void BM_TypeCheck(benchmark::State& state) {
    auto program = lang::try_parse(sample_source());
    for (auto _ : state) {
        lang::Program clone = program->clone();
        const bool ok = lang::type_check(clone);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_TypeCheck);

void BM_Print(benchmark::State& state) {
    auto program = lang::try_parse(sample_source());
    for (auto _ : state) {
        std::string out = lang::print_program(*program);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_Print);

void BM_MiriRun(benchmark::State& state) {
    const auto* ub_case = corpus().find("uninit/partial_init_0");
    miri::MiriLite miri;
    for (auto _ : state) {
        auto report = miri.test_source(ub_case->reference_fix, ub_case->inputs);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_MiriRun);

void BM_MiriThreadedRun(benchmark::State& state) {
    const auto* ub_case = corpus().find("datarace/counter_0");
    miri::MiriLite miri;
    for (auto _ : state) {
        auto report = miri.test_source(ub_case->reference_fix, ub_case->inputs);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_MiriThreadedRun);

// The verification-oracle ladder over the same workload as BM_MiriRun:
// tree-walk interpretation only, slot-lowered interpretation only, the
// static pre-screener only, a fully uncached Oracle call (front end +
// lowering + interpretation), and a memoized Oracle call (report served
// from cache).
void BM_InterpTreeWalk(benchmark::State& state) {
    const auto* ub_case = corpus().find("uninit/partial_init_0");
    auto program = lang::try_parse(ub_case->reference_fix);
    lang::type_check(*program);
    for (auto _ : state) {
        for (const auto& inputs : ub_case->inputs) {
            miri::Interpreter interp(*program, inputs);
            auto result = interp.run();
            benchmark::DoNotOptimize(result);
        }
    }
}
BENCHMARK(BM_InterpTreeWalk);

void BM_InterpSlotLowered(benchmark::State& state) {
    const auto* ub_case = corpus().find("uninit/partial_init_0");
    auto program = lang::try_parse(ub_case->reference_fix);
    lang::type_check(*program);
    const miri::LoweredProgram lowered = miri::lower_program(*program);
    for (auto _ : state) {
        for (const auto& inputs : ub_case->inputs) {
            miri::Interpreter interp(*program, inputs, {}, &lowered);
            auto result = interp.run();
            benchmark::DoNotOptimize(result);
        }
    }
}
BENCHMARK(BM_InterpSlotLowered);

void BM_ScreenOnly(benchmark::State& state) {
    // The screening rung of the ladder: abstract interpretation over the
    // already-compiled program, no MiriLite run (this workload screens
    // ProvenSafe, the case where the Oracle skips interpretation entirely).
    const auto* ub_case = corpus().find("uninit/partial_init_0");
    auto program = lang::try_parse(ub_case->reference_fix);
    lang::type_check(*program);
    const miri::LoweredProgram lowered = miri::lower_program(*program);
    for (auto _ : state) {
        auto result =
            screen::screen_program(*program, lowered, ub_case->inputs, {});
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_ScreenOnly);

void BM_OracleUncached(benchmark::State& state) {
    const auto* ub_case = corpus().find("uninit/partial_init_0");
    verify::OracleOptions options;
    options.caching = false;
    const verify::Oracle oracle(std::move(options));
    for (auto _ : state) {
        auto report =
            oracle.test_source(ub_case->reference_fix, ub_case->inputs);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_OracleUncached);

void BM_OracleMemoized(benchmark::State& state) {
    const auto* ub_case = corpus().find("uninit/partial_init_0");
    verify::OracleOptions options;
    options.cache = std::make_shared<verify::VerifyCache>();
    options.caching = true;
    const verify::Oracle oracle(std::move(options));
    for (auto _ : state) {
        auto report =
            oracle.test_source(ub_case->reference_fix, ub_case->inputs);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_OracleMemoized);

void BM_PruneAst(benchmark::State& state) {
    auto program = lang::try_parse(sample_source());
    for (auto _ : state) {
        auto pruned = analysis::prune_ast(*program);
        benchmark::DoNotOptimize(pruned);
    }
}
BENCHMARK(BM_PruneAst);

void BM_Vectorize(benchmark::State& state) {
    auto program = lang::try_parse(sample_source());
    for (auto _ : state) {
        auto vec = analysis::vectorize(*program);
        benchmark::DoNotOptimize(vec);
    }
}
BENCHMARK(BM_Vectorize);

void BM_KbQuery(benchmark::State& state) {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase k;
        kb::seed_from_corpus(corpus(), k);
        return k;
    }();
    auto program = lang::try_parse(sample_source());
    const auto probe = analysis::vectorize(*program);
    for (auto _ : state) {
        auto hits = kbase.query(probe, 3, 0.6);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_KbQuery);

void BM_RuleApply(benchmark::State& state) {
    const auto* ub_case = corpus().find("danglingpointer/use_after_free_0");
    auto program = lang::try_parse(ub_case->buggy_source);
    const llm::RepairRule* rule = llm::find_rule("move-dealloc-to-end");
    miri::Finding finding;
    finding.category = miri::UbCategory::DanglingPointer;
    for (auto _ : state) {
        auto patched = rule->apply(*program, finding);
        benchmark::DoNotOptimize(patched);
    }
}
BENCHMARK(BM_RuleApply);

void BM_CorpusBuild(benchmark::State& state) {
    for (auto _ : state) {
        auto c = dataset::Corpus::standard();
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CorpusBuild);

}  // namespace

BENCHMARK_MAIN();
