// Engineering micro-benchmarks (google-benchmark) for the substrates:
// parser, type checker, interpreter, pruning, vectorization, KB query,
// rule application. Not a paper figure — performance guardrails for the
// toolchain the experiments run on.
#include <benchmark/benchmark.h>

#include "analysis/prune.hpp"
#include "analysis/vectorize.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/typecheck.hpp"
#include "llm/rules.hpp"
#include "miri/interp.hpp"
#include "miri/lower.hpp"
#include "miri/mirilite.hpp"
#include "screen/screen.hpp"
#include "verify/oracle.hpp"
#include "vm/peephole.hpp"
#include "vm/vm.hpp"

namespace {

using namespace rustbrain;

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

const std::string& sample_source() {
    static const std::string source =
        corpus().find("uninit/partial_init_0")->buggy_source;
    return source;
}

void BM_Parse(benchmark::State& state) {
    for (auto _ : state) {
        auto program = lang::try_parse(sample_source());
        benchmark::DoNotOptimize(program);
    }
}
BENCHMARK(BM_Parse);

void BM_TypeCheck(benchmark::State& state) {
    auto program = lang::try_parse(sample_source());
    for (auto _ : state) {
        lang::Program clone = program->clone();
        const bool ok = lang::type_check(clone);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_TypeCheck);

void BM_Print(benchmark::State& state) {
    auto program = lang::try_parse(sample_source());
    for (auto _ : state) {
        std::string out = lang::print_program(*program);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_Print);

void BM_MiriRun(benchmark::State& state) {
    const auto* ub_case = corpus().find("uninit/partial_init_0");
    miri::MiriLite miri;
    for (auto _ : state) {
        auto report = miri.test_source(ub_case->reference_fix, ub_case->inputs);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_MiriRun);

void BM_MiriThreadedRun(benchmark::State& state) {
    const auto* ub_case = corpus().find("datarace/counter_0");
    miri::MiriLite miri;
    for (auto _ : state) {
        auto report = miri.test_source(ub_case->reference_fix, ub_case->inputs);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_MiriThreadedRun);

// Workload for the interpreter ladder. The corpus fixes are a few
// statements each, so a run through them measures allocation setup and
// teardown — identical across execution tiers — rather than the cost of
// interpreting code. This program is the opposite shape: one hot loop,
// sixteen named locals referenced from a wide arithmetic expression, so
// the ladder exposes the actual per-tier difference (tree-walk resolves
// every name at runtime by scanning the environment and recurses through
// the expression tree; the slot interpreter and the VM resolve names to
// slots at lower/compile time, and the VM additionally replaces tree
// recursion with flat bytecode dispatch).
const char* interp_ladder_source() {
    return R"(
fn main() {
    let mut value_00: i64 = 3;
    let mut value_01: i64 = 10;
    let mut value_02: i64 = 17;
    let mut value_03: i64 = 24;
    let mut value_04: i64 = 31;
    let mut value_05: i64 = 38;
    let mut value_06: i64 = 45;
    let mut value_07: i64 = 52;
    let mut value_08: i64 = 59;
    let mut value_09: i64 = 66;
    let mut value_10: i64 = 73;
    let mut value_11: i64 = 80;
    let mut value_12: i64 = 87;
    let mut value_13: i64 = 94;
    let mut value_14: i64 = 101;
    let mut value_15: i64 = 108;
    let mut acc: i64 = 1;
    let mut i: i64 = 0;
    while i < 400 {
        acc = (acc * 31 + value_00 * 2 + value_01 * 3 + value_02 * 4 +
               value_03 * 5 + value_04 * 6 + value_05 * 7 + value_06 * 8 +
               value_07 * 9 + value_08 * 10 + value_09 * 11 + value_10 * 12 +
               value_11 * 13 + value_12 * 14 + value_13 * 15 + value_14 * 16 +
               value_15 * 17) % 1000003;
        value_00 = (value_00 + value_01) % 65521;
        value_04 = (value_04 + value_05) % 65521;
        value_08 = (value_08 + value_09) % 65521;
        value_12 = (value_12 + value_13) % 65521;
        i = i + 1;
    }
    print_int(acc);
}
)";
}

// The execution-tier ladder, all rungs over interp_ladder_source():
// tree-walk interpretation, slot-lowered interpretation, bytecode-VM
// interpretation, and the VM's one-time compile cost.
void BM_InterpTreeWalk(benchmark::State& state) {
    auto program = lang::try_parse(interp_ladder_source());
    lang::type_check(*program);
    for (auto _ : state) {
        miri::Interpreter interp(*program, {});
        auto result = interp.run();
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_InterpTreeWalk);

void BM_InterpSlotLowered(benchmark::State& state) {
    auto program = lang::try_parse(interp_ladder_source());
    lang::type_check(*program);
    const miri::LoweredProgram lowered = miri::lower_program(*program);
    for (auto _ : state) {
        miri::Interpreter interp(*program, {}, {}, &lowered);
        auto result = interp.run();
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_InterpSlotLowered);

void BM_InterpVm(benchmark::State& state) {
    // Bytecode-VM rung of the interp ladder: same workload, bytecode
    // compiled once up front (the Oracle's program cache amortizes it the
    // same way), each iteration pays dispatch + memory model only.
    auto program = lang::try_parse(interp_ladder_source());
    lang::type_check(*program);
    const miri::LoweredProgram lowered = miri::lower_program(*program);
    const vm::VmProgram bytecode = vm::compile(*program, lowered);
    for (auto _ : state) {
        vm::Vm machine(*program, bytecode, {});
        auto result = machine.run();
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_InterpVm);

void BM_InterpVmOpt(benchmark::State& state) {
    // Optimized-VM rung: same bytecode after vm::optimize (threaded
    // dispatch is always on; this adds superinstructions and register
    // promotion). Byte-identical results; this rung is the headline
    // loop-heavy speedup over BM_InterpTreeWalk.
    auto program = lang::try_parse(interp_ladder_source());
    lang::type_check(*program);
    const miri::LoweredProgram lowered = miri::lower_program(*program);
    const vm::VmProgram bytecode = vm::compile(*program, lowered);
    const vm::VmProgram optimized = vm::optimize(bytecode);
    for (auto _ : state) {
        vm::Vm machine(*program, optimized, {});
        auto result = machine.run();
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_InterpVmOpt);

// Call-heavy ladder workload: deep direct recursion (fib re-enters the
// dispatcher through real frames) plus a long `become` chain (frame reuse
// in place). Exercises enter_function / Ret / TailCall, where fusion and
// promotion barely apply — the rung ratios show dispatch + frame overhead,
// not arithmetic.
const char* interp_call_ladder_source() {
    return R"(
fn fib(n: i64) -> i64 {
    if n < 2 {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
fn spin(n: i64, acc: i64) -> i64 {
    if n == 0 {
        return acc;
    }
    become spin(n - 1, acc + n);
}
fn main() {
    let mut total: i64 = 0;
    let mut i: i64 = 0;
    while i < 6 {
        total = (total + fib(13) + spin(600, 0)) % 1000003;
        i = i + 1;
    }
    print_int(total);
}
)";
}

// Memory-heavy ladder workload: array writes through computed indices and
// whole-array reads through a reference parameter. Every access goes
// through MemoryModel (bounds, borrows, init tracking) — the registers
// never see these values, so the rung ratios isolate dispatch over a
// memory-model-bound program.
const char* interp_memory_ladder_source() {
    return R"(
fn sum(r: &[i64; 16]) -> i64 {
    let mut acc: i64 = 0;
    let mut i: i64 = 0;
    while i < 16 {
        acc = acc + r[i];
        i = i + 1;
    }
    return acc;
}
fn main() {
    let mut a: [i64; 16] = [3, 10, 17, 24, 31, 38, 45, 52,
                            59, 66, 73, 80, 87, 94, 101, 108];
    let mut acc: i64 = 0;
    let mut i: i64 = 0;
    while i < 150 {
        a[i % 16] = (a[(i + 1) % 16] + i) % 65521;
        acc = (acc + sum(&a)) % 1000003;
        i = i + 1;
    }
    print_int(acc);
}
)";
}

enum class Rung { Tree, Slot, Vm, VmOpt };

void BM_InterpRung(benchmark::State& state, const char* source, Rung rung) {
    auto program = lang::try_parse(source);
    lang::type_check(*program);
    const miri::LoweredProgram lowered = miri::lower_program(*program);
    const bool wants_vm = rung == Rung::Vm || rung == Rung::VmOpt;
    const vm::VmProgram bytecode =
        wants_vm ? vm::compile(*program, lowered) : vm::VmProgram{};
    const vm::VmProgram optimized =
        rung == Rung::VmOpt ? vm::optimize(bytecode) : vm::VmProgram{};
    for (auto _ : state) {
        miri::RunResult result;
        switch (rung) {
            case Rung::Tree: {
                miri::Interpreter interp(*program, {});
                result = interp.run();
                break;
            }
            case Rung::Slot: {
                miri::Interpreter interp(*program, {}, {}, &lowered);
                result = interp.run();
                break;
            }
            case Rung::Vm: {
                vm::Vm machine(*program, bytecode, {});
                result = machine.run();
                break;
            }
            case Rung::VmOpt: {
                vm::Vm machine(*program, optimized, {});
                result = machine.run();
                break;
            }
        }
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK_CAPTURE(BM_InterpRung, call_heavy_tree, interp_call_ladder_source(),
                  Rung::Tree);
BENCHMARK_CAPTURE(BM_InterpRung, call_heavy_slot, interp_call_ladder_source(),
                  Rung::Slot);
BENCHMARK_CAPTURE(BM_InterpRung, call_heavy_vm, interp_call_ladder_source(),
                  Rung::Vm);
BENCHMARK_CAPTURE(BM_InterpRung, call_heavy_vm_opt,
                  interp_call_ladder_source(), Rung::VmOpt);
BENCHMARK_CAPTURE(BM_InterpRung, memory_heavy_tree,
                  interp_memory_ladder_source(), Rung::Tree);
BENCHMARK_CAPTURE(BM_InterpRung, memory_heavy_slot,
                  interp_memory_ladder_source(), Rung::Slot);
BENCHMARK_CAPTURE(BM_InterpRung, memory_heavy_vm,
                  interp_memory_ladder_source(), Rung::Vm);
BENCHMARK_CAPTURE(BM_InterpRung, memory_heavy_vm_opt,
                  interp_memory_ladder_source(), Rung::VmOpt);

void BM_VmOptimize(benchmark::State& state) {
    // The peephole-pass-cost column: fusion + promotion over the compiled
    // loop ladder. Like BM_VmCompile, paid once per distinct source.
    auto program = lang::try_parse(interp_ladder_source());
    lang::type_check(*program);
    const miri::LoweredProgram lowered = miri::lower_program(*program);
    const vm::VmProgram bytecode = vm::compile(*program, lowered);
    for (auto _ : state) {
        vm::VmProgram optimized = vm::optimize(bytecode);
        benchmark::DoNotOptimize(optimized);
    }
}
BENCHMARK(BM_VmOptimize);

void BM_VmCompile(benchmark::State& state) {
    // The bytecode-compile-cost column: AST -> flat instruction array.
    // Paid once per distinct source (compile-once cache), so it amortizes
    // across every later vm interpretation.
    auto program = lang::try_parse(interp_ladder_source());
    lang::type_check(*program);
    const miri::LoweredProgram lowered = miri::lower_program(*program);
    for (auto _ : state) {
        vm::VmProgram bytecode = vm::compile(*program, lowered);
        benchmark::DoNotOptimize(bytecode);
    }
}
BENCHMARK(BM_VmCompile);

void BM_ScreenOnly(benchmark::State& state) {
    // The screening rung of the ladder: abstract interpretation over the
    // already-compiled program, no MiriLite run (this workload screens
    // ProvenSafe, the case where the Oracle skips interpretation entirely).
    const auto* ub_case = corpus().find("uninit/partial_init_0");
    auto program = lang::try_parse(ub_case->reference_fix);
    lang::type_check(*program);
    const miri::LoweredProgram lowered = miri::lower_program(*program);
    for (auto _ : state) {
        auto result =
            screen::screen_program(*program, lowered, ub_case->inputs, {});
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_ScreenOnly);

void BM_OracleUncached(benchmark::State& state) {
    const auto* ub_case = corpus().find("uninit/partial_init_0");
    verify::OracleOptions options;
    options.caching = false;
    const verify::Oracle oracle(std::move(options));
    for (auto _ : state) {
        auto report =
            oracle.test_source(ub_case->reference_fix, ub_case->inputs);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_OracleUncached);

void BM_OracleUncachedVm(benchmark::State& state) {
    // vm-under-oracle, fully uncached: front end + slot lowering +
    // bytecode compile + VM execution every iteration (the worst case the
    // compile-once cache exists to avoid).
    const auto* ub_case = corpus().find("uninit/partial_init_0");
    verify::OracleOptions options;
    options.caching = false;
    options.interp = verify::InterpTier::Vm;
    const verify::Oracle oracle(std::move(options));
    for (auto _ : state) {
        auto report =
            oracle.test_source(ub_case->reference_fix, ub_case->inputs);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_OracleUncachedVm);

void BM_OracleMemoized(benchmark::State& state) {
    const auto* ub_case = corpus().find("uninit/partial_init_0");
    verify::OracleOptions options;
    options.cache = std::make_shared<verify::VerifyCache>();
    options.caching = true;
    const verify::Oracle oracle(std::move(options));
    for (auto _ : state) {
        auto report =
            oracle.test_source(ub_case->reference_fix, ub_case->inputs);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_OracleMemoized);

void BM_PruneAst(benchmark::State& state) {
    auto program = lang::try_parse(sample_source());
    for (auto _ : state) {
        auto pruned = analysis::prune_ast(*program);
        benchmark::DoNotOptimize(pruned);
    }
}
BENCHMARK(BM_PruneAst);

void BM_Vectorize(benchmark::State& state) {
    auto program = lang::try_parse(sample_source());
    for (auto _ : state) {
        auto vec = analysis::vectorize(*program);
        benchmark::DoNotOptimize(vec);
    }
}
BENCHMARK(BM_Vectorize);

void BM_KbQuery(benchmark::State& state) {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase k;
        kb::seed_from_corpus(corpus(), k);
        return k;
    }();
    auto program = lang::try_parse(sample_source());
    const auto probe = analysis::vectorize(*program);
    for (auto _ : state) {
        auto hits = kbase.query(probe, 3, 0.6);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_KbQuery);

void BM_RuleApply(benchmark::State& state) {
    const auto* ub_case = corpus().find("danglingpointer/use_after_free_0");
    auto program = lang::try_parse(ub_case->buggy_source);
    const llm::RepairRule* rule = llm::find_rule("move-dealloc-to-end");
    miri::Finding finding;
    finding.category = miri::UbCategory::DanglingPointer;
    for (auto _ : state) {
        auto patched = rule->apply(*program, finding);
        benchmark::DoNotOptimize(patched);
    }
}
BENCHMARK(BM_RuleApply);

void BM_CorpusBuild(benchmark::State& state) {
    for (auto _ : state) {
        auto c = dataset::Corpus::standard();
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CorpusBuild);

}  // namespace

BENCHMARK_MAIN();
