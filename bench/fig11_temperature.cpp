// Fig. 11 — temperature sensitivity (RQ3): pass/exec rates of
// GPT-4+RustBrain across temperature 0.1..0.9 with 95% confidence
// intervals (Wilson) over repeated sampled trials. The paper reports the
// peak at temperature 0.5 (97% pass / 77% exec): low temperature loses
// solution diversity, high temperature loses semantic integrity.
#include "common.hpp"

using namespace rustbrain;
using namespace rustbrain::bench;

int main() {
    std::printf("== Fig. 11: temperature sweep, GPT-4+RustBrain, 95%% CI ==\n\n");

    constexpr int kTrials = 3;
    support::TextTable table({"temperature", "pass%", "pass 95% CI", "exec%",
                              "exec 95% CI"});

    double best_pass = 0.0;
    double best_pass_temperature = 0.0;
    for (int tenth = 1; tenth <= 9; ++tenth) {
        const double temperature = tenth / 10.0;
        std::size_t pass_count = 0;
        std::size_t exec_count = 0;
        std::size_t trials_cases = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
            // Parallel, case-independent sweep per trial (no cross-case
            // feedback — see the note in fig08).
            const CategoryRates rates = engine_sweep(
                "rustbrain",
                "model=gpt-4,temperature=" +
                    support::format_double(temperature, 1) +
                    ",seed=" + std::to_string(1000 + trial));
            pass_count += static_cast<std::size_t>(rates.pass_total);
            exec_count += static_cast<std::size_t>(rates.exec_total);
            trials_cases += static_cast<std::size_t>(rates.case_total);
        }
        const double pass_rate = 100.0 * pass_count / trials_cases;
        const double exec_rate = 100.0 * exec_count / trials_cases;
        const auto pass_ci = support::wilson_interval(pass_count, trials_cases);
        const auto exec_ci = support::wilson_interval(exec_count, trials_cases);
        if (pass_rate > best_pass) {
            best_pass = pass_rate;
            best_pass_temperature = temperature;
        }
        table.add_row(
            {support::format_double(temperature, 1), pct(pass_rate),
             "[" + pct(100.0 * pass_ci.lower) + ", " + pct(100.0 * pass_ci.upper) +
                 "]",
             pct(exec_rate),
             "[" + pct(100.0 * exec_ci.lower) + ", " + pct(100.0 * exec_ci.upper) +
                 "]"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("peak pass rate %.1f%% at temperature %.1f "
                "(paper: 97%%/77%% peak at 0.5).\n",
                best_pass, best_pass_temperature);
    return 0;
}
