#include "kb/knowledge_base.hpp"

#include <algorithm>

namespace rustbrain::kb {

void KnowledgeBase::add(KbEntry entry) { entries_.push_back(std::move(entry)); }

std::vector<KbHit> KnowledgeBase::query(const analysis::AstVector& probe,
                                        std::size_t k, double min_similarity,
                                        const std::string& exclude_hint,
                                        std::optional<miri::UbCategory> category)
    const {
    queries_.fetch_add(1, std::memory_order_relaxed);
    std::vector<KbHit> hits;
    for (const KbEntry& entry : entries_) {
        if (!exclude_hint.empty() && entry.source_hint == exclude_hint) continue;
        if (category.has_value() && entry.category != *category) continue;
        const double similarity = analysis::cosine_similarity(probe, entry.vector);
        if (similarity >= min_similarity) {
            hits.push_back({&entry, similarity});
        }
    }
    std::stable_sort(hits.begin(), hits.end(),
                     [](const KbHit& a, const KbHit& b) {
                         return a.similarity > b.similarity;
                     });
    if (hits.size() > k) {
        hits.resize(k);
    }
    hits_.fetch_add(hits.size(), std::memory_order_relaxed);
    return hits;
}

}  // namespace rustbrain::kb
