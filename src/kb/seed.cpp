#include "kb/seed.hpp"

#include "analysis/prune.hpp"
#include "dataset/semantic.hpp"
#include "llm/rules.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::kb {

lang::Program prune_or_whole(const lang::Program& program) {
    analysis::PruneStats stats;
    lang::Program pruned = analysis::prune_ast(program, &stats);
    // Programs with little or no unsafe code (panics, thread bugs) prune to
    // near-empty skeletons that all look alike; fall back to the full AST so
    // the vector still carries the program's structure.
    if (stats.pruned_nodes < 10 || stats.retained_fraction() < 0.15) {
        return program.clone();
    }
    return pruned;
}

SeedStats seed_from_corpus(const dataset::Corpus& corpus, KnowledgeBase& kb) {
    SeedStats stats;
    const verify::Oracle& oracle = verify::Oracle::shared_default();
    for (const dataset::UbCase& ub_case : corpus.cases()) {
        ++stats.cases_processed;
        // compile() shares the parsed program (and any earlier validation's
        // front-end work) with every later verification of the same source.
        const auto compiled = oracle.compile(ub_case.buggy_source);
        if (compiled->front_end ==
            verify::CompiledProgram::FrontEnd::ParseError) {
            continue;
        }
        const miri::MiriReport report =
            oracle.test_source(ub_case.buggy_source, ub_case.inputs);
        if (report.findings.empty()) continue;
        const miri::Finding& finding = report.findings.front();
        const lang::Program& program = compiled->program;

        KbEntry entry;
        entry.source_hint = ub_case.id;
        entry.category = ub_case.category;
        entry.vector = analysis::vectorize(prune_or_whole(program));

        for (const llm::RepairRule* rule :
             llm::rules_for_category(ub_case.category)) {
            const auto patched = rule->apply(program, finding);
            if (!patched) continue;
            const auto verdict =
                dataset::judge_semantics(*patched, ub_case, oracle);
            if (verdict.acceptable()) {
                entry.rule_ids.push_back(rule->id);
                ++stats.rules_verified;
            }
        }
        if (!entry.rule_ids.empty()) {
            kb.add(std::move(entry));
            ++stats.entries_added;
        }
    }
    return stats;
}

}  // namespace rustbrain::kb
