// AST-centred knowledge base (Fig 6).
//
// Entries pair a pruned-AST feature vector with the repair rules that were
// *verified* to fix that code (KB construction replays rules through
// MiriLite + the semantic judge — see seed.hpp). Queries return the most
// similar entries by cosine similarity; their rules become few-shot
// exemplars in subsequent LLM prompts.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/vectorize.hpp"
#include "miri/finding.hpp"

namespace rustbrain::kb {

struct KbEntry {
    std::string source_hint;  // provenance label (e.g. corpus case id)
    miri::UbCategory category = miri::UbCategory::Panic;
    analysis::AstVector vector{};
    std::vector<std::string> rule_ids;  // verified fixes, best first
};

struct KbHit {
    const KbEntry* entry = nullptr;
    double similarity = 0.0;
};

class KnowledgeBase {
  public:
    KnowledgeBase() = default;
    // The usage counters are atomics (so a shared const KB can serve
    // concurrent BatchRunner workers), which makes copy/move user-provided.
    KnowledgeBase(const KnowledgeBase& other)
        : entries_(other.entries_),
          queries_(other.queries_.load()),
          hits_(other.hits_.load()) {}
    KnowledgeBase(KnowledgeBase&& other) noexcept
        : entries_(std::move(other.entries_)),
          queries_(other.queries_.load()),
          hits_(other.hits_.load()) {}
    KnowledgeBase& operator=(const KnowledgeBase& other) {
        entries_ = other.entries_;
        queries_ = other.queries_.load();
        hits_ = other.hits_.load();
        return *this;
    }
    KnowledgeBase& operator=(KnowledgeBase&& other) noexcept {
        entries_ = std::move(other.entries_);
        queries_ = other.queries_.load();
        hits_ = other.hits_.load();
        return *this;
    }

    void add(KbEntry entry);

    /// Top-k entries by cosine similarity, at or above `min_similarity`.
    /// Entries whose source_hint equals `exclude_hint` are skipped so a
    /// query never trivially retrieves itself. When `category` is set, only
    /// entries for that error category are considered — the KB is indexed
    /// by error pattern, not just code shape (Fig 6's "error AST").
    [[nodiscard]] std::vector<KbHit> query(
        const analysis::AstVector& probe, std::size_t k, double min_similarity,
        const std::string& exclude_hint = "",
        std::optional<miri::UbCategory> category = std::nullopt) const;

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] bool empty() const { return entries_.empty(); }

    // Usage statistics (reported by the benches).
    [[nodiscard]] std::uint64_t queries_served() const { return queries_; }
    [[nodiscard]] std::uint64_t hits_returned() const { return hits_; }

  private:
    std::vector<KbEntry> entries_;
    mutable std::atomic<std::uint64_t> queries_{0};
    mutable std::atomic<std::uint64_t> hits_{0};
};

}  // namespace rustbrain::kb
