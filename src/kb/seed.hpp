// Knowledge-base construction from previously-solved problems.
//
// For each corpus case, every affinity rule is replayed: rules whose patch
// passes MiriLite *and* matches the developer reference semantics become the
// entry's verified fixes. The entry's vector is the Algorithm-1-pruned AST
// of the buggy program — matching how queries are formed at repair time.
#pragma once

#include "dataset/corpus.hpp"
#include "kb/knowledge_base.hpp"

namespace rustbrain::kb {

struct SeedStats {
    std::size_t cases_processed = 0;
    std::size_t entries_added = 0;
    std::size_t rules_verified = 0;
};

/// Build a KB from ANY corpus — the hand-written standard set, a corpus
/// forged by gen::forge_corpus, or one loaded from disk by gen::load_corpus.
/// Cases with no verified rule contribute no entry (the KB only stores
/// knowledge that actually worked).
SeedStats seed_from_corpus(const dataset::Corpus& corpus, KnowledgeBase& kb);

/// Algorithm-1 pruning with a degenerate-case fallback: when pruning keeps
/// almost nothing (programs whose bug involves no unsafe code), vectorize
/// the whole program instead. Shared by KB seeding and query formation.
lang::Program prune_or_whole(const lang::Program& program);

}  // namespace rustbrain::kb
