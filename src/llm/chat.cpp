#include "llm/chat.hpp"

#include "support/strings.hpp"

namespace rustbrain::llm {

std::uint32_t estimate_tokens(const std::string& text) {
    const std::uint32_t tokens = static_cast<std::uint32_t>(text.size() / 4);
    return tokens == 0 ? 1 : tokens;
}

std::string PromptSpec::render() const {
    std::string out = "[task:" + task + "]\n";
    for (const auto& [key, value] : fields) {
        out += key + ": " + value + "\n";
    }
    for (const auto& rule : exemplar_rules) {
        out += "exemplar_rule: " + rule + "\n";
    }
    for (const auto& rule : preferred_rules) {
        out += "preferred_rule: " + rule + "\n";
    }
    out += "code:\n";
    out += code;
    return out;
}

PromptSpec PromptSpec::parse(const std::string& prompt_text) {
    PromptSpec spec;
    // The code block is everything after the first "code:" line, taken
    // verbatim from the raw text so newlines survive exactly.
    std::size_t header_end = prompt_text.size();
    const std::string marker = "code:\n";
    if (support::starts_with(prompt_text, marker)) {
        header_end = 0;
        spec.code = prompt_text.substr(marker.size());
    } else if (const std::size_t pos = prompt_text.find("\n" + marker);
               pos != std::string::npos) {
        header_end = pos + 1;
        spec.code = prompt_text.substr(pos + 1 + marker.size());
    }

    const auto lines = support::split(prompt_text.substr(0, header_end), '\n');
    for (const std::string& line : lines) {
        if (support::starts_with(line, "[task:")) {
            const std::size_t end = line.find(']');
            spec.task = line.substr(6, end == std::string::npos ? std::string::npos
                                                                : end - 6);
            continue;
        }
        const std::size_t colon = line.find(": ");
        if (colon == std::string::npos) continue;
        const std::string key = line.substr(0, colon);
        const std::string value = line.substr(colon + 2);
        if (key == "exemplar_rule") {
            spec.exemplar_rules.push_back(value);
        } else if (key == "preferred_rule") {
            spec.preferred_rules.push_back(value);
        } else {
            spec.fields[key] = value;
        }
    }
    return spec;
}

}  // namespace rustbrain::llm
