#include "llm/caching_backend.hpp"

#include <utility>

namespace rustbrain::llm {

PromptCache::PromptCache(support::EvictionPolicy policy,
                         std::size_t capacity_per_shard) {
    for (Shard& shard : shards_) {
        shard.entries.configure(policy, capacity_per_shard);
    }
}

std::optional<ChatResponse> PromptCache::lookup(std::uint64_t key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const ChatResponse* entry = shard.entries.find(key);
    if (entry == nullptr) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return *entry;
}

void PromptCache::insert(std::uint64_t key, const ChatResponse& response) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.entries.peek(key) != nullptr) {
        return;  // a racing thread inserted the identical response first
    }
    shard.entries.insert(key, response);
}

PromptCacheStats PromptCache::stats() const {
    PromptCacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        stats.entries += shard.entries.size();
        const support::LruStats& lru = shard.entries.stats();
        stats.flushes += lru.flushes;
        stats.evictions += lru.evictions;
        stats.evicted_idle_ticks += lru.evicted_idle_ticks;
    }
    return stats;
}

CachingBackend::CachingBackend(std::shared_ptr<PromptCache> cache,
                               std::unique_ptr<LlmBackend> inner,
                               std::string session_tag,
                               std::uint64_t session_seed)
    : cache_(std::move(cache)),
      inner_(std::move(inner)),
      session_tag_(std::move(session_tag)),
      session_seed_(session_seed) {}

ChatResponse CachingBackend::complete(const ChatRequest& request) {
    ++calls_;
    const std::uint64_t key = call_key(session_tag_, session_seed_, request);
    if (auto cached = cache_->lookup(key)) {
        return *cached;
    }
    const ChatResponse response = inner_->complete(request);
    cache_->insert(key, response);
    return response;
}

std::string CachingBackend::description() const {
    return "cache(" + inner_->description() + ")";
}

BackendFactory caching_backend_factory(std::shared_ptr<PromptCache> cache,
                                       BackendFactory inner) {
    if (!inner) inner = sim_backend_factory();
    return [cache, inner](const ModelProfile& profile,
                          std::uint64_t session_seed) {
        return std::make_unique<CachingBackend>(cache,
                                                inner(profile, session_seed),
                                                profile.name, session_seed);
    };
}

}  // namespace rustbrain::llm
