// Repair rules for execution & concurrency UB: function pointers, tail
// calls, validity punning, alignment, threads and locks.
#include "analysis/ast_edit.hpp"
#include "analysis/walk.hpp"
#include "llm/rules.hpp"
#include "llm/rules_detail.hpp"

namespace rustbrain::llm {

using namespace lang;
using namespace analysis;
using detail::addr_of_target;
using detail::stmt_as_call;
using detail::stmt_as_let;
using detail::strip_casts;
using detail::var_name;
using miri::UbCategory;

namespace {

using MaybeProgram = std::optional<Program>;

bool program_spawns(const Program& program) {
    bool found = false;
    WalkCallbacks callbacks;
    callbacks.on_expr = [&](const Expr& expr, bool) {
        if (expr.kind == ExprKind::Call &&
            static_cast<const CallExpr&>(expr).callee == "spawn") {
            found = true;
        }
    };
    walk_program(program, callbacks);
    return found;
}

/// Trace a fn-pointer cast chain back to the underlying program function:
/// either directly `F as ...`, through a local holding `F`, or through an
/// integer-address local `let A = F as usize (+ arithmetic)`.
const FnItem* trace_fn_origin(const Program& program, const Expr& expr) {
    const Expr& stripped = strip_casts(expr);
    if (stripped.kind == ExprKind::VarRef) {
        const std::string name = var_name(stripped);
        if (const FnItem* fn = program.find_function(name)) return fn;
        if (const LetStmt* let = find_let_by_name(program, name)) {
            return trace_fn_origin(program, *let->init);
        }
        return nullptr;
    }
    if (stripped.kind == ExprKind::Binary) {
        // Address arithmetic, e.g. `F as usize + 8`: trace the lhs.
        return trace_fn_origin(program,
                               *static_cast<const BinaryExpr&>(stripped).lhs);
    }
    return nullptr;
}

// --- threads --------------------------------------------------------------

MaybeProgram atomicize_shared_access(const Program& input, const miri::Finding&) {
    if (!program_spawns(input)) return std::nullopt;
    // Candidate statics: i64 static muts not used as mutex/thread handles.
    std::vector<std::string> shared;
    for (const auto& item : input.statics) {
        if (!item.is_mut || !(item.type == Type::i64())) continue;
        bool is_handle = false;
        WalkCallbacks callbacks;
        callbacks.on_expr = [&](const Expr& expr, bool) {
            if (expr.kind != ExprKind::Call) return;
            const auto& call = static_cast<const CallExpr&>(expr);
            if (call.callee != "mutex_lock" && call.callee != "mutex_unlock" &&
                call.callee != "join") {
                return;
            }
            for (const auto& arg : call.args) {
                if (var_name(*arg) == item.name) is_handle = true;
            }
        };
        walk_program(input, callbacks);
        // Statics initialized from mutex_new via assignment are handles too.
        WalkCallbacks assign_scan;
        assign_scan.on_stmt = [&](const Stmt& stmt, bool) {
            if (stmt.kind != StmtKind::Assign) return;
            const auto& assign = static_cast<const AssignStmt&>(stmt);
            if (var_name(*assign.place) == item.name &&
                assign.value->kind == ExprKind::Call &&
                static_cast<const CallExpr&>(*assign.value).callee == "mutex_new") {
                is_handle = true;
            }
        };
        walk_program(input, assign_scan);
        if (!is_handle) shared.push_back(item.name);
    }
    if (shared.empty()) return std::nullopt;

    Program program = input.clone();
    auto atomic_ptr = [](const std::string& name) {
        return mk_cast(mk_unary(UnaryOp::AddrOfMut, mk_var(name)),
                       Type::raw_ptr(Type::i64(), true));
    };
    bool changed = false;
    for (const std::string& name : shared) {
        // Reads: G -> atomic_load(&mut G as *mut i64 as *const i64). Assign
        // places are handled below (rewrite_exprs never sees Assign places
        // as replacements because we rewrite statements first).
        for_each_block(program, [&](Block& block) {
            for (auto& stmt : block.statements) {
                if (stmt->kind != StmtKind::Assign) continue;
                auto& assign = static_cast<AssignStmt&>(*stmt);
                if (var_name(*assign.place) != name) continue;
                // G = V  ->  { let tmp = V; atomic_store(&mut G as *mut i64,
                // tmp); } The temporary forces V (which may itself read G
                // atomically, retagging it) to evaluate *before* the store's
                // pointer is formed; otherwise the value's retag would
                // invalidate the pointer's borrow tag mid-call.
                const std::string tmp = "__rb_tmp_" + name;
                auto wrapper = std::make_unique<BlockStmt>();
                wrapper->block.statements.push_back(
                    mk_let(tmp, false, std::move(assign.value), Type::i64()));
                std::vector<ExprPtr> args;
                args.push_back(atomic_ptr(name));
                args.push_back(mk_var(tmp));
                wrapper->block.statements.push_back(
                    mk_expr_stmt(mk_call("atomic_store", std::move(args))));
                stmt = std::move(wrapper);
                changed = true;
            }
            return false;
        });
        int real_reads = 0;
        rewrite_exprs(program, [&](const Expr& expr) -> std::optional<ExprPtr> {
            // `&mut G` subtrees (including the ones this rule just created)
            // are addresses, not reads: self-clone to stop recursion into
            // them without changing anything.
            if (expr.kind == ExprKind::Unary) {
                const auto& unary = static_cast<const UnaryExpr&>(expr);
                if ((unary.op == UnaryOp::AddrOf ||
                     unary.op == UnaryOp::AddrOfMut) &&
                    var_name(*unary.operand) == name) {
                    return expr.clone();
                }
            }
            if (var_name(expr) != name) return std::nullopt;
            ++real_reads;
            std::vector<ExprPtr> args;
            args.push_back(
                mk_cast(atomic_ptr(name), Type::raw_ptr(Type::i64(), false)));
            return mk_call("atomic_load", std::move(args));
        });
        changed |= real_reads > 0;
    }
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram reorder_join_before_access(const Program& input,
                                        const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        // spawn at s, a shared-static access at a > s, join at j > a.
        int spawn_at = find_stmt(block, [](const Stmt& stmt) {
            const auto* let =
                stmt.kind == StmtKind::Let
                    ? &static_cast<const LetStmt&>(stmt)
                    : nullptr;
            return let != nullptr && let->init->kind == ExprKind::Call &&
                   static_cast<const CallExpr&>(*let->init).callee == "spawn";
        });
        if (spawn_at < 0) return false;
        int join_at = find_stmt(
            block,
            [](const Stmt& stmt) { return stmt_calls(stmt, "join"); },
            spawn_at + 1);
        if (join_at < 0) return false;
        // Any static-mut access strictly between them?
        bool access_between = false;
        for (int i = spawn_at + 1; i < join_at; ++i) {
            for (const auto& item : program.statics) {
                if (item.is_mut && stmt_mentions(*block.statements[i], item.name)) {
                    access_between = true;
                }
            }
        }
        if (!access_between) return false;
        move_stmt(block, static_cast<std::size_t>(join_at),
                  static_cast<std::size_t>(spawn_at) + 1);
        changed = true;
        return true;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram add_missing_join(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (std::size_t i = 0; i < block.statements.size(); ++i) {
            const LetStmt* let = stmt_as_let(*block.statements[i]);
            if (let == nullptr || let->init->kind != ExprKind::Call) continue;
            if (static_cast<const CallExpr&>(*let->init).callee != "spawn") continue;
            // join(handle) anywhere?
            bool joined = false;
            WalkCallbacks callbacks;
            callbacks.on_expr = [&](const Expr& expr, bool) {
                if (expr.kind != ExprKind::Call) return;
                const auto& call = static_cast<const CallExpr&>(expr);
                if (call.callee == "join" && !call.args.empty() &&
                    var_name(*call.args[0]) == let->name) {
                    joined = true;
                }
            };
            walk_program(program, callbacks);
            if (joined) continue;
            std::vector<ExprPtr> args;
            args.push_back(mk_var(let->name));
            block.statements.insert(
                block.statements.begin() + static_cast<std::ptrdiff_t>(i + 1),
                mk_expr_stmt(mk_call("join", std::move(args))));
            changed = true;
            return true;
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram remove_duplicate_join(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (std::size_t i = 0; i < block.statements.size() && !changed; ++i) {
            const CallExpr* first = stmt_as_call(*block.statements[i], "join");
            if (first == nullptr || first->args.empty()) continue;
            for (std::size_t j = i + 1; j < block.statements.size(); ++j) {
                const CallExpr* second = stmt_as_call(*block.statements[j], "join");
                if (second == nullptr || second->args.empty()) continue;
                if (equals(*first->args[0], *second->args[0])) {
                    block.statements.erase(block.statements.begin() +
                                           static_cast<std::ptrdiff_t>(j));
                    changed = true;
                    break;
                }
            }
        }
        return changed;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram balance_mutex_lock(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        int first_lock = -1;
        for (std::size_t i = 0; i < block.statements.size(); ++i) {
            const CallExpr* lock = stmt_as_call(*block.statements[i], "mutex_lock");
            const CallExpr* unlock =
                stmt_as_call(*block.statements[i], "mutex_unlock");
            if (unlock != nullptr) {
                first_lock = -1;
                continue;
            }
            if (lock == nullptr || lock->args.empty()) continue;
            if (first_lock < 0) {
                first_lock = static_cast<int>(i);
                continue;
            }
            const CallExpr* previous =
                stmt_as_call(*block.statements[static_cast<std::size_t>(first_lock)],
                             "mutex_lock");
            if (previous != nullptr &&
                equals(*previous->args[0], *lock->args[0])) {
                // Re-lock without an unlock in between: insert the unlock.
                std::vector<ExprPtr> args;
                args.push_back(lock->args[0]->clone());
                block.statements.insert(
                    block.statements.begin() + static_cast<std::ptrdiff_t>(i),
                    mk_expr_stmt(mk_call("mutex_unlock", std::move(args))));
                changed = true;
                return true;
            }
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

// --- function pointers ---------------------------------------------------

MaybeProgram fix_fnptr_cast_sig(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    std::string cast_var;
    Type correct_sig;
    for_each_block(program, [&](Block& block) {
        for (auto& stmt : block.statements) {
            if (stmt->kind != StmtKind::Let) continue;
            auto& let = static_cast<LetStmt&>(*stmt);
            if (let.init->kind != ExprKind::Cast) continue;
            auto& cast = static_cast<CastExpr&>(*let.init);
            if (!cast.target.is_fn_ptr()) continue;
            const FnItem* origin = trace_fn_origin(program, *cast.operand);
            if (origin == nullptr) continue;
            const Type actual = origin->fn_type();
            if (actual == cast.target) continue;
            cast.target = actual;
            cast_var = let.name;
            correct_sig = actual;
            changed = true;
            return true;
        }
        return false;
    });
    if (!changed) return std::nullopt;

    // Adjust call sites through the re-typed variable: arity padding with 0s.
    rewrite_exprs(program, [&](const Expr& expr) -> std::optional<ExprPtr> {
        if (expr.kind != ExprKind::Call) return std::nullopt;
        const auto& call = static_cast<const CallExpr&>(expr);
        if (call.callee != cast_var) return std::nullopt;
        const std::size_t want = correct_sig.fn_params().size();
        if (call.args.size() == want) return std::nullopt;
        auto patched = std::make_unique<CallExpr>();
        patched->callee = call.callee;
        for (std::size_t i = 0; i < want; ++i) {
            patched->args.push_back(i < call.args.size() ? call.args[i]->clone()
                                                         : mk_int(0));
        }
        return ExprPtr(std::move(patched));
    });
    return program;
}

MaybeProgram direct_call_replace(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    // Find `let H = <expr> as fn-sig;` then calls through H; replace the
    // call with a direct call to the traced (or unique signature-compatible)
    // program function.
    for_each_block(program, [&](Block& block) {
        for (auto& stmt : block.statements) {
            const LetStmt* let = stmt_as_let(*stmt);
            if (let == nullptr || let->init->kind != ExprKind::Cast) continue;
            const auto& cast = static_cast<const CastExpr&>(*let->init);
            if (!cast.target.is_fn_ptr()) continue;
            const FnItem* target = trace_fn_origin(program, *cast.operand);
            if (target == nullptr) {
                // No traceable origin (e.g. a bogus constant): fall back to
                // the unique non-main function with the cast's signature.
                const FnItem* unique = nullptr;
                for (const auto& fn : program.functions) {
                    if (fn.name == "main") continue;
                    if (fn.fn_type() == cast.target) {
                        if (unique != nullptr) {
                            unique = nullptr;
                            break;
                        }
                        unique = &fn;
                    }
                }
                target = unique;
            }
            if (target == nullptr) continue;
            const std::string handle = let->name;
            const std::string fn_name = target->name;
            const int rewrites = rewrite_exprs(
                program, [&](const Expr& expr) -> std::optional<ExprPtr> {
                    if (expr.kind != ExprKind::Call) return std::nullopt;
                    const auto& call = static_cast<const CallExpr&>(expr);
                    if (call.callee != handle) return std::nullopt;
                    auto direct = std::make_unique<CallExpr>();
                    direct->callee = fn_name;
                    for (const auto& arg : call.args) {
                        direct->args.push_back(arg->clone());
                    }
                    return ExprPtr(std::move(direct));
                });
            if (rewrites > 0) {
                changed = true;
                return true;
            }
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

// --- tail calls -------------------------------------------------------------

MaybeProgram become_to_return_call(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for (auto& fn : program.functions) {
        if (changed) break;
        // Find a become statement anywhere in this function.
        std::function<bool(Block&)> visit = [&](Block& block) -> bool {
            for (auto& stmt : block.statements) {
                if (stmt->kind == StmtKind::Become) {
                    auto& become = static_cast<BecomeStmt&>(*stmt);
                    const std::string callee_name = var_name(*become.callee);
                    const FnItem* target = program.find_function(callee_name);
                    ExprPtr call;
                    if (target != nullptr) {
                        // Direct become: keep callee and arguments.
                        auto direct = std::make_unique<CallExpr>();
                        direct->callee = callee_name;
                        for (auto& arg : become.args) {
                            direct->args.push_back(arg->clone());
                        }
                        call = std::move(direct);
                    } else {
                        // Through a fn-pointer local: trace its origin.
                        const LetStmt* let = find_let_by_name(program, callee_name);
                        const FnItem* origin =
                            let != nullptr ? trace_fn_origin(program, *let->init)
                                           : nullptr;
                        if (origin == nullptr) {
                            // Fall back to the unique non-main fn returning the
                            // enclosing fn's type.
                            for (const auto& candidate : program.functions) {
                                if (candidate.name == "main" ||
                                    candidate.name == fn.name) {
                                    continue;
                                }
                                if (candidate.return_type == fn.return_type) {
                                    if (origin != nullptr) {
                                        origin = nullptr;
                                        break;
                                    }
                                    origin = &candidate;
                                }
                            }
                        }
                        if (origin == nullptr) continue;
                        // Arguments: map target params to the enclosing fn's
                        // params by position, pad with zeros.
                        auto direct = std::make_unique<CallExpr>();
                        direct->callee = origin->name;
                        for (std::size_t i = 0; i < origin->params.size(); ++i) {
                            if (i < fn.params.size() &&
                                fn.params[i].type == origin->params[i].type) {
                                direct->args.push_back(mk_var(fn.params[i].name));
                            } else {
                                direct->args.push_back(mk_int(0));
                            }
                        }
                        call = std::move(direct);
                    }
                    stmt = mk_return(std::move(call));
                    changed = true;
                    return true;
                }
                // Recurse.
                switch (stmt->kind) {
                    case StmtKind::If: {
                        auto& node = static_cast<IfStmt&>(*stmt);
                        if (visit(node.then_block)) return true;
                        if (node.else_block && visit(*node.else_block)) return true;
                        break;
                    }
                    case StmtKind::While:
                        if (visit(static_cast<WhileStmt&>(*stmt).body)) return true;
                        break;
                    case StmtKind::Block:
                        if (visit(static_cast<BlockStmt&>(*stmt).block)) return true;
                        break;
                    case StmtKind::Unsafe:
                        if (visit(static_cast<UnsafeStmt&>(*stmt).block)) return true;
                        break;
                    default:
                        break;
                }
            }
            return false;
        };
        visit(fn.body);
    }
    if (!changed) return std::nullopt;
    return program;
}

// --- validity / alignment ----------------------------------------------------

MaybeProgram valid_bool_compare(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    const int rewrites = rewrite_exprs(
        program, [&](const Expr& expr) -> std::optional<ExprPtr> {
            // *P where P: `<bytes> as *const bool`  ->  *<bytes> != 0
            if (expr.kind != ExprKind::Unary) return std::nullopt;
            const auto& deref = static_cast<const UnaryExpr&>(expr);
            if (deref.op != UnaryOp::Deref) return std::nullopt;
            const Expr* source = deref.operand.get();
            if (source->kind == ExprKind::VarRef) {
                const LetStmt* let =
                    find_let_by_name(program, var_name(*source));
                if (let == nullptr) return std::nullopt;
                source = let->init.get();
            }
            if (source->kind != ExprKind::Cast) return std::nullopt;
            const auto& cast = static_cast<const CastExpr&>(*source);
            if (!cast.target.is_raw_ptr() || !cast.target.element().is_bool()) {
                return std::nullopt;
            }
            return mk_binary(BinaryOp::Ne,
                             mk_unary(UnaryOp::Deref, cast.operand->clone()),
                             mk_int(0));
        });
    if (rewrites == 0) return std::nullopt;
    return program;
}

MaybeProgram element_offset(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (auto& stmt : block.statements) {
            if (stmt->kind != StmtKind::Let) continue;
            auto& let = static_cast<LetStmt&>(*stmt);
            // Pattern A: let S = offset(B, k) as *T where B = (wide as *u8)
            //   -> let S = offset(wide, k)
            // Pattern B: let S = offset(B, k) as *mut W where B is a u8
            //   heap pointer -> scale k by size(W).
            const Expr* init = let.init.get();
            if (init->kind != ExprKind::Cast) continue;
            const auto& cast = static_cast<const CastExpr&>(*init);
            if (!cast.target.is_raw_ptr()) continue;
            const Type wide = cast.target.element();
            if (wide.size_bytes() <= 1) continue;
            if (cast.operand->kind != ExprKind::Call) continue;
            const auto& call = static_cast<const CallExpr&>(*cast.operand);
            if (call.callee != "offset" || call.args.size() != 2) continue;
            const std::string base = var_name(*call.args[0]);
            if (base.empty()) continue;
            const LetStmt* base_let = find_let_by_name(program, base);
            if (base_let == nullptr) continue;

            if (base_let->init->kind == ExprKind::Cast) {
                const auto& base_cast =
                    static_cast<const CastExpr&>(*base_let->init);
                if (base_cast.target.is_raw_ptr() &&
                    base_cast.target.element() == Type::u8() &&
                    base_cast.operand->kind == ExprKind::Cast) {
                    const auto& wide_cast =
                        static_cast<const CastExpr&>(*base_cast.operand);
                    if (wide_cast.target.is_raw_ptr() &&
                        wide_cast.target.element() == wide) {
                        // Pattern A: offset the wide-typed pointer instead.
                        std::vector<ExprPtr> args;
                        args.push_back(base_cast.operand->clone());
                        args.push_back(call.args[1]->clone());
                        let.init = mk_call("offset", std::move(args));
                        changed = true;
                        return true;
                    }
                }
            }
            if (base_let->init->kind == ExprKind::Call &&
                static_cast<const CallExpr&>(*base_let->init).callee == "alloc" &&
                call.args[1]->kind == ExprKind::IntLit) {
                // Pattern B: byte offset must be a multiple of the element
                // size; scale the literal.
                const auto k = static_cast<const IntLitExpr&>(*call.args[1]).value;
                if (k % wide.size_bytes() != 0) {
                    std::vector<ExprPtr> args;
                    args.push_back(call.args[0]->clone());
                    args.push_back(mk_int(k * wide.size_bytes()));
                    let.init = mk_cast(mk_call("offset", std::move(args)),
                                       cast.target);
                    changed = true;
                    return true;
                }
            }
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

}  // namespace

std::vector<RepairRule> exec_rules() {
    std::vector<RepairRule> rules;
    auto add = [&](std::string id, RuleFamily family,
                   std::vector<UbCategory> categories, auto fn) {
        RepairRule rule;
        rule.id = std::move(id);
        rule.family = family;
        rule.categories = std::move(categories);
        rule.apply = fn;
        rules.push_back(std::move(rule));
    };

    add("atomicize-shared-access", RuleFamily::SafeReplacement,
        {UbCategory::DataRace}, atomicize_shared_access);
    add("reorder-join-before-access", RuleFamily::Modification,
        {UbCategory::DataRace}, reorder_join_before_access);
    add("add-missing-join", RuleFamily::Modification, {UbCategory::Concurrency},
        add_missing_join);
    add("remove-duplicate-join", RuleFamily::Modification,
        {UbCategory::Concurrency}, remove_duplicate_join);
    add("balance-mutex-lock", RuleFamily::Modification, {UbCategory::Concurrency},
        balance_mutex_lock);
    add("fix-fnptr-cast-sig", RuleFamily::Modification,
        {UbCategory::FuncPointer, UbCategory::FuncCall}, fix_fnptr_cast_sig);
    add("direct-call-replace", RuleFamily::SafeReplacement,
        {UbCategory::FuncCall, UbCategory::FuncPointer}, direct_call_replace);
    add("become-to-return-call", RuleFamily::SafeReplacement,
        {UbCategory::TailCall}, become_to_return_call);
    add("valid-bool-compare", RuleFamily::SafeReplacement, {UbCategory::Validity},
        valid_bool_compare);
    add("element-offset", RuleFamily::Modification, {UbCategory::Unaligned},
        element_offset);
    return rules;
}

}  // namespace rustbrain::llm
