#include "llm/rules.hpp"

#include <algorithm>

#include "llm/rules_detail.hpp"

namespace rustbrain::llm {

const char* rule_family_name(RuleFamily family) {
    switch (family) {
        case RuleFamily::SafeReplacement: return "safe-replacement";
        case RuleFamily::Assertion: return "assertion";
        case RuleFamily::Modification: return "modification";
    }
    return "?";
}

bool RepairRule::applies_to(miri::UbCategory category) const {
    return std::find(categories.begin(), categories.end(), category) !=
           categories.end();
}

const std::vector<RepairRule>& rule_library() {
    static const std::vector<RepairRule> library = [] {
        std::vector<RepairRule> rules = memory_rules();
        std::vector<RepairRule> exec = exec_rules();
        for (auto& rule : exec) {
            rules.push_back(std::move(rule));
        }
        return rules;
    }();
    return library;
}

const RepairRule* find_rule(const std::string& id) {
    for (const RepairRule& rule : rule_library()) {
        if (rule.id == id) return &rule;
    }
    return nullptr;
}

std::vector<const RepairRule*> rules_for_category(miri::UbCategory category) {
    std::vector<const RepairRule*> out;
    for (const RepairRule& rule : rule_library()) {
        if (rule.applies_to(category)) out.push_back(&rule);
    }
    return out;
}

namespace detail {

const lang::CallExpr* stmt_as_call(const lang::Stmt& stmt,
                                   const std::string& callee) {
    if (stmt.kind != lang::StmtKind::Expr) return nullptr;
    const auto& expr = *static_cast<const lang::ExprStmt&>(stmt).expr;
    if (expr.kind != lang::ExprKind::Call) return nullptr;
    const auto& call = static_cast<const lang::CallExpr&>(expr);
    return call.callee == callee ? &call : nullptr;
}

std::string var_name(const lang::Expr& expr) {
    if (expr.kind != lang::ExprKind::VarRef) return "";
    return static_cast<const lang::VarRefExpr&>(expr).name;
}

const lang::Expr& strip_casts(const lang::Expr& expr) {
    const lang::Expr* current = &expr;
    while (current->kind == lang::ExprKind::Cast) {
        current = static_cast<const lang::CastExpr*>(current)->operand.get();
    }
    return *current;
}

std::string addr_of_target(const lang::Expr& expr) {
    if (expr.kind != lang::ExprKind::Unary) return "";
    const auto& unary = static_cast<const lang::UnaryExpr&>(expr);
    if (unary.op != lang::UnaryOp::AddrOf && unary.op != lang::UnaryOp::AddrOfMut) {
        return "";
    }
    return var_name(*unary.operand);
}

const lang::LetStmt* stmt_as_let(const lang::Stmt& stmt) {
    if (stmt.kind != lang::StmtKind::Let) return nullptr;
    return &static_cast<const lang::LetStmt&>(stmt);
}

}  // namespace detail

}  // namespace rustbrain::llm
