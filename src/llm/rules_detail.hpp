// Shared pattern-matching helpers for the rule library (internal header).
#pragma once

#include "lang/ast.hpp"

namespace rustbrain::llm::detail {

/// The CallExpr if `stmt` is `callee(...);`, else nullptr.
const lang::CallExpr* stmt_as_call(const lang::Stmt& stmt,
                                   const std::string& callee);

/// The variable name if `expr` is a plain VarRef, else "".
std::string var_name(const lang::Expr& expr);

/// Unwrap nested casts: the innermost non-cast expression.
const lang::Expr& strip_casts(const lang::Expr& expr);

/// If `expr` is `&x` / `&mut x` (on a plain variable), the variable name.
std::string addr_of_target(const lang::Expr& expr);

/// If stmt is `let <n> = ...`, the LetStmt, else nullptr.
const lang::LetStmt* stmt_as_let(const lang::Stmt& stmt);

}  // namespace rustbrain::llm::detail
