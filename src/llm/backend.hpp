// LlmBackend — the abstract chat-completion boundary.
//
// Engines never construct a model themselves: they receive a
// BackendFactory and open one backend *session* per repaired case
// (seeded with derive_seed(config.seed, case tag), exactly like the old
// embedded SimLLM). SimLLM is the first implementation; decorators
// (CachingBackend, RecordingBackend/ReplayBackend) wrap any inner backend.
//
// Contract required by the decorators: a backend session's response must
// be a pure function of (session identity, request.sequence, messages,
// temperature). SimLLM guarantees this by deriving a fresh RNG stream per
// call from exactly those inputs, which is what makes prompt-keyed
// memoization and transcript replay bit-identical to live runs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "llm/chat.hpp"
#include "llm/profile.hpp"

namespace rustbrain::llm {

class LlmBackend {
  public:
    virtual ~LlmBackend() = default;

    /// Serve one chat request. Never throws for malformed prompts — it
    /// answers like a confused model instead.
    virtual ChatResponse complete(const ChatRequest& request) = 0;

    /// Requests this session has served (for decorators: including the
    /// ones answered without reaching the wrapped backend).
    [[nodiscard]] virtual std::uint64_t calls_served() const = 0;

    /// Human-readable identity, e.g. "sim:gpt-4" or "cache(sim:gpt-4)".
    [[nodiscard]] virtual std::string description() const = 0;
};

/// Opens one backend session for a repair: engines call this once per case
/// with the model profile and the case-derived session seed.
using BackendFactory = std::function<std::unique_ptr<LlmBackend>(
    const ModelProfile& profile, std::uint64_t session_seed)>;

/// The default factory: a fresh SimLLM per session.
BackendFactory sim_backend_factory();

/// Stable 64-bit identity of one call: (session tag, session seed,
/// request.sequence, temperature bits, message contents). The shared key
/// for CachingBackend and the transcript backends.
std::uint64_t call_key(std::string_view session_tag, std::uint64_t session_seed,
                       const ChatRequest& request);

}  // namespace rustbrain::llm
