// CachingBackend — deterministic prompt-keyed memoization.
//
// A PromptCache is shared across every session of a sweep (and across
// repeated sweeps — or, in service mode, across every request a
// serve::RepairService handles). The cache key is the full call identity —
// (session tag, session seed, sequence, temperature, message contents) —
// and backends are per-call deterministic in exactly those inputs, so a
// cached answer is bit-identical to a live one: sweeps with and without
// the cache produce the same CaseResults (asserted in
// tests/llm_backend_test.cpp). Repeated configurations — the same sweep at
// several worker counts, re-runs of a config inside one bench, zipfian
// repeat traffic through the repair service — answer almost entirely from
// cache, skipping the simulated model's parse/mutate/print work on the hot
// path.
//
// The store is sharded 16 ways to keep lock contention negligible when a
// BatchRunner or RepairService fans requests out across workers. Each
// shard is bounded by a support::LruMap: under the default Lru policy a
// full shard evicts its least-recently-used entry (hot entries survive
// pressure), while EvictionPolicy::FlushOnCap keeps the legacy
// drop-the-whole-shard behavior for comparison. Either way dropping
// entries is always safe — bit-identity means only speed is at stake.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "llm/backend.hpp"
#include "support/lru.hpp"

namespace rustbrain::llm {

struct PromptCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
    /// Legacy flush-on-cap events (EvictionPolicy::FlushOnCap only): how
    /// many times a full shard was dropped wholesale.
    std::uint64_t flushes = 0;
    /// LRU evictions (default policy): single entries dropped at capacity,
    /// plus the summed idle age (in shard accesses) of the victims —
    /// evicted_idle_ticks / evictions = how cold the dropped entries were.
    std::uint64_t evictions = 0;
    std::uint64_t evicted_idle_ticks = 0;

    [[nodiscard]] double hit_rate() const {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
};

class PromptCache {
  public:
    /// Default: true LRU eviction at ~512k responses total. The legacy
    /// flush-on-cap behavior stays available behind the policy knob;
    /// `capacity_per_shard` is exposed so tests can exercise eviction
    /// pressure without millions of inserts.
    explicit PromptCache(
        support::EvictionPolicy policy = support::EvictionPolicy::Lru,
        std::size_t capacity_per_shard = kDefaultEntriesPerShard);

    /// Returns the cached response for a call identity, counting a hit or
    /// a miss (a hit promotes the entry to most-recently-used).
    std::optional<ChatResponse> lookup(std::uint64_t key);
    void insert(std::uint64_t key, const ChatResponse& response);
    [[nodiscard]] PromptCacheStats stats() const;

  private:
    static constexpr std::size_t kShards = 16;
    /// Per-shard cap: ~512k responses total.
    static constexpr std::size_t kDefaultEntriesPerShard = 32768;
    struct Shard {
        mutable std::mutex mutex;
        support::LruMap<std::uint64_t, ChatResponse> entries;
    };
    Shard& shard_for(std::uint64_t key) { return shards_[key % kShards]; }

    std::array<Shard, kShards> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

class CachingBackend final : public LlmBackend {
  public:
    CachingBackend(std::shared_ptr<PromptCache> cache,
                   std::unique_ptr<LlmBackend> inner, std::string session_tag,
                   std::uint64_t session_seed);

    ChatResponse complete(const ChatRequest& request) override;
    [[nodiscard]] std::uint64_t calls_served() const override { return calls_; }
    [[nodiscard]] std::string description() const override;

  private:
    std::shared_ptr<PromptCache> cache_;
    std::unique_ptr<LlmBackend> inner_;
    std::string session_tag_;
    std::uint64_t session_seed_;
    std::uint64_t calls_ = 0;
};

/// Wraps `inner` (default: SimLLM) sessions with a shared PromptCache.
BackendFactory caching_backend_factory(std::shared_ptr<PromptCache> cache,
                                       BackendFactory inner = {});

}  // namespace rustbrain::llm
