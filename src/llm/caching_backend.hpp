// CachingBackend — deterministic prompt-keyed memoization.
//
// A PromptCache is shared across every session of a sweep (and across
// repeated sweeps in the same process). The cache key is the full call
// identity — (session tag, session seed, sequence, temperature, message
// contents) — and backends are per-call deterministic in exactly those
// inputs, so a cached answer is bit-identical to a live one: sweeps with
// and without the cache produce the same CaseResults (asserted in
// tests/llm_backend_test.cpp). Repeated configurations — the same sweep at
// several worker counts, re-runs of a config inside one bench — answer
// almost entirely from cache, skipping the simulated model's parse/
// mutate/print work on the hot path.
//
// The store is sharded 16 ways to keep lock contention negligible when a
// BatchRunner fans a sweep out across workers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "llm/backend.hpp"

namespace rustbrain::llm {

struct PromptCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
    /// Flush-on-cap events: how many times a full shard was dropped.
    /// Non-zero means the workload outgrew the cache; bit-identity makes
    /// every flush safe (only speed is lost), same contract as VerifyCache.
    std::uint64_t flushes = 0;

    [[nodiscard]] double hit_rate() const {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
};

class PromptCache {
  public:
    /// Returns the cached response for a call identity, counting a hit or
    /// a miss.
    std::optional<ChatResponse> lookup(std::uint64_t key);
    void insert(std::uint64_t key, const ChatResponse& response);
    [[nodiscard]] PromptCacheStats stats() const;

  private:
    static constexpr std::size_t kShards = 16;
    /// Per-shard cap (flush-on-cap): ~512k responses total.
    static constexpr std::size_t kMaxEntriesPerShard = 32768;
    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<std::uint64_t, ChatResponse> entries;
    };
    Shard& shard_for(std::uint64_t key) { return shards_[key % kShards]; }

    std::array<Shard, kShards> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> flushes_{0};
};

class CachingBackend final : public LlmBackend {
  public:
    CachingBackend(std::shared_ptr<PromptCache> cache,
                   std::unique_ptr<LlmBackend> inner, std::string session_tag,
                   std::uint64_t session_seed);

    ChatResponse complete(const ChatRequest& request) override;
    [[nodiscard]] std::uint64_t calls_served() const override { return calls_; }
    [[nodiscard]] std::string description() const override;

  private:
    std::shared_ptr<PromptCache> cache_;
    std::unique_ptr<LlmBackend> inner_;
    std::string session_tag_;
    std::uint64_t session_seed_;
    std::uint64_t calls_ = 0;
};

/// Wraps `inner` (default: SimLLM) sessions with a shared PromptCache.
BackendFactory caching_backend_factory(std::shared_ptr<PromptCache> cache,
                                       BackendFactory inner = {});

}  // namespace rustbrain::llm
