#include "llm/hallucinate.hpp"

#include <vector>

#include "analysis/ast_edit.hpp"

namespace rustbrain::llm {

using namespace lang;
using analysis::for_each_block;

const char* mutation_kind_name(MutationKind kind) {
    switch (kind) {
        case MutationKind::DeleteStatement: return "delete-statement";
        case MutationKind::DuplicateStatement: return "duplicate-statement";
        case MutationKind::PerturbConstant: return "perturb-constant";
        case MutationKind::FlipComparison: return "flip-comparison";
        case MutationKind::DropElseBranch: return "drop-else-branch";
        case MutationKind::SwapStatements: return "swap-statements";
    }
    return "?";
}

namespace {

/// Collect mutable pointers to every block (so mutations can target nested
/// blocks uniformly).
std::vector<Block*> all_blocks(Program& program) {
    std::vector<Block*> blocks;
    for_each_block(program, [&](Block& block) {
        blocks.push_back(&block);
        return false;
    });
    return blocks;
}

std::vector<IntLitExpr*> all_int_literals(Program& program) {
    std::vector<IntLitExpr*> literals;
    analysis::rewrite_exprs(program, [&](const Expr& expr) -> std::optional<ExprPtr> {
        if (expr.kind == ExprKind::IntLit) {
            literals.push_back(
                const_cast<IntLitExpr*>(static_cast<const IntLitExpr*>(&expr)));
        }
        return std::nullopt;  // never replace — we only want the pointers
    });
    return literals;
}

std::vector<BinaryExpr*> all_comparisons(Program& program) {
    std::vector<BinaryExpr*> comparisons;
    analysis::rewrite_exprs(program, [&](const Expr& expr) -> std::optional<ExprPtr> {
        if (expr.kind == ExprKind::Binary) {
            const auto& node = static_cast<const BinaryExpr&>(expr);
            switch (node.op) {
                case BinaryOp::Lt:
                case BinaryOp::Le:
                case BinaryOp::Gt:
                case BinaryOp::Ge:
                case BinaryOp::Eq:
                case BinaryOp::Ne:
                    comparisons.push_back(
                        const_cast<BinaryExpr*>(static_cast<const BinaryExpr*>(&expr)));
                    break;
                default:
                    break;
            }
        }
        return std::nullopt;
    });
    return comparisons;
}

std::vector<IfStmt*> all_ifs_with_else(Program& program) {
    std::vector<IfStmt*> ifs;
    for_each_block(program, [&](Block& block) {
        for (auto& stmt : block.statements) {
            if (stmt->kind == StmtKind::If) {
                auto& node = static_cast<IfStmt&>(*stmt);
                if (node.else_block.has_value()) ifs.push_back(&node);
            }
        }
        return false;
    });
    return ifs;
}

}  // namespace

std::optional<MutationKind> mutate_program(Program& program, support::Rng& rng) {
    // Try mutation kinds in a random order until one applies.
    std::vector<MutationKind> kinds = {
        MutationKind::PerturbConstant,    MutationKind::DeleteStatement,
        MutationKind::DuplicateStatement, MutationKind::FlipComparison,
        MutationKind::DropElseBranch,     MutationKind::SwapStatements,
    };
    // Fisher–Yates with the caller's deterministic rng.
    for (std::size_t i = kinds.size(); i > 1; --i) {
        const std::size_t j = rng.next_below(i);
        std::swap(kinds[i - 1], kinds[j]);
    }

    for (MutationKind kind : kinds) {
        switch (kind) {
            case MutationKind::PerturbConstant: {
                auto literals = all_int_literals(program);
                if (literals.empty()) break;
                IntLitExpr* victim = literals[rng.next_below(literals.size())];
                const std::uint64_t old = victim->value;
                switch (rng.next_below(3)) {
                    case 0: victim->value = old + 1; break;
                    case 1: victim->value = old > 0 ? old - 1 : old + 2; break;
                    default: victim->value = old * 2 + 1; break;
                }
                return kind;
            }
            case MutationKind::DeleteStatement: {
                auto blocks = all_blocks(program);
                // Only delete from blocks with >= 2 statements so programs
                // stay plausible.
                std::vector<Block*> candidates;
                for (Block* block : blocks) {
                    if (block->statements.size() >= 2) candidates.push_back(block);
                }
                if (candidates.empty()) break;
                Block* block = candidates[rng.next_below(candidates.size())];
                const std::size_t index = rng.next_below(block->statements.size());
                block->statements.erase(block->statements.begin() +
                                        static_cast<std::ptrdiff_t>(index));
                return kind;
            }
            case MutationKind::DuplicateStatement: {
                auto blocks = all_blocks(program);
                std::vector<Block*> candidates;
                for (Block* block : blocks) {
                    if (!block->statements.empty()) candidates.push_back(block);
                }
                if (candidates.empty()) break;
                Block* block = candidates[rng.next_below(candidates.size())];
                const std::size_t index = rng.next_below(block->statements.size());
                // Duplicating a `let` would shadow harmlessly; duplicating
                // calls/assignments is where the damage is.
                block->statements.insert(
                    block->statements.begin() + static_cast<std::ptrdiff_t>(index),
                    block->statements[index]->clone());
                return kind;
            }
            case MutationKind::FlipComparison: {
                auto comparisons = all_comparisons(program);
                if (comparisons.empty()) break;
                BinaryExpr* victim = comparisons[rng.next_below(comparisons.size())];
                switch (victim->op) {
                    case BinaryOp::Lt: victim->op = BinaryOp::Le; break;
                    case BinaryOp::Le: victim->op = BinaryOp::Lt; break;
                    case BinaryOp::Gt: victim->op = BinaryOp::Ge; break;
                    case BinaryOp::Ge: victim->op = BinaryOp::Gt; break;
                    case BinaryOp::Eq: victim->op = BinaryOp::Ne; break;
                    case BinaryOp::Ne: victim->op = BinaryOp::Eq; break;
                    default: break;
                }
                return kind;
            }
            case MutationKind::DropElseBranch: {
                auto ifs = all_ifs_with_else(program);
                if (ifs.empty()) break;
                IfStmt* victim = ifs[rng.next_below(ifs.size())];
                victim->else_block.reset();
                return kind;
            }
            case MutationKind::SwapStatements: {
                auto blocks = all_blocks(program);
                std::vector<Block*> candidates;
                for (Block* block : blocks) {
                    if (block->statements.size() >= 2) candidates.push_back(block);
                }
                if (candidates.empty()) break;
                Block* block = candidates[rng.next_below(candidates.size())];
                const std::size_t index =
                    rng.next_below(block->statements.size() - 1);
                std::swap(block->statements[index], block->statements[index + 1]);
                return kind;
            }
        }
    }
    return std::nullopt;
}

}  // namespace rustbrain::llm
