// Hallucination injection — the mechanism behind the paper's §III-B2
// observation that "the number of errors [can] increase after repair".
//
// A hallucinated patch is a structurally-plausible but wrong edit: a deleted
// or duplicated statement, a perturbed constant, a flipped comparison, a
// dropped else-branch. These are applied by SimLLM (probability set by the
// model profile and temperature) instead of — or on top of — the correct
// rule application, producing the growing error sequences (N1 = {1,3,4,6,9})
// that the adaptive rollback agent exists to contain.
#pragma once

#include "lang/ast.hpp"
#include "support/rng.hpp"

namespace rustbrain::llm {

enum class MutationKind {
    DeleteStatement,
    DuplicateStatement,
    PerturbConstant,
    FlipComparison,
    DropElseBranch,
    SwapStatements,
};

/// Apply one random mutation. Returns the kind applied; the program is
/// always changed unless it is too small to mutate (then returns nullopt).
std::optional<MutationKind> mutate_program(lang::Program& program,
                                           support::Rng& rng);

const char* mutation_kind_name(MutationKind kind);

}  // namespace rustbrain::llm
