#include "llm/simllm.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/features.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "llm/hallucinate.hpp"
#include "llm/rules.hpp"
#include "support/hashing.hpp"
#include "support/strings.hpp"

namespace rustbrain::llm {

namespace {

miri::UbCategory category_from_label(const std::string& label) {
    for (miri::UbCategory category : miri::all_ub_categories()) {
        if (label == miri::ub_category_label(category)) return category;
    }
    if (label == "compile.error") return miri::UbCategory::CompileError;
    return miri::UbCategory::Panic;
}

int field_int(const PromptSpec& spec, const std::string& key, int fallback) {
    auto it = spec.fields.find(key);
    if (it == spec.fields.end()) return fallback;
    try {
        return std::stoi(it->second);
    } catch (...) {
        return fallback;
    }
}

std::string field_str(const PromptSpec& spec, const std::string& key) {
    auto it = spec.fields.find(key);
    return it == spec.fields.end() ? "" : it->second;
}

}  // namespace

SimLLM::SimLLM(const ModelProfile& profile, std::uint64_t seed)
    : profile_(profile), session_base_(support::derive_seed(seed, profile.name)) {}

ChatResponse SimLLM::complete(const ChatRequest& request) {
    ++calls_;
    std::string prompt_text;
    for (const auto& message : request.messages) {
        prompt_text += message.content;
        prompt_text += '\n';
    }
    const PromptSpec spec = PromptSpec::parse(prompt_text);

    // The call's stream is derived from its full identity (session,
    // sequence, prompt) — the LlmBackend purity contract.
    const std::uint64_t prompt_seed =
        support::hash_combine(session_base_, support::fnv1a64(prompt_text));
    support::Rng rng(support::hash_combine(prompt_seed, request.sequence));
    // Retry fixation: a real model at low temperature nearly repeats itself
    // when re-prompted with identical text, so retrying a failing strategy
    // buys little (Fig 11's left flank); at mid/high temperature retries
    // genuinely resample. Collapsing onto the sequence-independent prompt
    // stream keeps the response a pure function of the call identity.
    const double repeat_probability =
        std::clamp(1.0 - 2.2 * request.temperature, 0.0, 0.95);
    if (rng.chance(repeat_probability)) {
        rng = support::Rng(prompt_seed);
    }

    std::string content;
    if (spec.task == "extract_features") {
        content = handle_extract_features(spec);
    } else if (spec.task == "generate_solutions") {
        content = handle_generate_solutions(spec, request.temperature, rng);
    } else if (spec.task == "apply_rule") {
        content = handle_apply_rule(spec, request.temperature, rng);
    } else if (spec.task == "extract_ast") {
        content = handle_extract_ast(spec, request.temperature, rng);
    } else {
        content = "I am not sure how to help with that task.";
    }

    ChatResponse response;
    response.content = std::move(content);
    response.prompt_tokens = estimate_tokens(prompt_text);
    response.completion_tokens = estimate_tokens(response.content);
    response.latency_ms = profile_.latency_for_tokens(response.prompt_tokens +
                                                      response.completion_tokens);
    return response;
}

// ---------------------------------------------------------------------------
// extract_features
// ---------------------------------------------------------------------------

std::string SimLLM::handle_extract_features(const PromptSpec& spec) {
    auto program = lang::try_parse(spec.code);
    if (!program) {
        return "category: compile.error\nfeatures: unparseable";
    }
    miri::Finding finding;
    finding.category = category_from_label(field_str(spec, "error_category"));
    finding.message = field_str(spec, "error_message");
    const analysis::ErrorFeatures features =
        analysis::extract_features(*program, finding);
    std::string out = "category: ";
    out += miri::ub_category_label(features.category);
    out += "\nfeature_key: " + features.feedback_key();
    out += "\nfeatures: " + features.to_string();
    return out;
}

// ---------------------------------------------------------------------------
// generate_solutions
// ---------------------------------------------------------------------------

std::string SimLLM::handle_generate_solutions(const PromptSpec& spec,
                                              double temperature,
                                              support::Rng& rng) {
    const miri::UbCategory category =
        category_from_label(field_str(spec, "error_category"));
    const int difficulty = field_int(spec, "difficulty", 1);
    const int requested =
        std::clamp(field_int(spec, "count", 3), 1, 12);
    const bool has_features = spec.fields.count("feature_key") != 0 ||
                              spec.fields.count("features") != 0;

    // Good pool: feedback-preferred rules first (already validated on
    // similar errors), then KB exemplars, then the library's affinity rules.
    std::vector<std::string> good;
    auto push_unique = [&](const std::string& id) {
        if (find_rule(id) == nullptr) return;
        if (std::find(good.begin(), good.end(), id) == good.end()) {
            good.push_back(id);
        }
    };
    for (const auto& id : spec.preferred_rules) push_unique(id);
    for (const auto& id : spec.exemplar_rules) push_unique(id);
    for (const RepairRule* rule : rules_for_category(category)) {
        push_unique(rule->id);
    }

    std::vector<std::string> distractors;
    for (const RepairRule& rule : rule_library()) {
        if (std::find(good.begin(), good.end(), rule.id) == good.end()) {
            distractors.push_back(rule.id);
        }
    }

    const double competence = profile_.effective_competence(
        category, has_features, !spec.exemplar_rules.empty(),
        !spec.preferred_rules.empty(), difficulty);
    // Probability of reaching for an irrelevant strategy grows with
    // temperature and shrinks with competence.
    const double distractor_chance =
        std::clamp((1.0 - competence) * (0.35 + 0.8 * temperature), 0.0, 0.9);
    // Low temperature collapses sampling onto the top-ranked rule.
    const double spread = std::max(0.25, 2.2 * temperature);

    std::string out;
    int emitted = 0;
    const int budget =
        std::min(requested, std::max(profile_.max_candidates, 1) * 2);
    for (int i = 0; i < budget && emitted < requested; ++i) {
        std::string choice;
        if (!good.empty() && !rng.chance(distractor_chance)) {
            // Rank-weighted sample from the good pool; feedback-validated
            // rules carry extra mass (they already worked on similar code).
            std::vector<double> weights(good.size());
            for (std::size_t r = 0; r < good.size(); ++r) {
                weights[r] = std::exp(-static_cast<double>(r) / spread);
                if (std::find(spec.preferred_rules.begin(),
                              spec.preferred_rules.end(),
                              good[r]) != spec.preferred_rules.end()) {
                    weights[r] *= 3.0;
                }
            }
            choice = good[rng.sample_weighted(weights)];
        } else if (!distractors.empty()) {
            choice = distractors[rng.next_below(distractors.size())];
        } else if (!good.empty()) {
            choice = good[0];
        } else {
            break;
        }
        out += "solution: " + choice + "\n";
        ++emitted;
    }
    if (emitted == 0) {
        out = "solution: none\n";
    }
    return out;
}

// ---------------------------------------------------------------------------
// apply_rule
// ---------------------------------------------------------------------------

std::string SimLLM::handle_apply_rule(const PromptSpec& spec, double temperature,
                                      support::Rng& rng) {
    auto program = lang::try_parse(spec.code);
    if (!program) {
        return "note: could not parse input\ncode:\n" + spec.code;
    }
    const std::string rule_id = field_str(spec, "rule");
    const RepairRule* rule = find_rule(rule_id);
    miri::Finding finding;
    finding.category = category_from_label(field_str(spec, "error_category"));
    finding.message = field_str(spec, "error_message");

    const double hallucination = profile_.hallucination_rate(temperature);

    std::optional<lang::Program> patched;
    if (rule != nullptr) {
        patched = rule->apply(*program, finding);
    }
    std::string note;
    if (!patched) {
        // The named strategy does not apply here. A real model often
        // improvises rather than admitting it: with the hallucination
        // probability it edits something anyway.
        if (rng.chance(std::min(0.9, hallucination * 2.5))) {
            lang::Program improvised = program->clone();
            const auto mutation = mutate_program(improvised, rng);
            if (mutation) {
                note = "note: improvised edit (" +
                       std::string(mutation_kind_name(*mutation)) + ")";
                patched = std::move(improvised);
            }
        }
        if (!patched) {
            return "note: rule not applicable, code unchanged\ncode:\n" + spec.code;
        }
    } else if (rng.chance(hallucination)) {
        // Correct rule, corrupted execution.
        const auto mutation = mutate_program(*patched, rng);
        if (mutation) {
            note = "note: patch applied (" +
                   std::string(mutation_kind_name(*mutation)) + " slipped in)";
        }
    }
    if (note.empty()) {
        note = "note: patch applied";
    }
    return note + "\ncode:\n" + lang::print_program(*patched);
}

// ---------------------------------------------------------------------------
// extract_ast
// ---------------------------------------------------------------------------

std::string SimLLM::handle_extract_ast(const PromptSpec& spec,
                                       double temperature, support::Rng& rng) {
    auto program = lang::try_parse(spec.code);
    if (!program) {
        return "note: could not parse input\ncode:\n" + spec.code;
    }
    // LLM-based AST extraction preserves semantics but is imperfect: at
    // high temperature, stray edits creep into the reconstruction.
    if (rng.chance(profile_.hallucination_rate(temperature) * 0.5)) {
        support::Rng fork = rng.fork("ast-noise");
        mutate_program(*program, fork);
    }
    return "note: ast extracted\ncode:\n" + lang::print_program(*program);
}

// ---------------------------------------------------------------------------
// Response parsing (pipeline side)
// ---------------------------------------------------------------------------

std::vector<std::string> parse_solution_lines(const std::string& response) {
    std::vector<std::string> out;
    for (const auto& line : support::split(response, '\n')) {
        if (support::starts_with(line, "solution: ")) {
            const std::string id = line.substr(10);
            if (id != "none") out.push_back(id);
        }
    }
    return out;
}

std::string parse_code_block(const std::string& response) {
    const std::size_t marker = response.find("code:\n");
    if (marker == std::string::npos) {
        return response;
    }
    return response.substr(marker + 6);
}

}  // namespace rustbrain::llm
