// RecordingBackend / ReplayBackend — golden transcripts for the LLM
// boundary.
//
// A RecordingBackend wraps any inner backend and writes every exchange
// into a shared Transcript, keyed by the same full call identity the
// cache uses. A ReplayBackend serves *only* from a transcript — it has no
// inner model at all — and throws on any call the transcript does not
// contain. Because backends are per-call deterministic, replaying a
// recorded sweep reproduces bit-identical CaseResults, which turns a
// transcript into a golden test fixture for the whole pipeline (and, in a
// real deployment, would decouple tests from a live API).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "llm/backend.hpp"

namespace rustbrain::llm {

class Transcript {
  public:
    void record(std::uint64_t key, const ChatResponse& response);
    [[nodiscard]] std::optional<ChatResponse> lookup(std::uint64_t key) const;
    [[nodiscard]] std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::uint64_t, ChatResponse> entries_;
};

class RecordingBackend final : public LlmBackend {
  public:
    RecordingBackend(std::shared_ptr<Transcript> transcript,
                     std::unique_ptr<LlmBackend> inner, std::string session_tag,
                     std::uint64_t session_seed);

    ChatResponse complete(const ChatRequest& request) override;
    [[nodiscard]] std::uint64_t calls_served() const override { return calls_; }
    [[nodiscard]] std::string description() const override;

  private:
    std::shared_ptr<Transcript> transcript_;
    std::unique_ptr<LlmBackend> inner_;
    std::string session_tag_;
    std::uint64_t session_seed_;
    std::uint64_t calls_ = 0;
};

class ReplayBackend final : public LlmBackend {
  public:
    ReplayBackend(std::shared_ptr<const Transcript> transcript,
                  std::string session_tag, std::uint64_t session_seed);

    /// Throws std::out_of_range when the transcript has no entry for the
    /// call — the replayed run diverged from the recorded one.
    ChatResponse complete(const ChatRequest& request) override;
    [[nodiscard]] std::uint64_t calls_served() const override { return calls_; }
    [[nodiscard]] std::string description() const override;

  private:
    std::shared_ptr<const Transcript> transcript_;
    std::string session_tag_;
    std::uint64_t session_seed_;
    std::uint64_t calls_ = 0;
};

/// Record every session of `inner` (default: SimLLM) into `transcript`.
BackendFactory recording_backend_factory(std::shared_ptr<Transcript> transcript,
                                         BackendFactory inner = {});

/// Serve every session purely from `transcript`; no model behind it.
BackendFactory replay_backend_factory(
    std::shared_ptr<const Transcript> transcript);

}  // namespace rustbrain::llm
