#include "llm/replay_backend.hpp"

#include <stdexcept>
#include <utility>

namespace rustbrain::llm {

void Transcript::record(std::uint64_t key, const ChatResponse& response) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.emplace(key, response);
}

std::optional<ChatResponse> Transcript::lookup(std::uint64_t key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
}

std::size_t Transcript::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

RecordingBackend::RecordingBackend(std::shared_ptr<Transcript> transcript,
                                   std::unique_ptr<LlmBackend> inner,
                                   std::string session_tag,
                                   std::uint64_t session_seed)
    : transcript_(std::move(transcript)),
      inner_(std::move(inner)),
      session_tag_(std::move(session_tag)),
      session_seed_(session_seed) {}

ChatResponse RecordingBackend::complete(const ChatRequest& request) {
    ++calls_;
    const ChatResponse response = inner_->complete(request);
    transcript_->record(call_key(session_tag_, session_seed_, request), response);
    return response;
}

std::string RecordingBackend::description() const {
    return "record(" + inner_->description() + ")";
}

ReplayBackend::ReplayBackend(std::shared_ptr<const Transcript> transcript,
                             std::string session_tag, std::uint64_t session_seed)
    : transcript_(std::move(transcript)),
      session_tag_(std::move(session_tag)),
      session_seed_(session_seed) {}

ChatResponse ReplayBackend::complete(const ChatRequest& request) {
    ++calls_;
    auto response =
        transcript_->lookup(call_key(session_tag_, session_seed_, request));
    if (!response) {
        throw std::out_of_range(
            "ReplayBackend: no transcript entry for call (session " +
            session_tag_ + ", sequence " + std::to_string(request.sequence) +
            ") — the replayed run diverged from the recording");
    }
    return *response;
}

std::string ReplayBackend::description() const {
    return "replay(" + session_tag_ + ")";
}

BackendFactory recording_backend_factory(std::shared_ptr<Transcript> transcript,
                                         BackendFactory inner) {
    if (!inner) inner = sim_backend_factory();
    return [transcript, inner](const ModelProfile& profile,
                               std::uint64_t session_seed) {
        return std::make_unique<RecordingBackend>(
            transcript, inner(profile, session_seed), profile.name,
            session_seed);
    };
}

BackendFactory replay_backend_factory(
    std::shared_ptr<const Transcript> transcript) {
    return [transcript](const ModelProfile& profile,
                        std::uint64_t session_seed) {
        return std::make_unique<ReplayBackend>(transcript, profile.name,
                                               session_seed);
    };
}

}  // namespace rustbrain::llm
