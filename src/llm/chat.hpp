// Chat-completion plumbing: message/request/response types, prompt
// rendering and parsing helpers, token accounting.
//
// The pipeline talks to SimLLM exclusively through rendered prompt text —
// the same boundary a real deployment would have with the OpenAI/Anthropic
// APIs — so the "model" can only act on what is actually in the prompt.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rustbrain::llm {

enum class Role { System, User, Assistant };

struct ChatMessage {
    Role role = Role::User;
    std::string content;
};

struct ChatRequest {
    std::vector<ChatMessage> messages;
    double temperature = 0.5;
    /// Position of this call within its backend session (stamped by
    /// AgentContext). Part of the call's deterministic identity: a retry
    /// of a byte-identical prompt at a later sequence draws a fresh
    /// stream, while a re-run of the same session reproduces every
    /// response bit-for-bit — the property CachingBackend and the
    /// transcript backends key on.
    std::uint64_t sequence = 0;
};

struct ChatResponse {
    std::string content;
    std::uint32_t prompt_tokens = 0;
    std::uint32_t completion_tokens = 0;
    double latency_ms = 0.0;
};

/// Crude but deterministic token estimate (chars / 4, floor 1).
std::uint32_t estimate_tokens(const std::string& text);

/// Structured prompt sections used by the RustBrain agents. Rendering
/// produces a plain-text prompt; parsing recovers the sections on the
/// model side. Unknown keys pass through untouched.
struct PromptSpec {
    std::string task;  // extract_features | generate_solutions | apply_rule | extract_ast
    std::map<std::string, std::string> fields;  // rule, error_category, ...
    std::vector<std::string> exemplar_rules;    // few-shot hints from the KB
    std::vector<std::string> preferred_rules;   // feedback-store hints
    std::string code;

    [[nodiscard]] std::string render() const;
    static PromptSpec parse(const std::string& prompt_text);
};

}  // namespace rustbrain::llm
