// SimLLM — deterministic simulated chat-completion engine, the first
// llm::LlmBackend implementation.
//
// Serves four prompt tasks (see PromptSpec): extract_features,
// generate_solutions, apply_rule, extract_ast. The engine sees ONLY the
// rendered prompt text (it re-parses the code from the prompt) plus its
// model profile, mirroring a real API boundary; it never touches the
// dataset's reference fixes.
//
// Every call is a pure function of (profile, session seed,
// request.sequence, prompt text, temperature): the RNG stream is derived
// fresh per call from exactly those inputs, never carried across calls.
// That is the LlmBackend determinism contract — it makes prompt-keyed
// caching and transcript replay bit-identical to live runs, while a retry
// of the same prompt at the next sequence number still samples a fresh
// stream.
//
// Model quality is expressed mechanistically:
//  * competence (profile x category x prompt context) decides whether the
//    model's candidate rules are relevant or distractors;
//  * temperature shapes sampling: low temperature collapses onto the top
//    candidate (diversity loss, Fig 11's left flank), high temperature
//    raises both diversity and hallucination (right flank);
//  * hallucination corrupts applied patches via mutate_program, sometimes
//    *increasing* the error count — the rollback agent's reason to exist.
#pragma once

#include <cstdint>
#include <string>

#include "llm/backend.hpp"
#include "llm/chat.hpp"
#include "llm/profile.hpp"
#include "support/rng.hpp"

namespace rustbrain::llm {

class SimLLM final : public LlmBackend {
  public:
    SimLLM(const ModelProfile& profile, std::uint64_t seed);

    /// Serve one chat request. Never throws for malformed prompts — it
    /// answers like a confused model instead.
    ChatResponse complete(const ChatRequest& request) override;

    [[nodiscard]] const ModelProfile& profile() const { return profile_; }
    [[nodiscard]] std::uint64_t calls_served() const override { return calls_; }
    [[nodiscard]] std::string description() const override {
        return "sim:" + profile_.name;
    }

  private:
    std::string handle_extract_features(const PromptSpec& spec);
    std::string handle_generate_solutions(const PromptSpec& spec,
                                          double temperature, support::Rng& rng);
    std::string handle_apply_rule(const PromptSpec& spec, double temperature,
                                  support::Rng& rng);
    std::string handle_extract_ast(const PromptSpec& spec, double temperature,
                                   support::Rng& rng);

    ModelProfile profile_;
    std::uint64_t session_base_;  // derive_seed(seed, profile.name)
    std::uint64_t calls_ = 0;
};

/// Parse helpers for the pipeline side (the "prompt engineering" that turns
/// model text back into data).
std::vector<std::string> parse_solution_lines(const std::string& response);
/// The code block from an apply_rule / extract_ast response (everything
/// after the "code:" line, or the whole text when no marker is present).
std::string parse_code_block(const std::string& response);

}  // namespace rustbrain::llm
