// Model profiles — the only place where "which LLM is this" lives.
//
// Calibration targets the paper's *relative* orderings (GPT-3.5 <
// Claude-3.5 < GPT-4 on Rust repair; GPT-O1 strong reasoning but weak on
// uncommon categories like panic; all models lifted substantially by
// RustBrain): competence drives correct-rule selection, hallucination
// drives corrupted patches, uptake factors determine how much the model
// benefits from features / few-shot exemplars / feedback hints.
#pragma once

#include <map>
#include <string>

#include "miri/finding.hpp"

namespace rustbrain::llm {

struct ModelProfile {
    std::string name;

    /// Probability mass placed on the correct rule family when generating
    /// or applying fixes, before modifiers.
    double base_competence = 0.5;
    /// Per-category skill multiplier (default 1.0).
    std::map<miri::UbCategory, double> category_skill;
    /// Base probability of a corrupted (hallucinated) patch at temperature
    /// 0.5; scaled up with temperature.
    double hallucination_base = 0.2;
    /// How much of a few-shot exemplar's signal the model absorbs (0..1).
    double fewshot_uptake = 0.5;
    /// Boost from having structured error features in the prompt (the fast
    /// thinking stage's contribution).
    double feature_uptake = 0.5;
    /// How many distinct candidate rules the model can enumerate.
    int max_candidates = 4;

    // Latency model (virtual milliseconds).
    double latency_base_ms = 300.0;
    double latency_per_1k_tokens_ms = 900.0;

    [[nodiscard]] double skill_for(miri::UbCategory category) const;
    /// Effective probability of choosing correctly given prompt context.
    [[nodiscard]] double effective_competence(miri::UbCategory category,
                                              bool has_features,
                                              bool has_exemplar,
                                              bool has_feedback_hint,
                                              int difficulty) const;
    [[nodiscard]] double hallucination_rate(double temperature) const;
    [[nodiscard]] double latency_for_tokens(std::uint32_t tokens) const;
};

/// The four models evaluated in the paper.
const ModelProfile& gpt35_profile();
const ModelProfile& gpt4_profile();
const ModelProfile& gpt_o1_profile();
const ModelProfile& claude35_profile();

const ModelProfile* find_profile(const std::string& name);
const std::vector<const ModelProfile*>& all_profiles();

}  // namespace rustbrain::llm
