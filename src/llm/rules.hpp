// The repair-rule library — the "knowledge" a code-repair LLM brings to
// unsafe-Rust UB fixing, reified as genuine AST transformations.
//
// Every rule is a *real* program transform with an applicability pattern:
// given the buggy program and the Miri finding, it either produces a patched
// program or declines (nullopt). Rules are deliberately generic over code
// shape (they pattern-match structure, never case ids), so knowledge-base
// retrieval of "which rule fixed a similar AST" carries real signal.
//
// SimLLM quality is expressed *around* this library: which rule a model
// selects (competence), whether the patch survives un-corrupted
// (hallucination), and how much exemplars/hints sharpen selection.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "miri/finding.hpp"

namespace rustbrain::llm {

/// The paper's Principle-2 families (Fig 4's three prompt strategies).
enum class RuleFamily { SafeReplacement, Assertion, Modification };

const char* rule_family_name(RuleFamily family);

struct RepairRule {
    std::string id;
    RuleFamily family = RuleFamily::Modification;
    /// UB categories this rule is a plausible fix for (affinity list —
    /// selection, not a hard gate).
    std::vector<miri::UbCategory> categories;
    std::function<std::optional<lang::Program>(const lang::Program&,
                                               const miri::Finding&)>
        apply;

    [[nodiscard]] bool applies_to(miri::UbCategory category) const;
};

const std::vector<RepairRule>& rule_library();
const RepairRule* find_rule(const std::string& id);
std::vector<const RepairRule*> rules_for_category(miri::UbCategory category);

// Rule groups, registered from two translation units.
std::vector<RepairRule> memory_rules();
std::vector<RepairRule> exec_rules();

}  // namespace rustbrain::llm
