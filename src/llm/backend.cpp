#include "llm/backend.hpp"

#include <cstring>

#include "llm/simllm.hpp"
#include "support/hashing.hpp"

namespace rustbrain::llm {

BackendFactory sim_backend_factory() {
    return [](const ModelProfile& profile, std::uint64_t session_seed) {
        return std::make_unique<SimLLM>(profile, session_seed);
    };
}

std::uint64_t call_key(std::string_view session_tag, std::uint64_t session_seed,
                       const ChatRequest& request) {
    std::uint64_t key = support::fnv1a64(session_tag);
    key = support::hash_combine(key, session_seed);
    key = support::hash_combine(key, request.sequence);
    std::uint64_t temperature_bits = 0;
    static_assert(sizeof(temperature_bits) == sizeof(request.temperature));
    std::memcpy(&temperature_bits, &request.temperature, sizeof(temperature_bits));
    key = support::hash_combine(key, temperature_bits);
    for (const ChatMessage& message : request.messages) {
        key = support::hash_combine(
            key, static_cast<std::uint64_t>(message.role));
        key = support::hash_combine(key, support::fnv1a64(message.content));
    }
    return key;
}

}  // namespace rustbrain::llm
