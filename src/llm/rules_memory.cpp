// Repair rules for memory & borrow UB: alloc lifecycle, dangling pointers,
// uninitialized reads, provenance, panics, borrow-stack conflicts.
#include "analysis/ast_edit.hpp"
#include "analysis/walk.hpp"
#include "llm/rules.hpp"
#include "llm/rules_detail.hpp"

namespace rustbrain::llm {

using namespace lang;
using namespace analysis;
using detail::addr_of_target;
using detail::stmt_as_call;
using detail::stmt_as_let;
using detail::strip_casts;
using detail::var_name;
using miri::UbCategory;

namespace {

using MaybeProgram = std::optional<Program>;

/// let <name> = alloc(S, A): returns the let and fills size/align clones.
const LetStmt* find_alloc_let(const Program& program, ExprPtr* size_out = nullptr,
                              ExprPtr* align_out = nullptr,
                              const std::string& wanted_name = "") {
    const LetStmt* found = nullptr;
    WalkCallbacks callbacks;
    callbacks.on_stmt = [&](const Stmt& stmt, bool) {
        if (found != nullptr) return;
        const LetStmt* let = stmt_as_let(stmt);
        if (let == nullptr) return;
        if (!wanted_name.empty() && let->name != wanted_name) return;
        if (let->init->kind != ExprKind::Call) return;
        const auto& call = static_cast<const CallExpr&>(*let->init);
        if (call.callee != "alloc" || call.args.size() != 2) return;
        found = let;
        if (size_out != nullptr) *size_out = call.args[0]->clone();
        if (align_out != nullptr) *align_out = call.args[1]->clone();
    };
    walk_program(program, callbacks);
    return found;
}

/// Count statements anywhere in the program that mention `name`, excluding
/// the let that declares it.
int mentions_outside_decl(const Program& program, const std::string& name) {
    int count = 0;
    WalkCallbacks callbacks;
    callbacks.on_expr = [&](const Expr& expr, bool) {
        if (var_name(expr) == name) ++count;
    };
    walk_program(program, callbacks);
    return count;
}

// --- alloc ------------------------------------------------------------

MaybeProgram remove_duplicate_dealloc(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (std::size_t i = 0; i < block.statements.size() && !changed; ++i) {
            const CallExpr* first = stmt_as_call(*block.statements[i], "dealloc");
            if (first == nullptr || first->args.empty()) continue;
            for (std::size_t j = i + 1; j < block.statements.size(); ++j) {
                const CallExpr* second = stmt_as_call(*block.statements[j], "dealloc");
                if (second == nullptr || second->args.empty()) continue;
                if (equals(*first->args[0], *second->args[0])) {
                    block.statements.erase(block.statements.begin() +
                                           static_cast<std::ptrdiff_t>(j));
                    changed = true;
                    break;
                }
            }
        }
        return changed;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram match_dealloc_layout(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (auto& stmt : block.statements) {
            if (stmt->kind != StmtKind::Expr) continue;
            auto& expr = *static_cast<ExprStmt&>(*stmt).expr;
            if (expr.kind != ExprKind::Call) continue;
            auto& call = static_cast<CallExpr&>(expr);
            if (call.callee != "dealloc" || call.args.size() != 3) continue;
            const std::string ptr = var_name(strip_casts(*call.args[0]));
            if (ptr.empty()) continue;
            ExprPtr size;
            ExprPtr align;
            if (find_alloc_let(program, &size, &align, ptr) == nullptr) continue;
            if (!equals(*call.args[1], *size) || !equals(*call.args[2], *align)) {
                call.args[1] = std::move(size);
                call.args[2] = std::move(align);
                changed = true;
            }
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram insert_missing_dealloc(const Program& input, const miri::Finding&) {
    ExprPtr size;
    ExprPtr align;
    const LetStmt* alloc_let = find_alloc_let(input, &size, &align);
    if (alloc_let == nullptr) return std::nullopt;
    // Already freed somewhere?
    bool freed = false;
    WalkCallbacks callbacks;
    callbacks.on_expr = [&](const Expr& expr, bool) {
        if (expr.kind != ExprKind::Call) return;
        const auto& call = static_cast<const CallExpr&>(expr);
        if (call.callee == "dealloc" && !call.args.empty() &&
            var_name(strip_casts(*call.args[0])) == alloc_let->name) {
            freed = true;
        }
    };
    walk_program(input, callbacks);
    if (freed) return std::nullopt;

    Program program = input.clone();
    const std::string name = alloc_let->name;
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        const int index = find_stmt(block, [&](const Stmt& stmt) {
            const LetStmt* let = stmt_as_let(stmt);
            return let != nullptr && let->name == name &&
                   let->init->kind == ExprKind::Call &&
                   static_cast<const CallExpr&>(*let->init).callee == "alloc";
        });
        if (index < 0) return false;
        std::vector<ExprPtr> args;
        args.push_back(mk_var(name));
        args.push_back(size->clone());
        args.push_back(align->clone());
        block.statements.push_back(mk_expr_stmt(mk_call("dealloc", std::move(args))));
        changed = true;
        return true;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram move_dealloc_to_end(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        const int index = find_stmt(block, [](const Stmt& stmt) {
            return stmt_as_call(stmt, "dealloc") != nullptr;
        });
        if (index < 0 ||
            static_cast<std::size_t>(index) + 1 >= block.statements.size()) {
            return false;
        }
        move_stmt(block, static_cast<std::size_t>(index),
                  block.statements.size() - 1);
        changed = true;
        return true;
    });
    if (!changed) return std::nullopt;
    return program;
}

// --- dangling ----------------------------------------------------------

MaybeProgram hoist_declaration(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (std::size_t i = 0; i < block.statements.size(); ++i) {
            if (block.statements[i]->kind != StmtKind::Block) continue;
            auto& inner = static_cast<BlockStmt&>(*block.statements[i]).block;
            // A let inside the inner block whose address is taken there.
            for (std::size_t j = 0; j < inner.statements.size(); ++j) {
                const LetStmt* let = stmt_as_let(*inner.statements[j]);
                if (let == nullptr) continue;
                bool address_taken = false;
                for (const auto& stmt : inner.statements) {
                    WalkCallbacks callbacks;
                    callbacks.on_expr = [&](const Expr& expr, bool) {
                        if (addr_of_target(expr) == let->name) address_taken = true;
                    };
                    if (stmt->kind == StmtKind::Assign) {
                        walk_expr(*static_cast<const AssignStmt&>(*stmt).value,
                                  callbacks, false);
                    } else if (stmt->kind == StmtKind::Let &&
                               stmt.get() != inner.statements[j].get()) {
                        walk_expr(*static_cast<const LetStmt&>(*stmt).init, callbacks,
                                  false);
                    }
                }
                if (!address_taken) continue;
                // Hoist the declaration to just before the inner block.
                StmtPtr hoisted = std::move(inner.statements[j]);
                inner.statements.erase(inner.statements.begin() +
                                       static_cast<std::ptrdiff_t>(j));
                block.statements.insert(
                    block.statements.begin() + static_cast<std::ptrdiff_t>(i),
                    std::move(hoisted));
                changed = true;
                return true;
            }
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram guard_null_check(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (std::size_t i = 0; i < block.statements.size(); ++i) {
            if (block.statements[i]->kind != StmtKind::Unsafe) continue;
            auto& unsafe_stmt = static_cast<UnsafeStmt&>(*block.statements[i]);
            // Find a raw pointer variable dereferenced inside.
            std::string ptr;
            WalkCallbacks callbacks;
            callbacks.on_expr = [&](const Expr& expr, bool) {
                if (!ptr.empty()) return;
                if (expr.kind != ExprKind::Unary) return;
                const auto& unary = static_cast<const UnaryExpr&>(expr);
                if (unary.op != UnaryOp::Deref) return;
                const std::string name = var_name(*unary.operand);
                if (!name.empty()) ptr = name;
            };
            walk_block(unsafe_stmt.block, callbacks, true);
            if (ptr.empty()) continue;

            // if ptr as usize != 0 { unsafe { ... } } else { print_int(-1); }
            ExprPtr cond = mk_binary(BinaryOp::Ne,
                                     mk_cast(mk_var(ptr), Type::usize()), mk_int(0));
            Block then_block;
            then_block.statements.push_back(std::move(block.statements[i]));
            block.statements[i] =
                mk_guard(std::move(cond), std::move(then_block), true);
            changed = true;
            return true;
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

// --- panic ---------------------------------------------------------------

/// The declared length of array variable `name`, if discoverable.
std::optional<std::uint64_t> array_length_of(const Program& program,
                                             const std::string& name) {
    if (const LetStmt* let = find_let_by_name(program, name)) {
        if (let->declared_type && let->declared_type->is_array()) {
            return let->declared_type->array_length();
        }
        if (let->init->kind == ExprKind::ArrayRepeat) {
            return static_cast<const ArrayRepeatExpr&>(*let->init).count;
        }
        if (let->init->kind == ExprKind::ArrayLit) {
            return static_cast<const ArrayLitExpr&>(*let->init).elements.size();
        }
    }
    if (const StaticItem* item = program.find_static(name)) {
        if (item->type.is_array()) return item->type.array_length();
    }
    return std::nullopt;
}

MaybeProgram guard_index_bound(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (std::size_t i = 0; i < block.statements.size(); ++i) {
            Stmt& stmt = *block.statements[i];
            if (stmt.kind != StmtKind::Expr && stmt.kind != StmtKind::Let &&
                stmt.kind != StmtKind::Assign) {
                continue;
            }
            // Find array[indexVar] with a variable index.
            std::string array;
            std::string index;
            WalkCallbacks callbacks;
            callbacks.on_expr = [&](const Expr& expr, bool) {
                if (!array.empty()) return;
                if (expr.kind != ExprKind::Index) return;
                const auto& node = static_cast<const IndexExpr&>(expr);
                const std::string base = var_name(*node.base);
                const std::string idx = var_name(*node.index);
                if (!base.empty() && !idx.empty()) {
                    array = base;
                    index = idx;
                }
            };
            if (stmt.kind == StmtKind::Expr) {
                walk_expr(*static_cast<const ExprStmt&>(stmt).expr, callbacks, false);
            } else if (stmt.kind == StmtKind::Let) {
                walk_expr(*static_cast<const LetStmt&>(stmt).init, callbacks, false);
            } else {
                walk_expr(*static_cast<const AssignStmt&>(stmt).value, callbacks,
                          false);
            }
            if (array.empty()) continue;
            const auto length = array_length_of(program, array);
            if (!length) continue;

            ExprPtr cond =
                mk_binary(BinaryOp::Lt, mk_var(index), mk_int(*length));
            Block then_block;
            then_block.statements.push_back(std::move(block.statements[i]));
            block.statements[i] =
                mk_guard(std::move(cond), std::move(then_block), true);
            changed = true;
            return true;
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram guard_divisor(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (std::size_t i = 0; i < block.statements.size(); ++i) {
            Stmt& stmt = *block.statements[i];
            if (stmt.kind != StmtKind::Expr && stmt.kind != StmtKind::Let) continue;
            std::string divisor;
            WalkCallbacks callbacks;
            callbacks.on_expr = [&](const Expr& expr, bool) {
                if (!divisor.empty()) return;
                if (expr.kind != ExprKind::Binary) return;
                const auto& node = static_cast<const BinaryExpr&>(expr);
                if (node.op != BinaryOp::Div && node.op != BinaryOp::Rem) return;
                const std::string name = var_name(*node.rhs);
                if (!name.empty()) divisor = name;
            };
            if (stmt.kind == StmtKind::Expr) {
                walk_expr(*static_cast<const ExprStmt&>(stmt).expr, callbacks, false);
            } else {
                walk_expr(*static_cast<const LetStmt&>(stmt).init, callbacks, false);
            }
            if (divisor.empty()) continue;

            ExprPtr cond = mk_binary(BinaryOp::Ne, mk_var(divisor), mk_int(0));
            Block then_block;
            then_block.statements.push_back(std::move(block.statements[i]));
            block.statements[i] =
                mk_guard(std::move(cond), std::move(then_block), true);
            changed = true;
            return true;
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram widen_to_i64(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    // (a) i32-typed lets become i64.
    for_each_block(program, [&](Block& block) {
        for (auto& stmt : block.statements) {
            LetStmt* let = stmt->kind == StmtKind::Let
                               ? &static_cast<LetStmt&>(*stmt)
                               : nullptr;
            if (let != nullptr && let->declared_type &&
                *let->declared_type == Type::i32()) {
                let->declared_type = Type::i64();
                changed = true;
            }
        }
        return false;
    });
    if (!changed) return std::nullopt;
    // (b) drop `as i32` on input() results.
    rewrite_exprs(program, [](const Expr& expr) -> std::optional<ExprPtr> {
        if (expr.kind != ExprKind::Cast) return std::nullopt;
        const auto& cast = static_cast<const CastExpr&>(expr);
        if (!(cast.target == Type::i32())) return std::nullopt;
        if (cast.operand->kind == ExprKind::Call &&
            static_cast<const CallExpr&>(*cast.operand).callee == "input") {
            return cast.operand->clone();
        }
        return std::nullopt;
    });
    // (c) drop redundant `as i64` around variable arithmetic.
    rewrite_exprs(program, [](const Expr& expr) -> std::optional<ExprPtr> {
        if (expr.kind != ExprKind::Cast) return std::nullopt;
        const auto& cast = static_cast<const CastExpr&>(expr);
        if (!(cast.target == Type::i64())) return std::nullopt;
        if (cast.operand->kind != ExprKind::Binary) return std::nullopt;
        const auto& binary = static_cast<const BinaryExpr&>(*cast.operand);
        if (binary.lhs->kind == ExprKind::VarRef &&
            binary.rhs->kind == ExprKind::VarRef) {
            return cast.operand->clone();
        }
        return std::nullopt;
    });
    return program;
}

// --- provenance ---------------------------------------------------------

MaybeProgram use_direct_pointer(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    // Find: let A = <ref-to-ptr-cast> as <int>; let P = A as *const T;
    std::string addr_var;
    ExprPtr direct;
    WalkCallbacks scan;
    scan.on_stmt = [&](const Stmt& stmt, bool) {
        if (!addr_var.empty()) return;
        const LetStmt* let = stmt_as_let(stmt);
        if (let == nullptr || let->init->kind != ExprKind::Cast) return;
        const auto& outer = static_cast<const CastExpr&>(*let->init);
        if (!outer.target.is_integer()) return;
        if (outer.operand->kind != ExprKind::Cast) return;
        const auto& inner = static_cast<const CastExpr&>(*outer.operand);
        if (!inner.target.is_raw_ptr()) return;
        if (addr_of_target(*inner.operand).empty()) return;
        addr_var = let->name;
        direct = outer.operand->clone();
    };
    walk_program(program, scan);
    if (addr_var.empty()) return std::nullopt;

    bool rewired = false;
    for_each_block(program, [&](Block& block) {
        for (auto& stmt : block.statements) {
            if (stmt->kind != StmtKind::Let) continue;
            auto& let = static_cast<LetStmt&>(*stmt);
            if (let.init->kind != ExprKind::Cast) continue;
            auto& cast = static_cast<CastExpr&>(*let.init);
            if (!cast.target.is_raw_ptr()) continue;
            if (var_name(*cast.operand) != addr_var) continue;
            let.init = direct->clone();
            rewired = true;
        }
        return false;
    });
    if (!rewired) return std::nullopt;

    // Remove the now-dead address variable when nothing else uses it.
    if (mentions_outside_decl(program, addr_var) == 0) {
        for_each_block(program, [&](Block& block) {
            const int index = find_stmt(block, [&](const Stmt& stmt) {
                const LetStmt* let = stmt_as_let(stmt);
                return let != nullptr && let->name == addr_var;
            });
            if (index < 0) return false;
            block.statements.erase(block.statements.begin() + index);
            return true;
        });
    }
    return program;
}

MaybeProgram repair_loop_bounds(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    // (a) `while i <= N` -> `while i < N`.
    for_each_block(program, [&](Block& block) {
        for (auto& stmt : block.statements) {
            if (stmt->kind != StmtKind::While) continue;
            auto& loop = static_cast<WhileStmt&>(*stmt);
            if (loop.condition->kind != ExprKind::Binary) continue;
            auto& cond = static_cast<BinaryExpr&>(*loop.condition);
            if (cond.op == BinaryOp::Le) {
                cond.op = BinaryOp::Lt;
                changed = true;
            }
        }
        return false;
    });
    // (b) a loop bounded by `X - 1` while a sibling loop is bounded by `X`.
    for_each_block(program, [&](Block& block) {
        std::vector<WhileStmt*> loops;
        for (auto& stmt : block.statements) {
            if (stmt->kind == StmtKind::While) {
                loops.push_back(&static_cast<WhileStmt&>(*stmt));
            }
        }
        for (WhileStmt* shorter : loops) {
            if (shorter->condition->kind != ExprKind::Binary) continue;
            auto& cond = static_cast<BinaryExpr&>(*shorter->condition);
            if (cond.rhs->kind != ExprKind::Binary) continue;
            const auto& sub = static_cast<const BinaryExpr&>(*cond.rhs);
            if (sub.op != BinaryOp::Sub) continue;
            if (sub.rhs->kind != ExprKind::IntLit ||
                static_cast<const IntLitExpr&>(*sub.rhs).value != 1) {
                continue;
            }
            for (WhileStmt* longer : loops) {
                if (longer == shorter) continue;
                if (longer->condition->kind != ExprKind::Binary) continue;
                const auto& other =
                    static_cast<const BinaryExpr&>(*longer->condition);
                if (equals(*other.rhs, *sub.lhs)) {
                    cond.rhs = sub.lhs->clone();
                    changed = true;
                    break;
                }
            }
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram guard_offset_range(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (std::size_t i = 0; i < block.statements.size(); ++i) {
            Stmt& stmt = *block.statements[i];
            if (stmt.kind != StmtKind::Expr && stmt.kind != StmtKind::Let) continue;
            // offset(base, K as isize) with a variable K.
            std::string index;
            std::string base;
            WalkCallbacks callbacks;
            callbacks.on_expr = [&](const Expr& expr, bool) {
                if (!index.empty()) return;
                if (expr.kind != ExprKind::Call) return;
                const auto& call = static_cast<const CallExpr&>(expr);
                if (call.callee != "offset" || call.args.size() != 2) return;
                const std::string k = var_name(strip_casts(*call.args[1]));
                const std::string b = var_name(*call.args[0]);
                if (!k.empty() && !b.empty()) {
                    index = k;
                    base = b;
                }
            };
            if (stmt.kind == StmtKind::Expr) {
                walk_expr(*static_cast<const ExprStmt&>(stmt).expr, callbacks, false);
            } else {
                walk_expr(*static_cast<const LetStmt&>(stmt).init, callbacks, false);
            }
            if (index.empty()) continue;
            // Skip loop counters: the guard idiom targets one-shot accesses.
            // Element count: base's let is `X as *mut T` where X = alloc(N*8, _).
            const LetStmt* base_let = find_let_by_name(program, base);
            if (base_let == nullptr) continue;
            const std::string raw = var_name(strip_casts(*base_let->init));
            ExprPtr size;
            if (find_alloc_let(program, &size, nullptr, raw) == nullptr) continue;
            ExprPtr count;
            if (size->kind == ExprKind::Binary &&
                static_cast<const BinaryExpr&>(*size).op == BinaryOp::Mul) {
                count = static_cast<const BinaryExpr&>(*size).lhs->clone();
            } else {
                continue;
            }

            ExprPtr cond = mk_binary(
                BinaryOp::And,
                mk_binary(BinaryOp::Ge, mk_var(index), mk_int(0)),
                mk_binary(BinaryOp::Lt, mk_var(index), std::move(count)));
            Block then_block;
            then_block.statements.push_back(std::move(block.statements[i]));
            block.statements[i] =
                mk_guard(std::move(cond), std::move(then_block), true);
            changed = true;
            return true;
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

// --- uninit --------------------------------------------------------------

MaybeProgram init_after_alloc(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (std::size_t i = 0; i < block.statements.size(); ++i) {
            const LetStmt* let = stmt_as_let(*block.statements[i]);
            if (let == nullptr || let->init->kind != ExprKind::Cast) continue;
            const auto& cast = static_cast<const CastExpr&>(*let->init);
            if (!cast.target.is_raw_ptr() || !cast.target.is_mut()) continue;
            const std::string raw = var_name(*cast.operand);
            if (raw.empty()) continue;
            if (find_alloc_let(program, nullptr, nullptr, raw) == nullptr) continue;
            // If the very next use already writes through it, nothing to do.
            const std::string slot = let->name;
            bool next_is_write = false;
            for (std::size_t j = i + 1; j < block.statements.size(); ++j) {
                if (!stmt_mentions(*block.statements[j], slot)) continue;
                if (block.statements[j]->kind == StmtKind::Assign) {
                    const auto& assign =
                        static_cast<const AssignStmt&>(*block.statements[j]);
                    if (assign.place->kind == ExprKind::Unary &&
                        var_name(*static_cast<const UnaryExpr&>(*assign.place)
                                      .operand) == slot) {
                        next_is_write = true;
                    }
                }
                break;
            }
            if (next_is_write) continue;
            // Insert `*slot = 0;` right after the pointer is formed.
            block.statements.insert(
                block.statements.begin() + static_cast<std::ptrdiff_t>(i + 1),
                mk_assign(mk_unary(UnaryOp::Deref, mk_var(slot)), mk_int(0)));
            changed = true;
            return true;
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram add_else_init(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (auto& stmt : block.statements) {
            if (stmt->kind != StmtKind::If) continue;
            auto& branch = static_cast<IfStmt&>(*stmt);
            if (branch.else_block.has_value()) continue;
            // then-block assigns through *slot?
            std::string slot;
            for (const auto& inner : branch.then_block.statements) {
                if (inner->kind != StmtKind::Assign) continue;
                const auto& assign = static_cast<const AssignStmt&>(*inner);
                if (assign.place->kind != ExprKind::Unary) continue;
                const auto& deref = static_cast<const UnaryExpr&>(*assign.place);
                if (deref.op != UnaryOp::Deref) continue;
                const std::string name = var_name(*deref.operand);
                if (!name.empty()) slot = name;
            }
            if (slot.empty()) continue;
            Block else_block;
            else_block.statements.push_back(
                mk_assign(mk_unary(UnaryOp::Deref, mk_var(slot)), mk_int(0)));
            branch.else_block = std::move(else_block);
            changed = true;
            return true;
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

// --- borrows ---------------------------------------------------------------

/// Shared machinery for the reorder rules: find `let R = <borrow of X>` at i,
/// the first conflicting statement j > i (new &mut X or assignment to X),
/// and the first statement k > j that mentions R; move k to j.
MaybeProgram reorder_use_before_conflict(const Program& input, bool raw_pointer) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (std::size_t i = 0; i < block.statements.size(); ++i) {
            const LetStmt* let = stmt_as_let(*block.statements[i]);
            if (let == nullptr) continue;
            std::string target;
            if (raw_pointer) {
                // let R = &mut X as *mut T;
                if (let->init->kind != ExprKind::Cast) continue;
                const auto& cast = static_cast<const CastExpr&>(*let->init);
                if (!cast.target.is_raw_ptr()) continue;
                target = addr_of_target(*cast.operand);
            } else {
                // let R = &X;
                target = addr_of_target(*let->init);
            }
            if (target.empty()) continue;
            const std::string borrow = let->name;

            // First conflict after i.
            int conflict = -1;
            for (std::size_t j = i + 1; j < block.statements.size(); ++j) {
                const Stmt& stmt = *block.statements[j];
                if (stmt.kind == StmtKind::Assign &&
                    var_name(*static_cast<const AssignStmt&>(stmt).place) ==
                        target) {
                    conflict = static_cast<int>(j);
                    break;
                }
                if (const LetStmt* other = stmt_as_let(stmt)) {
                    const Expr* borrow_expr = other->init.get();
                    if (borrow_expr->kind == ExprKind::Cast) {
                        borrow_expr =
                            static_cast<const CastExpr&>(*borrow_expr).operand.get();
                    }
                    if (borrow_expr->kind == ExprKind::Unary &&
                        static_cast<const UnaryExpr&>(*borrow_expr).op ==
                            UnaryOp::AddrOfMut &&
                        var_name(*static_cast<const UnaryExpr&>(*borrow_expr)
                                      .operand) == target) {
                        conflict = static_cast<int>(j);
                        break;
                    }
                }
            }
            if (conflict < 0) continue;

            // First use of the borrow after the conflict.
            int use = -1;
            for (std::size_t k = static_cast<std::size_t>(conflict) + 1;
                 k < block.statements.size(); ++k) {
                if (stmt_mentions(*block.statements[k], borrow)) {
                    use = static_cast<int>(k);
                    break;
                }
            }
            if (use < 0) continue;

            move_stmt(block, static_cast<std::size_t>(use),
                      static_cast<std::size_t>(conflict));
            changed = true;
            return true;
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram reorder_borrow_use(const Program& input, const miri::Finding&) {
    return reorder_use_before_conflict(input, /*raw_pointer=*/false);
}

MaybeProgram reorder_raw_use(const Program& input, const miri::Finding&) {
    return reorder_use_before_conflict(input, /*raw_pointer=*/true);
}

MaybeProgram read_place_directly(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    for_each_block(program, [&](Block& block) {
        for (std::size_t i = 0; i < block.statements.size(); ++i) {
            const LetStmt* let = stmt_as_let(*block.statements[i]);
            if (let == nullptr) continue;
            const std::string target = addr_of_target(*let->init);
            if (target.empty()) continue;
            const std::string borrow = let->name;
            // Is there a write to the target after the borrow?
            int conflict = -1;
            for (std::size_t j = i + 1; j < block.statements.size(); ++j) {
                const Stmt& stmt = *block.statements[j];
                const bool direct_write =
                    stmt.kind == StmtKind::Assign &&
                    var_name(*static_cast<const AssignStmt&>(stmt).place) == target;
                const LetStmt* other = stmt_as_let(stmt);
                const bool new_mut =
                    other != nullptr && addr_of_target(*other->init) == target &&
                    other->init->kind == ExprKind::Unary &&
                    static_cast<const UnaryExpr&>(*other->init).op ==
                        UnaryOp::AddrOfMut;
                if (direct_write || new_mut) {
                    conflict = static_cast<int>(j);
                    break;
                }
            }
            if (conflict < 0) continue;
            // Rewrite `*borrow` -> `target` in the last statement using it.
            int use = -1;
            for (std::size_t k = block.statements.size(); k-- > 0;) {
                if (static_cast<int>(k) <= conflict) break;
                if (stmt_mentions(*block.statements[k], borrow)) {
                    use = static_cast<int>(k);
                    break;
                }
            }
            if (use < 0) continue;
            Block wrapper;
            wrapper.statements.push_back(std::move(block.statements[use]));
            const int rewrites = rewrite_exprs_in_block(
                wrapper, [&](const Expr& expr) -> std::optional<ExprPtr> {
                    if (expr.kind != ExprKind::Unary) return std::nullopt;
                    const auto& deref = static_cast<const UnaryExpr&>(expr);
                    if (deref.op != UnaryOp::Deref) return std::nullopt;
                    if (var_name(*deref.operand) != borrow) return std::nullopt;
                    return mk_var(target);
                });
            block.statements[use] = std::move(wrapper.statements[0]);
            if (rewrites > 0) {
                changed = true;
                return true;
            }
        }
        return false;
    });
    if (!changed) return std::nullopt;
    return program;
}

MaybeProgram mut_raw_from_mut(const Program& input, const miri::Finding&) {
    Program program = input.clone();
    bool changed = false;
    std::string shared_var;
    for_each_block(program, [&](Block& block) {
        for (auto& stmt : block.statements) {
            if (stmt->kind != StmtKind::Let) continue;
            auto& let = static_cast<LetStmt&>(*stmt);
            // let R = S as *const T as *mut T  (S = &X)
            if (let.init->kind != ExprKind::Cast) continue;
            auto& outer = static_cast<CastExpr&>(*let.init);
            if (!outer.target.is_raw_ptr() || !outer.target.is_mut()) continue;
            if (outer.operand->kind != ExprKind::Cast) continue;
            const auto& inner = static_cast<const CastExpr&>(*outer.operand);
            if (!inner.target.is_raw_ptr() || inner.target.is_mut()) continue;
            const std::string source = var_name(*inner.operand);
            if (source.empty()) continue;
            const LetStmt* source_let = find_let_by_name(program, source);
            if (source_let == nullptr) continue;
            const std::string place = addr_of_target(*source_let->init);
            if (place.empty()) continue;
            // Rebuild: let R = &mut X as *mut T;
            let.init = mk_cast(mk_unary(UnaryOp::AddrOfMut, mk_var(place)),
                               outer.target);
            shared_var = source;
            changed = true;
            return true;
        }
        return false;
    });
    if (!changed) return std::nullopt;
    if (!shared_var.empty() && mentions_outside_decl(program, shared_var) == 0) {
        for_each_block(program, [&](Block& block) {
            const int index = find_stmt(block, [&](const Stmt& stmt) {
                const LetStmt* let = stmt_as_let(stmt);
                return let != nullptr && let->name == shared_var;
            });
            if (index < 0) return false;
            block.statements.erase(block.statements.begin() + index);
            return true;
        });
    }
    return program;
}

}  // namespace

std::vector<RepairRule> memory_rules() {
    std::vector<RepairRule> rules;
    auto add = [&](std::string id, RuleFamily family,
                   std::vector<UbCategory> categories, auto fn) {
        RepairRule rule;
        rule.id = std::move(id);
        rule.family = family;
        rule.categories = std::move(categories);
        rule.apply = fn;
        rules.push_back(std::move(rule));
    };

    add("remove-duplicate-dealloc", RuleFamily::Modification,
        {UbCategory::Alloc, UbCategory::DanglingPointer}, remove_duplicate_dealloc);
    add("match-dealloc-layout", RuleFamily::Modification, {UbCategory::Alloc},
        match_dealloc_layout);
    add("insert-missing-dealloc", RuleFamily::Modification, {UbCategory::Alloc},
        insert_missing_dealloc);
    add("move-dealloc-to-end", RuleFamily::Modification,
        {UbCategory::DanglingPointer, UbCategory::Alloc}, move_dealloc_to_end);
    add("hoist-declaration", RuleFamily::Modification,
        {UbCategory::DanglingPointer}, hoist_declaration);
    add("guard-null-check", RuleFamily::Assertion,
        {UbCategory::DanglingPointer, UbCategory::Provenance}, guard_null_check);
    add("guard-index-bound", RuleFamily::Assertion, {UbCategory::Panic},
        guard_index_bound);
    add("guard-divisor", RuleFamily::Assertion, {UbCategory::Panic}, guard_divisor);
    add("widen-to-i64", RuleFamily::SafeReplacement, {UbCategory::Panic},
        widen_to_i64);
    add("use-direct-pointer", RuleFamily::SafeReplacement,
        {UbCategory::Provenance}, use_direct_pointer);
    add("repair-loop-bounds", RuleFamily::Modification,
        {UbCategory::Provenance, UbCategory::Uninit}, repair_loop_bounds);
    add("guard-offset-range", RuleFamily::Assertion, {UbCategory::Provenance},
        guard_offset_range);
    add("init-after-alloc", RuleFamily::Modification, {UbCategory::Uninit},
        init_after_alloc);
    add("add-else-init", RuleFamily::Modification, {UbCategory::Uninit},
        add_else_init);
    add("reorder-borrow-use", RuleFamily::Modification, {UbCategory::BothBorrow},
        reorder_borrow_use);
    add("read-place-directly", RuleFamily::SafeReplacement,
        {UbCategory::BothBorrow}, read_place_directly);
    add("reorder-raw-use", RuleFamily::Modification, {UbCategory::StackBorrow},
        reorder_raw_use);
    add("mut-raw-from-mut", RuleFamily::SafeReplacement, {UbCategory::StackBorrow},
        mut_raw_from_mut);
    return rules;
}

}  // namespace rustbrain::llm
