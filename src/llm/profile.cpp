#include "llm/profile.hpp"

#include <algorithm>
#include <vector>

namespace rustbrain::llm {

using miri::UbCategory;

double ModelProfile::skill_for(UbCategory category) const {
    auto it = category_skill.find(category);
    return it == category_skill.end() ? 1.0 : it->second;
}

double ModelProfile::effective_competence(UbCategory category, bool has_features,
                                          bool has_exemplar, bool has_feedback_hint,
                                          int difficulty) const {
    double competence = base_competence * skill_for(category);
    if (has_features) {
        competence += feature_uptake * 0.18;
    }
    if (has_exemplar) {
        competence += fewshot_uptake * 0.30;
    }
    if (has_feedback_hint) {
        competence += fewshot_uptake * 0.22;
    }
    // Harder cases blunt everyone, weaker models more so.
    competence -= 0.06 * (difficulty - 1) * (1.5 - base_competence);
    return std::clamp(competence, 0.02, 0.98);
}

double ModelProfile::hallucination_rate(double temperature) const {
    // Calibrated so temperature 0.5 gives the base rate and the rate grows
    // quadratically above it (Fig 11's falling right flank). Below 0.5 the
    // rate shrinks slightly — low temperature's cost is diversity, not
    // corruption.
    const double scaled = hallucination_base * (0.6 + 1.6 * temperature * temperature);
    return std::clamp(scaled, 0.01, 0.95);
}

double ModelProfile::latency_for_tokens(std::uint32_t tokens) const {
    return latency_base_ms + latency_per_1k_tokens_ms * (tokens / 1000.0);
}

const ModelProfile& gpt35_profile() {
    static const ModelProfile profile = [] {
        ModelProfile p;
        p.name = "gpt-3.5";
        p.base_competence = 0.34;
        p.hallucination_base = 0.30;
        p.fewshot_uptake = 0.55;
        p.feature_uptake = 0.55;
        p.max_candidates = 3;
        p.latency_base_ms = 3150.0;
        p.latency_per_1k_tokens_ms = 11200.0;
        p.category_skill = {
            {UbCategory::DataRace, 0.75},    {UbCategory::TailCall, 0.6},
            {UbCategory::Provenance, 0.8},   {UbCategory::StackBorrow, 0.8},
            {UbCategory::FuncPointer, 0.8},
        };
        return p;
    }();
    return profile;
}

const ModelProfile& claude35_profile() {
    static const ModelProfile profile = [] {
        ModelProfile p;
        p.name = "claude-3.5";
        p.base_competence = 0.52;
        p.hallucination_base = 0.22;
        // The paper notes Claude-3.5 has strong initial semantics but gains
        // less from RustBrain's scaffolding than GPT-4 does (it "performs
        // less effectively than GPT-4 in understanding complex dependencies").
        p.fewshot_uptake = 0.30;
        p.feature_uptake = 0.30;
        p.max_candidates = 4;
        p.latency_base_ms = 3850.0;
        p.latency_per_1k_tokens_ms = 12600.0;
        p.category_skill = {
            {UbCategory::DataRace, 0.85},
            {UbCategory::TailCall, 0.7},
            {UbCategory::FuncPointer, 0.85},
        };
        return p;
    }();
    return profile;
}

const ModelProfile& gpt4_profile() {
    static const ModelProfile profile = [] {
        ModelProfile p;
        p.name = "gpt-4";
        p.base_competence = 0.56;
        p.hallucination_base = 0.22;
        p.fewshot_uptake = 0.65;
        p.feature_uptake = 0.65;
        p.max_candidates = 5;
        p.latency_base_ms = 6300.0;
        p.latency_per_1k_tokens_ms = 18200.0;
        p.category_skill = {
            {UbCategory::DataRace, 0.9},
            {UbCategory::TailCall, 0.8},
        };
        return p;
    }();
    return profile;
}

const ModelProfile& gpt_o1_profile() {
    static const ModelProfile profile = [] {
        ModelProfile p;
        p.name = "gpt-o1";
        // Exceptional reasoning on common shapes, but (per the paper's RQ2
        // discussion) it fails to tailor solutions for uncommon errors like
        // panic, and its deliberation costs far more time.
        p.base_competence = 0.60;
        p.hallucination_base = 0.12;
        p.fewshot_uptake = 0.25;
        p.feature_uptake = 0.4;
        p.max_candidates = 5;
        p.latency_base_ms = 31500.0;
        p.latency_per_1k_tokens_ms = 77000.0;
        p.category_skill = {
            {UbCategory::Panic, 0.18},     {UbCategory::TailCall, 0.5},
            {UbCategory::Unaligned, 0.65}, {UbCategory::FuncCall, 0.7},
        };
        return p;
    }();
    return profile;
}

const ModelProfile* find_profile(const std::string& name) {
    for (const ModelProfile* profile : all_profiles()) {
        if (profile->name == name) return profile;
    }
    return nullptr;
}

const std::vector<const ModelProfile*>& all_profiles() {
    static const std::vector<const ModelProfile*> profiles = {
        &gpt35_profile(), &claude35_profile(), &gpt4_profile(), &gpt_o1_profile()};
    return profiles;
}

}  // namespace rustbrain::llm
