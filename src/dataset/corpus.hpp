// The full UB corpus: every category builder assembled, with lookup helpers
// and a validation routine used by the integration tests (every buggy case
// must fail MiriLite with its declared category; every reference fix must
// pass and defines the expected output traces).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dataset/case.hpp"

namespace rustbrain::dataset {

class Corpus {
  public:
    /// The standard corpus (deterministic — no RNG involved).
    static Corpus standard();

    [[nodiscard]] const std::vector<UbCase>& cases() const { return cases_; }
    [[nodiscard]] std::vector<const UbCase*> by_category(
        miri::UbCategory category) const;
    [[nodiscard]] const UbCase* find(const std::string& id) const;
    [[nodiscard]] std::size_t size() const { return cases_.size(); }

    /// Categories that actually appear in the corpus, in figure order.
    [[nodiscard]] std::vector<miri::UbCategory> categories() const;

  private:
    std::vector<UbCase> cases_;
};

/// Validation outcome for one case.
struct CaseValidation {
    std::string id;
    bool buggy_fails = false;
    bool category_matches = false;
    bool reference_passes = false;
    std::string detail;

    [[nodiscard]] bool ok() const {
        return buggy_fails && category_matches && reference_passes;
    }
};

/// Run MiriLite over every case; the integration tests assert all ok().
std::vector<CaseValidation> validate_corpus(const Corpus& corpus);

}  // namespace rustbrain::dataset
