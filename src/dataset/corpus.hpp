// The full UB corpus: every category builder assembled, with lookup helpers
// and a validation routine used by the integration tests (every buggy case
// must fail MiriLite with its declared category; every reference fix must
// pass and defines the expected output traces).
//
// A Corpus can be built from any case vector — the hand-written standard
// set, a gen::forge_corpus() product, or a file loaded by gen::load_corpus —
// and indexes ids and categories at construction so find() and by_category()
// are O(1)/O(k) instead of linear scans over the whole corpus.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/case.hpp"

namespace rustbrain::verify {
class Oracle;
}  // namespace rustbrain::verify

namespace rustbrain::dataset {

class Corpus {
  public:
    Corpus() = default;
    /// Index an arbitrary case vector. Throws std::invalid_argument on a
    /// duplicate id (every corpus, generated or loaded, must be addressable).
    explicit Corpus(std::vector<UbCase> cases);

    /// The standard corpus (deterministic — no RNG involved).
    static Corpus standard();

    [[nodiscard]] const std::vector<UbCase>& cases() const { return cases_; }
    [[nodiscard]] std::vector<const UbCase*> by_category(
        miri::UbCategory category) const;
    [[nodiscard]] const UbCase* find(const std::string& id) const;
    [[nodiscard]] std::size_t size() const { return cases_.size(); }

    /// Categories that actually appear in the corpus, in figure order.
    [[nodiscard]] std::vector<miri::UbCategory> categories() const;

  private:
    std::vector<UbCase> cases_;
    // Both indexes store positions into cases_, not pointers, so the default
    // copy/move of a Corpus stays correct.
    std::unordered_map<std::string, std::size_t> id_index_;
    std::map<miri::UbCategory, std::vector<std::size_t>> category_index_;
};

/// Validation outcome for one case.
struct CaseValidation {
    std::string id;
    bool buggy_fails = false;
    bool category_matches = false;
    bool reference_passes = false;
    std::string detail;

    [[nodiscard]] bool ok() const {
        return buggy_fails && category_matches && reference_passes;
    }
};

/// Validate a single case: the buggy program must fail MiriLite with the
/// declared category and the reference fix must pass. The unit of work
/// behind validate_corpus and the forge's rejection sampler. Verification
/// runs through `oracle`, so a corpus validated (or forged) earlier in the
/// process answers from cache.
CaseValidation validate_case(const UbCase& ub_case,
                             const verify::Oracle& oracle);
/// Convenience overload bound to verify::Oracle::shared_default().
CaseValidation validate_case(const UbCase& ub_case);

/// Validate every case; the integration tests assert all ok().
std::vector<CaseValidation> validate_corpus(const Corpus& corpus);

}  // namespace rustbrain::dataset
