// Corpus builders: data race, concurrency.
#include <array>

#include "dataset/builders.hpp"

namespace rustbrain::dataset {

using detail::fill;

namespace {
const std::array<const char*, 3> kGlobal = {"COUNTER", "TOTAL", "HITS"};
const std::array<const char*, 3> kWorker = {"worker", "tally", "bump"};
const std::array<const char*, 3> kStep = {"1", "5", "9"};
}  // namespace

// ---------------------------------------------------------------------------
// data race
// ---------------------------------------------------------------------------

std::vector<UbCase> make_datarace_cases() {
    std::vector<UbCase> cases;
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kGlobal[v], kWorker[v], kStep[v]};

        // Shape 0: two workers increment a static mut without sync.
        UbCase counter;
        counter.id = "datarace/counter_" + std::to_string(v);
        counter.category = miri::UbCategory::DataRace;
        counter.intended_strategy = FixStrategy::SafeAlternative;
        counter.difficulty = 2;
        counter.buggy_source = fill(R"(static mut $0: i64 = 0;
fn $1() {
    unsafe {
        $0 = $0 + $2;
    }
}
fn main() {
    let first = spawn($1);
    let second = spawn($1);
    join(first);
    join(second);
    unsafe {
        print_int($0);
    }
}
)",
                                    args);
        counter.reference_fix = fill(R"(static mut $0: i64 = 0;
fn $1() {
    unsafe {
        let cell = &mut $0 as *mut i64;
        let old = atomic_fetch_add(cell, $2);
    }
}
fn main() {
    let first = spawn($1);
    let second = spawn($1);
    join(first);
    join(second);
    unsafe {
        let cell = &mut $0 as *mut i64;
        print_int(atomic_load(cell as *const i64));
    }
}
)",
                                     args);
        counter.inputs = {{}};
        cases.push_back(std::move(counter));

        // Shape 1: writer/reader pair on a shared flag.
        UbCase flag;
        flag.id = "datarace/flag_" + std::to_string(v);
        flag.category = miri::UbCategory::DataRace;
        flag.intended_strategy = FixStrategy::SafeAlternative;
        flag.difficulty = 2;
        flag.buggy_source = fill(R"(static mut $0: i64 = 0;
fn set_flag() {
    unsafe {
        $0 = $2;
    }
}
fn read_flag() {
    unsafe {
        print_int($0);
    }
}
fn main() {
    let writer = spawn(set_flag);
    let reader = spawn(read_flag);
    join(writer);
    join(reader);
}
)",
                                 args);
        flag.reference_fix = fill(R"(static mut $0: i64 = 0;
fn set_flag() {
    unsafe {
        let cell = &mut $0 as *mut i64;
        atomic_store(cell, $2);
    }
}
fn read_flag() {
    unsafe {
        let cell = &mut $0 as *mut i64;
        print_int(atomic_load(cell as *const i64));
    }
}
fn main() {
    let writer = spawn(set_flag);
    let reader = spawn(read_flag);
    join(writer);
    join(reader);
}
)",
                                  args);
        flag.inputs = {{}};
        cases.push_back(std::move(flag));

        // Shape 2: main races with a still-running worker it joins too late.
        UbCase late_join;
        late_join.id = "datarace/late_join_" + std::to_string(v);
        late_join.category = miri::UbCategory::DataRace;
        late_join.intended_strategy = FixStrategy::SemanticModification;
        late_join.difficulty = 3;
        late_join.buggy_source = fill(R"(static mut $0: i64 = 0;
fn $1() {
    unsafe {
        $0 = $0 + $2;
    }
}
fn main() {
    let handle = spawn($1);
    unsafe {
        $0 = $0 + 1;
    }
    join(handle);
    unsafe {
        print_int($0);
    }
}
)",
                                      args);
        late_join.reference_fix = fill(R"(static mut $0: i64 = 0;
fn $1() {
    unsafe {
        $0 = $0 + $2;
    }
}
fn main() {
    let handle = spawn($1);
    join(handle);
    unsafe {
        $0 = $0 + 1;
    }
    unsafe {
        print_int($0);
    }
}
)",
                                       args);
        late_join.inputs = {{}};
        cases.push_back(std::move(late_join));
    }
    return cases;
}

// ---------------------------------------------------------------------------
// concurrency
// ---------------------------------------------------------------------------

std::vector<UbCase> make_concurrency_cases() {
    std::vector<UbCase> cases;
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kGlobal[v], kWorker[v], kStep[v]};

        // Shape 0: spawned thread never joined.
        UbCase leak;
        leak.id = "concurrency/thread_leak_" + std::to_string(v);
        leak.category = miri::UbCategory::Concurrency;
        leak.intended_strategy = FixStrategy::SemanticModification;
        leak.difficulty = 1;
        leak.buggy_source = fill(R"(fn $1() {
    print_int($2);
}
fn main() {
    let handle = spawn($1);
    print_int(0);
}
)",
                                 args);
        leak.reference_fix = fill(R"(fn $1() {
    print_int($2);
}
fn main() {
    let handle = spawn($1);
    join(handle);
    print_int(0);
}
)",
                                  args);
        leak.inputs = {{}};
        cases.push_back(std::move(leak));

        // Shape 1: joining the same handle twice.
        UbCase double_join;
        double_join.id = "concurrency/double_join_" + std::to_string(v);
        double_join.category = miri::UbCategory::Concurrency;
        double_join.intended_strategy = FixStrategy::SemanticModification;
        double_join.difficulty = 1;
        double_join.buggy_source = fill(R"(fn $1() {
    print_int($2);
}
fn main() {
    let handle = spawn($1);
    join(handle);
    join(handle);
}
)",
                                        args);
        double_join.reference_fix = fill(R"(fn $1() {
    print_int($2);
}
fn main() {
    let handle = spawn($1);
    join(handle);
}
)",
                                         args);
        double_join.inputs = {{}};
        cases.push_back(std::move(double_join));

        // Shape 2: re-locking a held mutex (should have unlocked).
        UbCase relock;
        relock.id = "concurrency/relock_" + std::to_string(v);
        relock.category = miri::UbCategory::Concurrency;
        relock.intended_strategy = FixStrategy::SemanticModification;
        relock.difficulty = 2;
        relock.buggy_source = fill(R"(static mut LOCK: i64 = 0;
static mut $0: i64 = 0;
fn main() {
    unsafe {
        LOCK = mutex_new();
        mutex_lock(LOCK);
        $0 = $0 + $2;
        mutex_lock(LOCK);
        print_int($0);
        mutex_unlock(LOCK);
    }
}
)",
                                   args);
        relock.reference_fix = fill(R"(static mut LOCK: i64 = 0;
static mut $0: i64 = 0;
fn main() {
    unsafe {
        LOCK = mutex_new();
        mutex_lock(LOCK);
        $0 = $0 + $2;
        mutex_unlock(LOCK);
        mutex_lock(LOCK);
        print_int($0);
        mutex_unlock(LOCK);
    }
}
)",
                                    args);
        relock.inputs = {{}};
        cases.push_back(std::move(relock));
    }
    return cases;
}

}  // namespace rustbrain::dataset
