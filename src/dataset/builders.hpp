// Per-category case builders. Each produces kVariantsPerShape parametric
// variants of a handful of bug shapes; variants differ in identifier names,
// constants and array sizes so that knowledge-base similarity search has
// real work to do.
#pragma once

#include <string>
#include <vector>

#include "dataset/case.hpp"

namespace rustbrain::dataset {

constexpr int kVariantsPerShape = 3;

std::vector<UbCase> make_alloc_cases();
std::vector<UbCase> make_dangling_cases();
std::vector<UbCase> make_uninit_cases();
std::vector<UbCase> make_provenance_cases();

std::vector<UbCase> make_bothborrow_cases();
std::vector<UbCase> make_stackborrow_cases();
std::vector<UbCase> make_validity_cases();
std::vector<UbCase> make_unaligned_cases();

std::vector<UbCase> make_panic_cases();
std::vector<UbCase> make_funccall_cases();
std::vector<UbCase> make_funcpointer_cases();
std::vector<UbCase> make_tailcall_cases();

std::vector<UbCase> make_datarace_cases();
std::vector<UbCase> make_concurrency_cases();

namespace detail {
/// Replace `$0`..`$9` placeholders with the given fragments.
std::string fill(std::string templ, const std::vector<std::string>& args);
}  // namespace detail

}  // namespace rustbrain::dataset
