#include "dataset/corpus.hpp"

#include <stdexcept>
#include <utility>

#include "dataset/builders.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::dataset {

const char* fix_strategy_name(FixStrategy strategy) {
    switch (strategy) {
        case FixStrategy::SafeAlternative: return "safe-alternative";
        case FixStrategy::AssertionGuard: return "assertion-guard";
        case FixStrategy::SemanticModification: return "semantic-modification";
    }
    return "?";
}

Corpus::Corpus(std::vector<UbCase> cases) : cases_(std::move(cases)) {
    id_index_.reserve(cases_.size());
    for (std::size_t i = 0; i < cases_.size(); ++i) {
        if (!id_index_.emplace(cases_[i].id, i).second) {
            throw std::invalid_argument("duplicate corpus case id: " +
                                        cases_[i].id);
        }
        category_index_[cases_[i].category].push_back(i);
    }
}

Corpus Corpus::standard() {
    std::vector<UbCase> cases;
    auto append = [&](std::vector<UbCase> more) {
        for (auto& c : more) {
            cases.push_back(std::move(c));
        }
    };
    append(make_alloc_cases());
    append(make_dangling_cases());
    append(make_panic_cases());
    append(make_provenance_cases());
    append(make_uninit_cases());
    append(make_bothborrow_cases());
    append(make_datarace_cases());
    append(make_funccall_cases());
    append(make_funcpointer_cases());
    append(make_stackborrow_cases());
    append(make_validity_cases());
    append(make_unaligned_cases());
    append(make_concurrency_cases());
    append(make_tailcall_cases());
    return Corpus(std::move(cases));
}

std::vector<const UbCase*> Corpus::by_category(miri::UbCategory category) const {
    std::vector<const UbCase*> out;
    auto it = category_index_.find(category);
    if (it == category_index_.end()) return out;
    out.reserve(it->second.size());
    for (std::size_t index : it->second) {
        out.push_back(&cases_[index]);
    }
    return out;
}

const UbCase* Corpus::find(const std::string& id) const {
    auto it = id_index_.find(id);
    return it == id_index_.end() ? nullptr : &cases_[it->second];
}

std::vector<miri::UbCategory> Corpus::categories() const {
    std::vector<miri::UbCategory> out;
    for (miri::UbCategory category : miri::all_ub_categories()) {
        if (category_index_.count(category) != 0) {
            out.push_back(category);
        }
    }
    return out;
}

CaseValidation validate_case(const UbCase& ub_case,
                             const verify::Oracle& oracle) {
    CaseValidation validation;
    validation.id = ub_case.id;

    const miri::MiriReport buggy =
        oracle.test_source(ub_case.buggy_source, ub_case.inputs);
    validation.buggy_fails = !buggy.passed();
    validation.category_matches = buggy.has_category(ub_case.category);
    if (!validation.buggy_fails) {
        validation.detail = "buggy program passed MiriLite";
    } else if (!validation.category_matches) {
        validation.detail =
            "expected category " +
            std::string(miri::ub_category_label(ub_case.category)) +
            " but findings were:\n" + buggy.summary();
    }

    const miri::MiriReport fixed =
        oracle.test_source(ub_case.reference_fix, ub_case.inputs);
    validation.reference_passes = fixed.passed();
    if (!validation.reference_passes) {
        validation.detail += "\nreference fix failed:\n" + fixed.summary();
    }
    return validation;
}

CaseValidation validate_case(const UbCase& ub_case) {
    return validate_case(ub_case, verify::Oracle::shared_default());
}

std::vector<CaseValidation> validate_corpus(const Corpus& corpus) {
    std::vector<CaseValidation> results;
    results.reserve(corpus.size());
    const verify::Oracle& oracle = verify::Oracle::shared_default();
    for (const UbCase& c : corpus.cases()) {
        results.push_back(validate_case(c, oracle));
    }
    return results;
}

}  // namespace rustbrain::dataset
