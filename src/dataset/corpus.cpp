#include "dataset/corpus.hpp"

#include <set>

#include "dataset/builders.hpp"
#include "miri/mirilite.hpp"

namespace rustbrain::dataset {

const char* fix_strategy_name(FixStrategy strategy) {
    switch (strategy) {
        case FixStrategy::SafeAlternative: return "safe-alternative";
        case FixStrategy::AssertionGuard: return "assertion-guard";
        case FixStrategy::SemanticModification: return "semantic-modification";
    }
    return "?";
}

Corpus Corpus::standard() {
    Corpus corpus;
    auto append = [&](std::vector<UbCase> cases) {
        for (auto& c : cases) {
            corpus.cases_.push_back(std::move(c));
        }
    };
    append(make_alloc_cases());
    append(make_dangling_cases());
    append(make_panic_cases());
    append(make_provenance_cases());
    append(make_uninit_cases());
    append(make_bothborrow_cases());
    append(make_datarace_cases());
    append(make_funccall_cases());
    append(make_funcpointer_cases());
    append(make_stackborrow_cases());
    append(make_validity_cases());
    append(make_unaligned_cases());
    append(make_concurrency_cases());
    append(make_tailcall_cases());
    return corpus;
}

std::vector<const UbCase*> Corpus::by_category(miri::UbCategory category) const {
    std::vector<const UbCase*> out;
    for (const auto& c : cases_) {
        if (c.category == category) out.push_back(&c);
    }
    return out;
}

const UbCase* Corpus::find(const std::string& id) const {
    for (const auto& c : cases_) {
        if (c.id == id) return &c;
    }
    return nullptr;
}

std::vector<miri::UbCategory> Corpus::categories() const {
    std::vector<miri::UbCategory> out;
    std::set<miri::UbCategory> seen;
    for (miri::UbCategory category : miri::all_ub_categories()) {
        for (const auto& c : cases_) {
            if (c.category == category && seen.insert(category).second) {
                out.push_back(category);
            }
        }
    }
    return out;
}

std::vector<CaseValidation> validate_corpus(const Corpus& corpus) {
    std::vector<CaseValidation> results;
    miri::MiriLite miri;
    for (const UbCase& c : corpus.cases()) {
        CaseValidation validation;
        validation.id = c.id;

        const miri::MiriReport buggy = miri.test_source(c.buggy_source, c.inputs);
        validation.buggy_fails = !buggy.passed();
        validation.category_matches = buggy.has_category(c.category);
        if (!validation.buggy_fails) {
            validation.detail = "buggy program passed MiriLite";
        } else if (!validation.category_matches) {
            validation.detail = "expected category " +
                                std::string(miri::ub_category_label(c.category)) +
                                " but findings were:\n" + buggy.summary();
        }

        const miri::MiriReport fixed = miri.test_source(c.reference_fix, c.inputs);
        validation.reference_passes = fixed.passed();
        if (!validation.reference_passes) {
            validation.detail += "\nreference fix failed:\n" + fixed.summary();
        }
        results.push_back(std::move(validation));
    }
    return results;
}

}  // namespace rustbrain::dataset
