// A single corpus entry: a mini-Rust program with a seeded UB, the
// developer's reference fix (defines the expected semantics), and the input
// vectors of its semantic benchmark. Stand-in for the paper's Miri-derived
// dataset (DESIGN.md §1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "miri/finding.hpp"

namespace rustbrain::dataset {

/// Which repair family the developer fix uses — the paper's Principle 2
/// classification (safe alternative / assertion-guard / semantic
/// modification). Used for analysis and by the Fig 7 flexibility bench.
enum class FixStrategy { SafeAlternative, AssertionGuard, SemanticModification };

const char* fix_strategy_name(FixStrategy strategy);

struct UbCase {
    std::string id;  // "<category>/<shape>_<variant>"
    miri::UbCategory category = miri::UbCategory::Panic;
    FixStrategy intended_strategy = FixStrategy::SemanticModification;
    std::string buggy_source;
    std::string reference_fix;
    /// Input vectors for the semantic benchmark; each triggers one
    /// interpreter run. At least one input must trigger the UB in the buggy
    /// program.
    std::vector<std::vector<std::int64_t>> inputs;
    /// 1 (routine) .. 3 (rare/complex) — drives the expert-time model and
    /// the SimLLM competence penalty.
    int difficulty = 1;
};

}  // namespace rustbrain::dataset
