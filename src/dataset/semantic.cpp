#include "dataset/semantic.hpp"

#include "lang/printer.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::dataset {

SemanticVerdict judge_semantics(const std::string& candidate_source,
                                const UbCase& ub_case,
                                const verify::Oracle& oracle) {
    SemanticVerdict verdict;

    const miri::MiriReport candidate_report =
        oracle.test_source(candidate_source, ub_case.inputs);
    verdict.miri_pass = candidate_report.passed();
    if (!verdict.miri_pass) {
        verdict.detail = "candidate fails MiriLite:\n" + candidate_report.summary();
        return verdict;
    }

    // Memoized after the first candidate of this case: every later judgment
    // reuses the reference report instead of re-interpreting the fix.
    const miri::MiriReport reference_report =
        oracle.test_source(ub_case.reference_fix, ub_case.inputs);
    if (!reference_report.passed()) {
        verdict.detail = "reference fix itself fails MiriLite (corpus bug)";
        return verdict;
    }

    if (candidate_report.outputs.size() != reference_report.outputs.size()) {
        verdict.detail = "run count mismatch";
        return verdict;
    }
    for (std::size_t i = 0; i < candidate_report.outputs.size(); ++i) {
        if (candidate_report.outputs[i] != reference_report.outputs[i]) {
            verdict.detail = "output trace diverges from the reference on input #" +
                             std::to_string(i);
            return verdict;
        }
    }
    verdict.trace_match = true;
    return verdict;
}

SemanticVerdict judge_semantics(const lang::Program& candidate,
                                const UbCase& ub_case,
                                const verify::Oracle& oracle) {
    return judge_semantics(lang::print_program(candidate), ub_case, oracle);
}

SemanticVerdict judge_semantics(const std::string& candidate_source,
                                const UbCase& ub_case) {
    return judge_semantics(candidate_source, ub_case,
                           verify::Oracle::shared_default());
}

SemanticVerdict judge_semantics(const lang::Program& candidate,
                                const UbCase& ub_case) {
    return judge_semantics(candidate, ub_case,
                           verify::Oracle::shared_default());
}

}  // namespace rustbrain::dataset
