// Corpus builders: both-borrow, stack-borrow, validity, unaligned.
#include <array>

#include "dataset/builders.hpp"

namespace rustbrain::dataset {

using detail::fill;

namespace {
const std::array<const char*, 3> kVar = {"x", "count", "cell"};
const std::array<const char*, 3> kConstA = {"5", "70", "900"};
const std::array<const char*, 3> kConstB = {"6", "71", "901"};
}  // namespace

// ---------------------------------------------------------------------------
// both borrow
// ---------------------------------------------------------------------------

std::vector<UbCase> make_bothborrow_cases() {
    std::vector<UbCase> cases;
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kVar[v], kConstA[v], kConstB[v]};

        // Shape 0: shared ref used after a &mut was created.
        UbCase shared_then_mut;
        shared_then_mut.id = "bothborrow/shared_then_mut_" + std::to_string(v);
        shared_then_mut.category = miri::UbCategory::BothBorrow;
        shared_then_mut.intended_strategy = FixStrategy::SemanticModification;
        shared_then_mut.difficulty = 2;
        shared_then_mut.buggy_source = fill(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    let exclusive = &mut $0;
    *exclusive = $2;
    print_int(*shared as i64);
    print_int($0 as i64);
}
)",
                                            args);
        shared_then_mut.reference_fix = fill(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    print_int(*shared as i64);
    let exclusive = &mut $0;
    *exclusive = $2;
    print_int($0 as i64);
}
)",
                                             args);
        shared_then_mut.inputs = {{}};
        cases.push_back(std::move(shared_then_mut));

        // Shape 1: direct write to the place while a shared ref is live.
        UbCase write_under_shared;
        write_under_shared.id = "bothborrow/write_under_shared_" + std::to_string(v);
        write_under_shared.category = miri::UbCategory::BothBorrow;
        write_under_shared.intended_strategy = FixStrategy::SemanticModification;
        write_under_shared.difficulty = 1;
        write_under_shared.buggy_source = fill(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    $0 = $2;
    print_int(*shared as i64);
}
)",
                                               args);
        write_under_shared.reference_fix = fill(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    print_int(*shared as i64);
    $0 = $2;
}
)",
                                                args);
        write_under_shared.inputs = {{}};
        cases.push_back(std::move(write_under_shared));

        // Shape 2: read-modify-write juggling both borrows.
        UbCase juggle;
        juggle.id = "bothborrow/juggle_" + std::to_string(v);
        juggle.category = miri::UbCategory::BothBorrow;
        juggle.intended_strategy = FixStrategy::SemanticModification;
        juggle.difficulty = 3;
        juggle.buggy_source = fill(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    let snapshot = *shared;
    let exclusive = &mut $0;
    *exclusive = snapshot + 1;
    print_int(*shared as i64);
}
)",
                                   args);
        juggle.reference_fix = fill(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    let snapshot = *shared;
    let exclusive = &mut $0;
    *exclusive = snapshot + 1;
    print_int($0 as i64);
}
)",
                                    args);
        juggle.inputs = {{}};
        cases.push_back(std::move(juggle));
    }
    return cases;
}

// ---------------------------------------------------------------------------
// stack borrow
// ---------------------------------------------------------------------------

std::vector<UbCase> make_stackborrow_cases() {
    std::vector<UbCase> cases;
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kVar[v], kConstA[v], kConstB[v]};

        // Shape 0: raw pointer invalidated by a later &mut, then written.
        UbCase raw_invalidated;
        raw_invalidated.id = "stackborrow/raw_invalidated_" + std::to_string(v);
        raw_invalidated.category = miri::UbCategory::StackBorrow;
        raw_invalidated.intended_strategy = FixStrategy::SemanticModification;
        raw_invalidated.difficulty = 2;
        raw_invalidated.buggy_source = fill(R"(fn main() {
    let mut $0 = $1;
    let raw = &mut $0 as *mut i32;
    let fresh = &mut $0;
    *fresh = $2;
    unsafe {
        *raw = $1;
    }
    print_int($0 as i64);
}
)",
                                            args);
        raw_invalidated.reference_fix = fill(R"(fn main() {
    let mut $0 = $1;
    let raw = &mut $0 as *mut i32;
    unsafe {
        *raw = $1;
    }
    let fresh = &mut $0;
    *fresh = $2;
    print_int($0 as i64);
}
)",
                                             args);
        raw_invalidated.inputs = {{}};
        cases.push_back(std::move(raw_invalidated));

        // Shape 1: raw read after the place itself was reassigned.
        UbCase raw_after_write;
        raw_after_write.id = "stackborrow/raw_after_write_" + std::to_string(v);
        raw_after_write.category = miri::UbCategory::StackBorrow;
        raw_after_write.intended_strategy = FixStrategy::SemanticModification;
        raw_after_write.difficulty = 2;
        raw_after_write.buggy_source = fill(R"(fn main() {
    let mut $0 = $1;
    let raw = &mut $0 as *mut i32;
    $0 = $2;
    unsafe {
        print_int(*raw as i64);
    }
}
)",
                                            args);
        raw_after_write.reference_fix = fill(R"(fn main() {
    let mut $0 = $1;
    let raw = &mut $0 as *mut i32;
    unsafe {
        print_int(*raw as i64);
    }
    $0 = $2;
}
)",
                                             args);
        raw_after_write.inputs = {{}};
        cases.push_back(std::move(raw_after_write));

        // Shape 2: writing through a raw pointer derived from a shared ref.
        UbCase readonly_write;
        readonly_write.id = "stackborrow/readonly_write_" + std::to_string(v);
        readonly_write.category = miri::UbCategory::StackBorrow;
        readonly_write.intended_strategy = FixStrategy::SafeAlternative;
        readonly_write.difficulty = 3;
        readonly_write.buggy_source = fill(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    let raw = shared as *const i32 as *mut i32;
    unsafe {
        *raw = $2;
    }
    print_int($0 as i64);
}
)",
                                           args);
        readonly_write.reference_fix = fill(R"(fn main() {
    let mut $0 = $1;
    let raw = &mut $0 as *mut i32;
    unsafe {
        *raw = $2;
    }
    print_int($0 as i64);
}
)",
                                            args);
        readonly_write.inputs = {{}};
        cases.push_back(std::move(readonly_write));
    }
    return cases;
}

// ---------------------------------------------------------------------------
// validity
// ---------------------------------------------------------------------------

std::vector<UbCase> make_validity_cases() {
    std::vector<UbCase> cases;
    const std::array<const char*, 3> bad_byte = {"2", "3", "255"};
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kVar[v], bad_byte[v]};

        // Shape 0: type-punned bool from an arbitrary byte.
        UbCase pun;
        pun.id = "validity/bool_pun_" + std::to_string(v);
        pun.category = miri::UbCategory::Validity;
        pun.intended_strategy = FixStrategy::SafeAlternative;
        pun.difficulty = 2;
        pun.buggy_source = fill(R"(fn main() {
    let $0: [u8; 2] = [$1, 1];
    let first = &$0 as *const u8 as *const bool;
    unsafe {
        print_bool(*first);
    }
}
)",
                                args);
        pun.reference_fix = fill(R"(fn main() {
    let $0: [u8; 2] = [$1, 1];
    print_bool($0[0] != 0);
}
)",
                                 args);
        pun.inputs = {{}};
        cases.push_back(std::move(pun));

        // Shape 1: heap byte written out of bool range, read as bool.
        UbCase heap_pun;
        heap_pun.id = "validity/heap_bool_" + std::to_string(v);
        heap_pun.category = miri::UbCategory::Validity;
        heap_pun.intended_strategy = FixStrategy::SafeAlternative;
        heap_pun.difficulty = 2;
        heap_pun.buggy_source = fill(R"(fn main() {
    unsafe {
        let $0 = alloc(1, 1);
        *$0 = $1;
        let flag = $0 as *const bool;
        print_bool(*flag);
        dealloc($0, 1, 1);
    }
}
)",
                                     args);
        heap_pun.reference_fix = fill(R"(fn main() {
    unsafe {
        let $0 = alloc(1, 1);
        *$0 = $1;
        print_bool(*$0 != 0);
        dealloc($0, 1, 1);
    }
}
)",
                                      args);
        heap_pun.inputs = {{}};
        cases.push_back(std::move(heap_pun));

        // Shape 2: input-dependent byte punned to bool.
        UbCase input_pun;
        input_pun.id = "validity/input_bool_" + std::to_string(v);
        input_pun.category = miri::UbCategory::Validity;
        input_pun.intended_strategy = FixStrategy::SafeAlternative;
        input_pun.difficulty = 3;
        input_pun.buggy_source = fill(R"(fn main() {
    let mut $0: [u8; 1] = [0];
    $0[0] = input(0) as u8;
    let p = &$0 as *const u8 as *const bool;
    unsafe {
        print_bool(*p);
    }
}
)",
                                      args);
        input_pun.reference_fix = fill(R"(fn main() {
    let mut $0: [u8; 1] = [0];
    $0[0] = input(0) as u8;
    print_bool($0[0] != 0);
}
)",
                                       args);
        input_pun.inputs = {{0}, {1}, {7}};
        cases.push_back(std::move(input_pun));
    }
    return cases;
}

// ---------------------------------------------------------------------------
// unaligned
// ---------------------------------------------------------------------------

std::vector<UbCase> make_unaligned_cases() {
    std::vector<UbCase> cases;
    const std::array<const char*, 3> elem_count = {"2", "3", "4"};
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kVar[v], elem_count[v]};

        // Shape 0: byte-offset confusion — offsetting the u8 view by the
        // element index instead of the element size.
        UbCase byte_confusion;
        byte_confusion.id = "unaligned/byte_confusion_" + std::to_string(v);
        byte_confusion.category = miri::UbCategory::Unaligned;
        byte_confusion.intended_strategy = FixStrategy::SemanticModification;
        byte_confusion.difficulty = 2;
        byte_confusion.buggy_source = fill(R"(fn main() {
    let $0: [u32; $1] = [11; $1];
    unsafe {
        let bytes = &$0 as *const u32 as *const u8;
        let second = offset(bytes, 1) as *const u32;
        print_int(*second as i64);
    }
}
)",
                                           args);
        byte_confusion.reference_fix = fill(R"(fn main() {
    let $0: [u32; $1] = [11; $1];
    unsafe {
        let elems = &$0 as *const u32;
        let second = offset(elems, 1);
        print_int(*second as i64);
    }
}
)",
                                            args);
        byte_confusion.inputs = {{}};
        cases.push_back(std::move(byte_confusion));

        // Shape 1: wide store at a misaligned heap offset.
        UbCase wide_store;
        wide_store.id = "unaligned/wide_store_" + std::to_string(v);
        wide_store.category = miri::UbCategory::Unaligned;
        wide_store.intended_strategy = FixStrategy::SemanticModification;
        wide_store.difficulty = 2;
        wide_store.buggy_source = fill(R"(fn main() {
    unsafe {
        let $0 = alloc(16, 8);
        let word = offset($0, 1) as *mut i64;
        *word = 77;
        print_int(*word);
        dealloc($0, 16, 8);
    }
}
)",
                                       args);
        wide_store.reference_fix = fill(R"(fn main() {
    unsafe {
        let $0 = alloc(16, 8);
        let word = offset($0, 8) as *mut i64;
        *word = 77;
        print_int(*word);
        dealloc($0, 16, 8);
    }
}
)",
                                        args);
        wide_store.inputs = {{}};
        cases.push_back(std::move(wide_store));

        // Shape 2: u16 read at an odd address.
        UbCase odd_u16;
        odd_u16.id = "unaligned/odd_u16_" + std::to_string(v);
        odd_u16.category = miri::UbCategory::Unaligned;
        odd_u16.intended_strategy = FixStrategy::SemanticModification;
        odd_u16.difficulty = 1;
        odd_u16.buggy_source = fill(R"(fn main() {
    let $0: [u16; $1] = [9; $1];
    unsafe {
        let bytes = &$0 as *const u16 as *const u8;
        let entry = offset(bytes, 1) as *const u16;
        print_int(*entry as i64);
    }
}
)",
                                    args);
        odd_u16.reference_fix = fill(R"(fn main() {
    let $0: [u16; $1] = [9; $1];
    unsafe {
        let elems = &$0 as *const u16;
        let entry = offset(elems, 1);
        print_int(*entry as i64);
    }
}
)",
                                     args);
        odd_u16.inputs = {{}};
        cases.push_back(std::move(odd_u16));
    }
    return cases;
}

}  // namespace rustbrain::dataset
