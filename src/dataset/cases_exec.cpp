// Corpus builders: panic, func.call, func.pointer, tail call.
#include <array>

#include "dataset/builders.hpp"

namespace rustbrain::dataset {

using detail::fill;

namespace {
const std::array<const char*, 3> kArr = {"table", "values", "samples"};
const std::array<const char*, 3> kLen = {"4", "5", "6"};
const std::array<const char*, 3> kFn = {"compute", "transform", "score"};
}  // namespace

// ---------------------------------------------------------------------------
// panic
// ---------------------------------------------------------------------------

std::vector<UbCase> make_panic_cases() {
    std::vector<UbCase> cases;
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kArr[v], kLen[v]};

        // Shape 0: unchecked index from input.
        UbCase oob_index;
        oob_index.id = "panic/oob_index_" + std::to_string(v);
        oob_index.category = miri::UbCategory::Panic;
        oob_index.intended_strategy = FixStrategy::AssertionGuard;
        oob_index.difficulty = 1;
        oob_index.buggy_source = fill(R"(fn main() {
    let $0: [i64; $1] = [7; $1];
    let pick = input(0) as usize;
    print_int($0[pick]);
}
)",
                                      args);
        oob_index.reference_fix = fill(R"(fn main() {
    let $0: [i64; $1] = [7; $1];
    let pick = input(0) as usize;
    if pick < $1 {
        print_int($0[pick]);
    } else {
        print_int(0 - 1);
    }
}
)",
                                       args);
        oob_index.inputs = {{1}, {9}};
        cases.push_back(std::move(oob_index));

        // Shape 1: division by an input that can be zero.
        UbCase div_zero;
        div_zero.id = "panic/div_zero_" + std::to_string(v);
        div_zero.category = miri::UbCategory::Panic;
        div_zero.intended_strategy = FixStrategy::AssertionGuard;
        div_zero.difficulty = 1;
        div_zero.buggy_source = fill(R"(fn main() {
    let total: i64 = 100;
    let parts = input(0);
    print_int(total / parts);
}
)",
                                     args);
        div_zero.reference_fix = fill(R"(fn main() {
    let total: i64 = 100;
    let parts = input(0);
    if parts != 0 {
        print_int(total / parts);
    } else {
        print_int(0 - 1);
    }
}
)",
                                      args);
        div_zero.inputs = {{4}, {0}};
        cases.push_back(std::move(div_zero));

        // Shape 2: i32 accumulator overflows; fix widens to i64.
        UbCase overflow;
        overflow.id = "panic/overflow_" + std::to_string(v);
        overflow.category = miri::UbCategory::Panic;
        overflow.intended_strategy = FixStrategy::SafeAlternative;
        overflow.difficulty = 2;
        overflow.buggy_source = fill(R"(fn main() {
    let base: i32 = 2147483000;
    let extra = input(0) as i32;
    print_int((base + extra) as i64);
}
)",
                                     args);
        overflow.reference_fix = fill(R"(fn main() {
    let base: i64 = 2147483000;
    let extra = input(0);
    print_int(base + extra);
}
)",
                                      args);
        overflow.inputs = {{5}, {5000}};
        cases.push_back(std::move(overflow));
    }
    return cases;
}

// ---------------------------------------------------------------------------
// func.call
// ---------------------------------------------------------------------------

std::vector<UbCase> make_funccall_cases() {
    std::vector<UbCase> cases;
    const std::array<const char*, 3> kBogus = {"4096", "65536", "12288"};
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kFn[v], kBogus[v]};

        // Shape 0: call through a constant bogus address.
        UbCase bogus;
        bogus.id = "func.call/bogus_address_" + std::to_string(v);
        bogus.category = miri::UbCategory::FuncCall;
        bogus.intended_strategy = FixStrategy::SemanticModification;
        bogus.difficulty = 2;
        bogus.buggy_source = fill(R"(fn $0() {
    print_int(42);
}
fn main() {
    unsafe {
        let handler = $1 as fn();
        handler();
    }
}
)",
                                  args);
        bogus.reference_fix = fill(R"(fn $0() {
    print_int(42);
}
fn main() {
    $0();
}
)",
                                   args);
        bogus.inputs = {{}};
        cases.push_back(std::move(bogus));

        // Shape 1: address arithmetic corrupts a real function address.
        UbCase corrupted;
        corrupted.id = "func.call/corrupted_address_" + std::to_string(v);
        corrupted.category = miri::UbCategory::FuncCall;
        corrupted.intended_strategy = FixStrategy::SemanticModification;
        corrupted.difficulty = 3;
        corrupted.buggy_source = fill(R"(fn $0() {
    print_int(7);
}
fn main() {
    unsafe {
        let addr = $0 as usize + 8;
        let handler = addr as fn();
        handler();
    }
}
)",
                                      args);
        corrupted.reference_fix = fill(R"(fn $0() {
    print_int(7);
}
fn main() {
    unsafe {
        let addr = $0 as usize;
        let handler = addr as fn();
        handler();
    }
}
)",
                                       args);
        corrupted.inputs = {{}};
        cases.push_back(std::move(corrupted));

        // Shape 2: data pointer treated as code.
        UbCase data_as_code;
        data_as_code.id = "func.call/data_as_code_" + std::to_string(v);
        data_as_code.category = miri::UbCategory::FuncCall;
        data_as_code.intended_strategy = FixStrategy::SemanticModification;
        data_as_code.difficulty = 2;
        data_as_code.buggy_source = fill(R"(fn $0() {
    print_int(9);
}
fn main() {
    let slot = 1;
    unsafe {
        let addr = &slot as *const i32 as usize;
        let handler = addr as fn();
        handler();
    }
}
)",
                                         args);
        data_as_code.reference_fix = fill(R"(fn $0() {
    print_int(9);
}
fn main() {
    let slot = 1;
    $0();
}
)",
                                          args);
        data_as_code.inputs = {{}};
        cases.push_back(std::move(data_as_code));
    }
    return cases;
}

// ---------------------------------------------------------------------------
// func.pointer
// ---------------------------------------------------------------------------

std::vector<UbCase> make_funcpointer_cases() {
    std::vector<UbCase> cases;
    const std::array<const char*, 3> kMul = {"2", "3", "5"};
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kFn[v], kMul[v]};

        // Shape 0: i64 function transmuted to an i32 signature.
        UbCase narrow;
        narrow.id = "func.pointer/narrowed_sig_" + std::to_string(v);
        narrow.category = miri::UbCategory::FuncPointer;
        narrow.intended_strategy = FixStrategy::SemanticModification;
        narrow.difficulty = 2;
        narrow.buggy_source = fill(R"(fn $0(x: i64) -> i64 {
    return x * $1;
}
fn main() {
    unsafe {
        let addr = $0 as usize;
        let f = addr as fn(i32) -> i32;
        print_int(f(10) as i64);
    }
}
)",
                                   args);
        narrow.reference_fix = fill(R"(fn $0(x: i64) -> i64 {
    return x * $1;
}
fn main() {
    unsafe {
        let addr = $0 as usize;
        let f = addr as fn(i64) -> i64;
        print_int(f(10) as i64);
    }
}
)",
                                    args);
        narrow.inputs = {{}};
        cases.push_back(std::move(narrow));

        // Shape 1: two-argument function called through a one-argument type.
        UbCase arity;
        arity.id = "func.pointer/wrong_arity_" + std::to_string(v);
        arity.category = miri::UbCategory::FuncPointer;
        arity.intended_strategy = FixStrategy::SemanticModification;
        arity.difficulty = 3;
        arity.buggy_source = fill(R"(fn $0(a: i64, b: i64) -> i64 {
    return a * $1 + b;
}
fn main() {
    unsafe {
        let addr = $0 as usize;
        let f = addr as fn(i64) -> i64;
        print_int(f(10));
    }
}
)",
                                  args);
        arity.reference_fix = fill(R"(fn $0(a: i64, b: i64) -> i64 {
    return a * $1 + b;
}
fn main() {
    unsafe {
        let addr = $0 as usize;
        let f = addr as fn(i64, i64) -> i64;
        print_int(f(10, 0));
    }
}
)",
                                   args);
        arity.inputs = {{}};
        cases.push_back(std::move(arity));

        // Shape 2: fn-pointer-to-fn-pointer signature transmute.
        UbCase transmute;
        transmute.id = "func.pointer/sig_transmute_" + std::to_string(v);
        transmute.category = miri::UbCategory::FuncPointer;
        transmute.intended_strategy = FixStrategy::SafeAlternative;
        transmute.difficulty = 2;
        transmute.buggy_source = fill(R"(fn $0(x: i64) -> i64 {
    return x + $1;
}
fn main() {
    let typed: fn(i64) -> i64 = $0;
    unsafe {
        let twisted = typed as fn(i32) -> i32;
        print_int(twisted(1) as i64);
    }
}
)",
                                      args);
        transmute.reference_fix = fill(R"(fn $0(x: i64) -> i64 {
    return x + $1;
}
fn main() {
    let typed: fn(i64) -> i64 = $0;
    print_int(typed(1));
}
)",
                                       args);
        transmute.inputs = {{}};
        cases.push_back(std::move(transmute));
    }
    return cases;
}

// ---------------------------------------------------------------------------
// tail call
// ---------------------------------------------------------------------------

std::vector<UbCase> make_tailcall_cases() {
    std::vector<UbCase> cases;
    const std::array<const char*, 3> kAdd = {"1", "10", "100"};
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kFn[v], kAdd[v]};

        // Shape 0: become through a zero-arg transmute of a one-arg fn.
        UbCase wrong_sig;
        wrong_sig.id = "tailcall/wrong_sig_" + std::to_string(v);
        wrong_sig.category = miri::UbCategory::TailCall;
        wrong_sig.intended_strategy = FixStrategy::SemanticModification;
        wrong_sig.difficulty = 3;
        wrong_sig.buggy_source = fill(R"(fn $0(x: i64) -> i64 {
    return x + $1;
}
fn dispatch(n: i64) -> i64 {
    unsafe {
        let addr = $0 as usize;
        let k = addr as fn() -> i64;
        become k();
    }
}
fn main() {
    print_int(dispatch(5));
}
)",
                                      args);
        wrong_sig.reference_fix = fill(R"(fn $0(x: i64) -> i64 {
    return x + $1;
}
fn dispatch(n: i64) -> i64 {
    return $0(n);
}
fn main() {
    print_int(dispatch(5));
}
)",
                                       args);
        wrong_sig.inputs = {{}};
        cases.push_back(std::move(wrong_sig));

        // Shape 1: become to a bogus address.
        UbCase bogus;
        bogus.id = "tailcall/bogus_target_" + std::to_string(v);
        bogus.category = miri::UbCategory::TailCall;
        bogus.intended_strategy = FixStrategy::SemanticModification;
        bogus.difficulty = 2;
        bogus.buggy_source = fill(R"(fn $0() -> i64 {
    return $1;
}
fn trampoline() -> i64 {
    unsafe {
        let k = 4096 as fn() -> i64;
        become k();
    }
}
fn main() {
    print_int(trampoline());
}
)",
                                  args);
        bogus.reference_fix = fill(R"(fn $0() -> i64 {
    return $1;
}
fn trampoline() -> i64 {
    return $0();
}
fn main() {
    print_int(trampoline());
}
)",
                                   args);
        bogus.inputs = {{}};
        cases.push_back(std::move(bogus));

        // Shape 2: caller local escapes into the tail callee.
        UbCase escape;
        escape.id = "tailcall/local_escape_" + std::to_string(v);
        escape.category = miri::UbCategory::TailCall;
        escape.intended_strategy = FixStrategy::SemanticModification;
        escape.difficulty = 3;
        escape.buggy_source = fill(R"(fn read_slot(slot: *const i64) -> i64 {
    unsafe {
        return *slot;
    }
}
fn trampoline() -> i64 {
    let local: i64 = $1;
    become read_slot(&local as *const i64);
}
fn main() {
    print_int(trampoline());
}
)",
                                   args);
        escape.reference_fix = fill(R"(fn read_slot(slot: *const i64) -> i64 {
    unsafe {
        return *slot;
    }
}
fn trampoline() -> i64 {
    let local: i64 = $1;
    return read_slot(&local as *const i64);
}
fn main() {
    print_int(trampoline());
}
)",
                                    args);
        escape.inputs = {{}};
        cases.push_back(std::move(escape));
    }
    return cases;
}

}  // namespace rustbrain::dataset
