// Semantic acceptability — the paper's "exec" metric.
//
// A repaired program is semantically acceptable when it passes MiriLite AND
// its observable output matches the developer reference fix on every input
// vector of the case's benchmark (Scope, §II-A: "this paper validates
// semantics using test benchmarks composed of developer-repaired code").
//
// Both runs go through verify::Oracle. The reference fix in particular is
// interpreted once per (case, process) and memoized: judging N candidates
// against one case costs N candidate runs + 1 reference run, not 2N runs
// (asserted with a counting oracle in tests/verify_oracle_test.cpp).
#pragma once

#include <string>

#include "dataset/case.hpp"
#include "lang/ast.hpp"

namespace rustbrain::verify {
class Oracle;
}  // namespace rustbrain::verify

namespace rustbrain::dataset {

struct SemanticVerdict {
    bool miri_pass = false;     // accuracy: passes MiriLite
    bool trace_match = false;   // outputs equal the reference on all inputs
    std::string detail;

    [[nodiscard]] bool acceptable() const { return miri_pass && trace_match; }
};

/// Judge a candidate repair (as source text) against the case's reference,
/// verifying both through `oracle`.
SemanticVerdict judge_semantics(const std::string& candidate_source,
                                const UbCase& ub_case,
                                const verify::Oracle& oracle);

/// Same, for an already-parsed program.
SemanticVerdict judge_semantics(const lang::Program& candidate,
                                const UbCase& ub_case,
                                const verify::Oracle& oracle);

/// Convenience overloads bound to verify::Oracle::shared_default().
SemanticVerdict judge_semantics(const std::string& candidate_source,
                                const UbCase& ub_case);
SemanticVerdict judge_semantics(const lang::Program& candidate,
                                const UbCase& ub_case);

}  // namespace rustbrain::dataset
