// Corpus builders: alloc, dangling pointer, uninit, provenance.
#include <array>

#include "dataset/builders.hpp"

namespace rustbrain::dataset {

namespace detail {
std::string fill(std::string templ, const std::vector<std::string>& args) {
    std::string out;
    out.reserve(templ.size());
    for (std::size_t i = 0; i < templ.size(); ++i) {
        if (templ[i] == '$' && i + 1 < templ.size() && templ[i + 1] >= '0' &&
            templ[i + 1] <= '9') {
            const std::size_t index = static_cast<std::size_t>(templ[i + 1] - '0');
            if (index < args.size()) {
                out += args[index];
                ++i;
                continue;
            }
        }
        out += templ[i];
    }
    return out;
}
}  // namespace detail

using detail::fill;

namespace {
// Identifier pools indexed by variant.
const std::array<const char*, 3> kPtr = {"p", "buf", "mem"};
const std::array<const char*, 3> kVal = {"x", "value", "data"};
const std::array<const char*, 3> kSize = {"8", "16", "24"};
const std::array<const char*, 3> kConst = {"41", "123", "977"};
}  // namespace

// ---------------------------------------------------------------------------
// alloc
// ---------------------------------------------------------------------------

std::vector<UbCase> make_alloc_cases() {
    std::vector<UbCase> cases;
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kPtr[v], kSize[v], kConst[v]};
        // Shape 0: double free.
        UbCase double_free;
        double_free.id = "alloc/double_free_" + std::to_string(v);
        double_free.category = miri::UbCategory::Alloc;
        double_free.intended_strategy = FixStrategy::SemanticModification;
        double_free.difficulty = 1;
        double_free.buggy_source = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = $2;
        print_int(*slot);
        dealloc($0, $1, 8);
        dealloc($0, $1, 8);
    }
}
)",
                                        args);
        double_free.reference_fix = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = $2;
        print_int(*slot);
        dealloc($0, $1, 8);
    }
}
)",
                                         args);
        double_free.inputs = {{}};
        cases.push_back(std::move(double_free));

        // Shape 1: dealloc with the wrong layout.
        UbCase wrong_layout;
        wrong_layout.id = "alloc/wrong_layout_" + std::to_string(v);
        wrong_layout.category = miri::UbCategory::Alloc;
        wrong_layout.intended_strategy = FixStrategy::SemanticModification;
        wrong_layout.difficulty = 1;
        wrong_layout.buggy_source = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = $2;
        print_int(*slot);
        dealloc($0, 4, 8);
    }
}
)",
                                         args);
        wrong_layout.reference_fix = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = $2;
        print_int(*slot);
        dealloc($0, $1, 8);
    }
}
)",
                                          args);
        wrong_layout.inputs = {{}};
        cases.push_back(std::move(wrong_layout));

        // Shape 2: leak (missing dealloc).
        UbCase leak;
        leak.id = "alloc/leak_" + std::to_string(v);
        leak.category = miri::UbCategory::Alloc;
        leak.intended_strategy = FixStrategy::SemanticModification;
        leak.difficulty = 2;
        leak.buggy_source = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = input(0) + $2;
        print_int(*slot);
    }
}
)",
                                 args);
        leak.reference_fix = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = input(0) + $2;
        print_int(*slot);
        dealloc($0, $1, 8);
    }
}
)",
                                  args);
        leak.inputs = {{1}, {50}};
        cases.push_back(std::move(leak));
    }
    return cases;
}

// ---------------------------------------------------------------------------
// dangling pointer
// ---------------------------------------------------------------------------

std::vector<UbCase> make_dangling_cases() {
    std::vector<UbCase> cases;
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kPtr[v], kSize[v], kConst[v], kVal[v]};

        // Shape 0: heap use-after-free — dealloc before the last read.
        UbCase uaf;
        uaf.id = "danglingpointer/use_after_free_" + std::to_string(v);
        uaf.category = miri::UbCategory::DanglingPointer;
        uaf.intended_strategy = FixStrategy::SemanticModification;
        uaf.difficulty = 1;
        uaf.buggy_source = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = $2;
        dealloc($0, $1, 8);
        print_int(*slot);
    }
}
)",
                                args);
        uaf.reference_fix = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = $2;
        print_int(*slot);
        dealloc($0, $1, 8);
    }
}
)",
                                 args);
        uaf.inputs = {{}};
        cases.push_back(std::move(uaf));

        // Shape 1: pointer to a local escaping its scope.
        UbCase escape;
        escape.id = "danglingpointer/scope_escape_" + std::to_string(v);
        escape.category = miri::UbCategory::DanglingPointer;
        escape.intended_strategy = FixStrategy::SemanticModification;
        escape.difficulty = 2;
        escape.buggy_source = fill(R"(fn main() {
    let mut $0 = 0 as *const i32;
    {
        let $3 = $2;
        $0 = &$3 as *const i32;
    }
    unsafe {
        print_int(*$0 as i64);
    }
}
)",
                                   args);
        escape.reference_fix = fill(R"(fn main() {
    let $3 = $2;
    let mut $0 = 0 as *const i32;
    {
        $0 = &$3 as *const i32;
    }
    unsafe {
        print_int(*$0 as i64);
    }
}
)",
                                    args);
        escape.inputs = {{}};
        cases.push_back(std::move(escape));

        // Shape 2: conditional null dereference (null unless input selects).
        UbCase null_deref;
        null_deref.id = "danglingpointer/null_deref_" + std::to_string(v);
        null_deref.category = miri::UbCategory::DanglingPointer;
        null_deref.intended_strategy = FixStrategy::AssertionGuard;
        null_deref.difficulty = 2;
        null_deref.buggy_source = fill(R"(fn main() {
    let $3 = $2;
    let mut $0 = 0 as *const i32;
    if input(0) > 0 {
        $0 = &$3 as *const i32;
    }
    unsafe {
        print_int(*$0 as i64);
    }
}
)",
                                       args);
        null_deref.reference_fix = fill(R"(fn main() {
    let $3 = $2;
    let mut $0 = 0 as *const i32;
    if input(0) > 0 {
        $0 = &$3 as *const i32;
    }
    if $0 as usize != 0 {
        unsafe {
            print_int(*$0 as i64);
        }
    } else {
        print_int(0 - 1);
    }
}
)",
                                        args);
        null_deref.inputs = {{0}, {1}};
        cases.push_back(std::move(null_deref));
    }
    return cases;
}

// ---------------------------------------------------------------------------
// uninit
// ---------------------------------------------------------------------------

std::vector<UbCase> make_uninit_cases() {
    std::vector<UbCase> cases;
    const std::array<const char*, 3> counts = {"4", "6", "8"};
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kPtr[v], kSize[v], kConst[v],
                                               counts[v]};

        // Shape 0: read of freshly allocated memory.
        UbCase fresh;
        fresh.id = "uninit/fresh_read_" + std::to_string(v);
        fresh.category = miri::UbCategory::Uninit;
        fresh.intended_strategy = FixStrategy::SemanticModification;
        fresh.difficulty = 1;
        fresh.buggy_source = fill(R"(fn main() {
    unsafe {
        let $0 = alloc(8, 8);
        let slot = $0 as *mut i64;
        print_int(*slot + $2);
        dealloc($0, 8, 8);
    }
}
)",
                                  args);
        fresh.reference_fix = fill(R"(fn main() {
    unsafe {
        let $0 = alloc(8, 8);
        let slot = $0 as *mut i64;
        *slot = 0;
        print_int(*slot + $2);
        dealloc($0, 8, 8);
    }
}
)",
                                   args);
        fresh.inputs = {{}};
        cases.push_back(std::move(fresh));

        // Shape 1: partial initialization — loop bound is off by one.
        UbCase partial;
        partial.id = "uninit/partial_init_" + std::to_string(v);
        partial.category = miri::UbCategory::Uninit;
        partial.intended_strategy = FixStrategy::SemanticModification;
        partial.difficulty = 2;
        partial.buggy_source = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($3 * 8, 8);
        let base = $0 as *mut i64;
        let mut i: i64 = 0;
        while i < $3 - 1 {
            *offset(base, i as isize) = i * 2;
            i = i + 1;
        }
        let mut total: i64 = 0;
        i = 0;
        while i < $3 {
            total = total + *offset(base, i as isize);
            i = i + 1;
        }
        print_int(total);
        dealloc($0, $3 * 8, 8);
    }
}
)",
                                    args);
        partial.reference_fix = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($3 * 8, 8);
        let base = $0 as *mut i64;
        let mut i: i64 = 0;
        while i < $3 {
            *offset(base, i as isize) = i * 2;
            i = i + 1;
        }
        let mut total: i64 = 0;
        i = 0;
        while i < $3 {
            total = total + *offset(base, i as isize);
            i = i + 1;
        }
        print_int(total);
        dealloc($0, $3 * 8, 8);
    }
}
)",
                                     args);
        partial.inputs = {{}};
        cases.push_back(std::move(partial));

        // Shape 2: conditional initialization with a missing else branch.
        UbCase conditional;
        conditional.id = "uninit/conditional_init_" + std::to_string(v);
        conditional.category = miri::UbCategory::Uninit;
        conditional.intended_strategy = FixStrategy::SemanticModification;
        conditional.difficulty = 2;
        conditional.buggy_source = fill(R"(fn main() {
    unsafe {
        let $0 = alloc(8, 8);
        let slot = $0 as *mut i64;
        if input(0) > 0 {
            *slot = input(0) * $2;
        }
        print_int(*slot);
        dealloc($0, 8, 8);
    }
}
)",
                                        args);
        conditional.reference_fix = fill(R"(fn main() {
    unsafe {
        let $0 = alloc(8, 8);
        let slot = $0 as *mut i64;
        if input(0) > 0 {
            *slot = input(0) * $2;
        } else {
            *slot = 0;
        }
        print_int(*slot);
        dealloc($0, 8, 8);
    }
}
)",
                                         args);
        conditional.inputs = {{0}, {3}};
        cases.push_back(std::move(conditional));
    }
    return cases;
}

// ---------------------------------------------------------------------------
// provenance
// ---------------------------------------------------------------------------

std::vector<UbCase> make_provenance_cases() {
    std::vector<UbCase> cases;
    const std::array<const char*, 3> lens = {"4", "5", "6"};
    for (int v = 0; v < kVariantsPerShape; ++v) {
        const std::vector<std::string> args = {kPtr[v], kVal[v], kConst[v], lens[v]};

        // Shape 0: int-to-pointer round trip loses provenance.
        UbCase roundtrip;
        roundtrip.id = "provenance/int_roundtrip_" + std::to_string(v);
        roundtrip.category = miri::UbCategory::Provenance;
        roundtrip.intended_strategy = FixStrategy::SafeAlternative;
        roundtrip.difficulty = 2;
        roundtrip.buggy_source = fill(R"(fn main() {
    let $1 = $2;
    let addr = &$1 as *const i32 as usize;
    let $0 = addr as *const i32;
    unsafe {
        print_int(*$0 as i64);
    }
}
)",
                                      args);
        roundtrip.reference_fix = fill(R"(fn main() {
    let $1 = $2;
    let $0 = &$1 as *const i32;
    unsafe {
        print_int(*$0 as i64);
    }
}
)",
                                       args);
        roundtrip.inputs = {{}};
        cases.push_back(std::move(roundtrip));

        // Shape 1: off-by-one pointer arithmetic walks past the end.
        UbCase overrun;
        overrun.id = "provenance/loop_overrun_" + std::to_string(v);
        overrun.category = miri::UbCategory::Provenance;
        overrun.intended_strategy = FixStrategy::SemanticModification;
        overrun.difficulty = 1;
        overrun.buggy_source = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($3 * 8, 8);
        let base = $0 as *mut i64;
        let mut i: i64 = 0;
        while i <= $3 {
            *offset(base, i as isize) = i;
            i = i + 1;
        }
        print_int(*offset(base, 1));
        dealloc($0, $3 * 8, 8);
    }
}
)",
                                    args);
        overrun.reference_fix = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($3 * 8, 8);
        let base = $0 as *mut i64;
        let mut i: i64 = 0;
        while i < $3 {
            *offset(base, i as isize) = i;
            i = i + 1;
        }
        print_int(*offset(base, 1));
        dealloc($0, $3 * 8, 8);
    }
}
)",
                                     args);
        overrun.inputs = {{}};
        cases.push_back(std::move(overrun));

        // Shape 2: input-controlled offset can exceed the allocation.
        UbCase wild_offset;
        wild_offset.id = "provenance/wild_offset_" + std::to_string(v);
        wild_offset.category = miri::UbCategory::Provenance;
        wild_offset.intended_strategy = FixStrategy::AssertionGuard;
        wild_offset.difficulty = 2;
        wild_offset.buggy_source = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($3 * 8, 8);
        let base = $0 as *mut i64;
        let mut i: i64 = 0;
        while i < $3 {
            *offset(base, i as isize) = i * 10;
            i = i + 1;
        }
        let pick = input(0);
        print_int(*offset(base, pick as isize));
        dealloc($0, $3 * 8, 8);
    }
}
)",
                                        args);
        wild_offset.reference_fix = fill(R"(fn main() {
    unsafe {
        let $0 = alloc($3 * 8, 8);
        let base = $0 as *mut i64;
        let mut i: i64 = 0;
        while i < $3 {
            *offset(base, i as isize) = i * 10;
            i = i + 1;
        }
        let pick = input(0);
        if pick >= 0 && pick < $3 {
            print_int(*offset(base, pick as isize));
        } else {
            print_int(0 - 1);
        }
        dealloc($0, $3 * 8, 8);
    }
}
)",
                                         args);
        wild_offset.inputs = {{2}, {100}};
        cases.push_back(std::move(wild_offset));
    }
    return cases;
}

}  // namespace rustbrain::dataset
