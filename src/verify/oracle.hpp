// verify::Oracle — the single entry point for "verify this source against
// these inputs", with compile-once and report memoization.
//
// Every verification in the stack — fast thinking's F1 detection, slow
// thinking's per-step checks, the semantic judge's candidate/reference
// runs, KB seeding, corpus validation, and Corpus Forge's rejection
// sampler — used to funnel through MiriLite::test_source, which re-parses
// and re-typechecks the candidate from scratch on every call. The Oracle
// splits that work into two cached stages:
//
//   1. compile-once: a sharded program cache keyed by the FNV-1a hash of
//      the source text holds parsed + typechecked + slot-lowered programs
//      (see miri/lower.hpp), so each distinct source pays the front end
//      exactly once per process;
//   2. report memoization: a sharded report cache keyed by (program
//      fingerprint, input-set fingerprint, interpreter limits) returns the
//      MiriReport of a previously-interpreted combination verbatim.
//
// Bit-identity guarantee: MiriReports are a pure function of (source,
// inputs, limits), so a cached answer is byte-identical to a live one —
// sweeps and forge runs with the cache on and off produce identical
// CaseResults and corpora (asserted in tests/verify_oracle_test.cpp and
// the corpus-forge-smoke CI job). The cache is therefore a pure
// performance knob, exactly like llm::PromptCache, whose design this
// mirrors (16-way sharding, atomic hit/miss counters, process-wide shared
// store).
//
// Escape hatch: RUSTBRAIN_VERIFY_CACHE=off (or 0/false) disables both
// caches for Oracles that don't pin the behavior explicitly — useful for
// flushing out cache-coherence bugs (CI runs the whole suite once in this
// mode).
//
// Screening tier: before interpreting, the Oracle runs the static
// pre-screener (screen/screen.hpp). A ProvenSafe verdict carries the exact
// MiriReport the interpreter would produce (outputs + step count,
// synthesized by the screener's mirror semantics), so interpretation is
// skipped entirely; LikelyUB and Unknown verdicts are advisory — MiriLite
// still runs and stays the authority. Bit-identity is preserved either
// way, asserted screen-on vs screen-off across every registry engine in
// tests/screen_soundness_test.cpp and the screen-smoke CI job. Escape
// hatch: RUSTBRAIN_SCREEN=off (or 0/false), same contract as the cache
// knob.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/ast.hpp"
#include "miri/interp.hpp"
#include "miri/lower.hpp"
#include "miri/mirilite.hpp"
#include "screen/screen.hpp"
#include "support/lru.hpp"
#include "vm/bytecode.hpp"

namespace rustbrain::verify {

/// Which interpreter executes uncached runs. All three tiers are
/// observationally identical — byte-equal findings, outputs, and step
/// counts (asserted corpus-wide in tests/miri_vm_test.cpp and the
/// differential stress tests) — so the tier is a pure performance knob,
/// exactly like the caches:
///   Tree — PR 1's tree walk with name scans (the reference semantics);
///   Slot — PR 4's slot-lowered tree walk (the long-time default);
///   Vm   — PR 8's flat bytecode VM (dense instruction arrays over an
///          explicit value stack; see src/vm/).
enum class InterpTier { Tree, Slot, Vm };

/// "tree" / "slot" / "vm".
[[nodiscard]] const char* to_string(InterpTier tier);
/// Parses the names above; nullopt for anything else.
[[nodiscard]] std::optional<InterpTier> parse_interp_tier(
    const std::string& name);
/// "tree, slot, vm" — for error messages listing the valid set.
[[nodiscard]] std::string interp_tier_names();

/// A source text after the front end: parsed, typechecked and slot-lowered
/// (when ok()), or the verbatim parse/typecheck error MiriLite would have
/// reported. Immutable once built — the program/lowering pair is shared by
/// every interpretation of this source.
struct CompiledProgram {
    enum class FrontEnd { Ok, ParseError, TypeError };

    std::uint64_t fingerprint = 0;  // FNV-1a of the source text
    std::uint64_t check = 0;        // independent second hash (collision guard)
    std::string source;             // the exact text compiled (collision guard)
    FrontEnd front_end = FrontEnd::Ok;
    std::string error;              // set unless front_end == Ok
    lang::Program program;          // valid only when ok()
    miri::LoweredProgram lowering;  // valid only when ok()

    [[nodiscard]] bool ok() const { return front_end == FrontEnd::Ok; }

    /// Bytecode for the vm tier, built lazily (thread-safe, exactly once)
    /// on first use — so tree/slot oracles never pay for it, and the
    /// compile-once program cache amortizes the bytecode compile across
    /// every later vm interpretation of this source. Only valid when ok().
    [[nodiscard]] const vm::VmProgram& bytecode() const;

    /// vm::optimize(bytecode()) — the superinstruction/register-promotion
    /// tier — with the same lazy, exactly-once contract stacked on top:
    /// plain-vm oracles never pay for the pass, and the optimized program
    /// is derived at most once per compiled source. The result aliases
    /// bytecode()'s interned storage, which this object owns alongside it.
    [[nodiscard]] const vm::VmProgram& optimized_bytecode() const;

  private:
    mutable std::once_flag vm_once_;
    mutable vm::VmProgram vm_code_;
    mutable std::once_flag opt_once_;
    mutable vm::VmProgram opt_code_;
};

struct VerifyCacheStats {
    std::uint64_t program_hits = 0;
    std::uint64_t program_misses = 0;
    std::uint64_t report_hits = 0;
    std::uint64_t report_misses = 0;
    std::size_t programs = 0;  // distinct compiled sources held
    std::size_t reports = 0;   // distinct memoized reports held
    /// Legacy flush-on-cap events (EvictionPolicy::FlushOnCap only): how
    /// many times a full shard was dropped wholesale; bit-identity makes
    /// every flush safe.
    std::uint64_t program_flushes = 0;
    std::uint64_t report_flushes = 0;
    /// LRU evictions (default policy): single least-recently-used entries
    /// dropped at capacity, plus the summed idle age (in shard accesses)
    /// of the victims — hot entries survive pressure under LRU.
    std::uint64_t program_evictions = 0;
    std::uint64_t report_evictions = 0;
    std::uint64_t program_evicted_idle_ticks = 0;
    std::uint64_t report_evicted_idle_ticks = 0;

    [[nodiscard]] double report_hit_rate() const {
        const std::uint64_t total = report_hits + report_misses;
        return total == 0 ? 0.0 : static_cast<double>(report_hits) / total;
    }
};

/// A screening verdict remembered alongside a memoized report, so a report
/// cache hit still surfaces the verdict to thinking policies. `screened`
/// is false for entries inserted by a screen-off Oracle.
struct ScreenVerdictRecord {
    bool screened = false;
    screen::ScreenVerdict verdict;
};

/// Identity of a memoized report, borrowed from the caller for lookups so
/// the hot (hit) path never copies the input vectors. The 64-bit `hash`
/// routes and indexes; the remaining fields are the full key material,
/// re-verified on every hit. `fingerprint` + `check` are two independent
/// hashes of the source text, so even after a program-shard flush changes
/// which source is canonical for a fingerprint, a collision cannot be
/// served another source's report (the bit-identity contract beats a few
/// compares).
struct ReportKeyView {
    std::uint64_t hash = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t check = 0;
    miri::InterpLimits limits;
    const std::vector<std::vector<std::int64_t>>* input_sets = nullptr;
};

/// The sharded store behind Oracle. Thread-safe; shared across BatchRunner
/// workers, repeated sweeps, and every subsystem in the process (the
/// process_wide() instance) or scoped per experiment (tests).
///
/// Collision safety: entries keep their full key material (the source text
/// for programs, ReportKey for reports) and verify it on every hit; a
/// 64-bit hash collision is answered by recomputing, never by the wrong
/// entry. Growth is bounded: each shard is a support::LruMap — under the
/// default Lru policy a full shard evicts its least-recently-used entry
/// (hits promote, so hot programs and reports survive pressure), while
/// EvictionPolicy::FlushOnCap keeps the legacy drop-the-whole-shard
/// behavior. Bit-identity makes dropping entries always safe — only speed
/// is lost.
class VerifyCache {
  public:
    /// Default: true LRU eviction at ~64k programs / ~128k reports total.
    /// The capacities are exposed so tests can exercise eviction pressure
    /// cheaply.
    explicit VerifyCache(
        support::EvictionPolicy policy = support::EvictionPolicy::Lru,
        std::size_t programs_per_shard = kDefaultProgramsPerShard,
        std::size_t reports_per_shard = kDefaultReportsPerShard);

    /// Returns the canonical compiled program for `key` if it was built
    /// from exactly `source`, counting a hit or a miss.
    std::shared_ptr<const CompiledProgram> lookup_program(
        std::uint64_t key, const std::string& source);
    /// Inserts `compiled` unless an entry exists; returns the canonical
    /// entry (ours, or an equal racing thread's), or null when the slot is
    /// owned by a different source (hash collision) — the caller then uses
    /// its fresh compile uncached.
    std::shared_ptr<const CompiledProgram> insert_program(
        std::uint64_t key, std::shared_ptr<const CompiledProgram> compiled);

    /// `verdict` (optional) receives the screening record stored with the
    /// entry on a hit.
    std::optional<miri::MiriReport> lookup_report(
        const ReportKeyView& key, ScreenVerdictRecord* verdict = nullptr);
    /// Copies the key material (including the input vectors) into the entry.
    void insert_report(const ReportKeyView& key, const miri::MiriReport& report,
                       const ScreenVerdictRecord* verdict = nullptr);

    [[nodiscard]] VerifyCacheStats stats() const;

    /// The process-wide store every default-constructed Oracle shares.
    static const std::shared_ptr<VerifyCache>& process_wide();

  private:
    static constexpr std::size_t kShards = 16;
    /// Per-shard caps: ~64k programs / ~128k reports total.
    static constexpr std::size_t kDefaultProgramsPerShard = 4096;
    static constexpr std::size_t kDefaultReportsPerShard = 8192;
    struct ReportEntry {
        std::uint64_t fingerprint = 0;
        std::uint64_t check = 0;
        miri::InterpLimits limits;
        std::vector<std::vector<std::int64_t>> input_sets;
        miri::MiriReport report;
        ScreenVerdictRecord verdict;

        [[nodiscard]] bool matches(const ReportKeyView& key) const {
            return fingerprint == key.fingerprint && check == key.check &&
                   limits.max_steps == key.limits.max_steps &&
                   limits.max_call_depth == key.limits.max_call_depth &&
                   input_sets == *key.input_sets;
        }
    };
    struct Shard {
        mutable std::mutex mutex;
        support::LruMap<std::uint64_t, std::shared_ptr<const CompiledProgram>>
            programs;
        support::LruMap<std::uint64_t, ReportEntry> reports;
    };
    Shard& shard_for(std::uint64_t key) { return shards_[key % kShards]; }

    std::array<Shard, kShards> shards_;
    std::atomic<std::uint64_t> program_hits_{0};
    std::atomic<std::uint64_t> program_misses_{0};
    std::atomic<std::uint64_t> report_hits_{0};
    std::atomic<std::uint64_t> report_misses_{0};
};

struct OracleOptions {
    miri::InterpLimits limits;
    /// Store to memoize into; null => VerifyCache::process_wide().
    std::shared_ptr<VerifyCache> cache;
    /// Explicit cache on/off; unset => honour RUSTBRAIN_VERIFY_CACHE
    /// (anything but "off"/"0"/"false" means on).
    std::optional<bool> caching;
    /// Explicit screening on/off; unset => honour RUSTBRAIN_SCREEN (same
    /// convention as the cache knob).
    std::optional<bool> screening;
    /// Screener budget (per-candidate abstract-op cap).
    screen::ScreenOptions screen;
    /// Which interpreter runs uncached work; unset => honour
    /// RUSTBRAIN_INTERP=tree|slot|vm (unset or unrecognized values fall
    /// back to the slot default). Pure performance knob: reports are
    /// byte-identical across tiers.
    std::optional<InterpTier> interp;
    /// Run the vm tier on vm::optimize output (superinstructions +
    /// register promotion)? Unset => honour RUSTBRAIN_VM_OPT (anything
    /// but "off"/"0"/"false" means on). Ignored by the tree/slot tiers;
    /// byte-identical either way — a pure performance knob.
    std::optional<bool> vm_opt;
};

/// Counters for the Oracle's screening tier (process- or oracle-lifetime,
/// like VerifyCacheStats).
struct ScreenStats {
    std::uint64_t screens = 0;      // screenings actually run
    std::uint64_t proven_safe = 0;  // => interpretation skipped
    std::uint64_t likely_ub = 0;    // advisory: category statically pinned
    std::uint64_t unknown = 0;      // screener degraded; MiriLite decided
    std::uint64_t synthesized = 0;  // reports served from the screener
    std::uint64_t ops = 0;          // total abstract ops spent screening
};

/// Per-call cache observation, for callers that surface hit/miss telemetry
/// (AgentContext stamps it into Verify trace events).
struct VerifyOutcome {
    bool program_cached = false;
    bool report_cached = false;
    /// Screening verdict for this call — live from the screener, or
    /// replayed from the report cache entry (screened == false when the
    /// verdict never existed: screening off, or a front-end error).
    bool screened = false;
    screen::ScreenVerdict screen_verdict;
    /// True when the report was synthesized from a ProvenSafe verdict and
    /// interpretation was skipped (never true on cache-hit replays).
    bool screen_synthesized = false;
};

class Oracle {
  public:
    explicit Oracle(OracleOptions options = {});
    virtual ~Oracle() = default;
    Oracle(const Oracle&) = delete;
    Oracle& operator=(const Oracle&) = delete;

    /// Parse + typecheck + interpret `source` once per input vector,
    /// byte-identical to MiriLite::test_source over the same limits.
    /// Thread-safe; `outcome` (optional) reports where the answer came from.
    [[nodiscard]] miri::MiriReport test_source(
        const std::string& source,
        const std::vector<std::vector<std::int64_t>>& input_sets,
        VerifyOutcome* outcome = nullptr) const;

    /// Front-end half only: the cached parsed + typechecked + lowered
    /// program for `source` (subsystems that also need the AST — KB
    /// seeding, the forge — share the compile with later verifications).
    [[nodiscard]] std::shared_ptr<const CompiledProgram> compile(
        const std::string& source, VerifyOutcome* outcome = nullptr) const;

    [[nodiscard]] bool caching_enabled() const { return caching_; }
    [[nodiscard]] bool screening_enabled() const { return screening_; }
    [[nodiscard]] InterpTier interp_tier() const { return interp_; }
    [[nodiscard]] bool vm_opt_enabled() const { return vm_opt_; }
    [[nodiscard]] const miri::InterpLimits& limits() const { return limits_; }
    [[nodiscard]] const std::shared_ptr<VerifyCache>& cache() const {
        return cache_;
    }
    [[nodiscard]] VerifyCacheStats stats() const { return cache_->stats(); }
    [[nodiscard]] ScreenStats screen_stats() const;
    /// One-line human-readable stats (the summary examples print).
    [[nodiscard]] std::string stats_summary() const;
    /// One-line screening stats, same audience as stats_summary().
    [[nodiscard]] std::string screen_summary() const;

    /// The process-wide Oracle (default limits, process-wide cache) used by
    /// every call site that isn't wired to an explicit one.
    static const Oracle& shared_default();

  protected:
    /// The uncached unit of work: run the slot-lowered interpreter once per
    /// input vector. Virtual so tests can count real interpretations
    /// through a counting double.
    [[nodiscard]] virtual miri::MiriReport interpret(
        const CompiledProgram& compiled,
        const std::vector<std::vector<std::int64_t>>& input_sets) const;

  private:
    [[nodiscard]] std::shared_ptr<const CompiledProgram> compile_uncached(
        const std::string& source, std::uint64_t fingerprint) const;
    /// compile() plus whether the returned program is the cache-canonical
    /// entry for its fingerprint. Only canonical programs may key the
    /// report cache — a hash-colliding source compiles fresh each time and
    /// skips report memoization entirely, staying correct (just uncached).
    [[nodiscard]] std::shared_ptr<const CompiledProgram> compile_guarded(
        const std::string& source, VerifyOutcome* outcome,
        bool* canonical) const;
    /// The screening tier: run the pre-screener (when enabled), serve a
    /// ProvenSafe synthesis directly, fall through to interpret() otherwise.
    /// `record` (optional) receives the verdict for report-cache storage.
    [[nodiscard]] miri::MiriReport screen_or_interpret(
        const CompiledProgram& compiled,
        const std::vector<std::vector<std::int64_t>>& input_sets,
        VerifyOutcome* outcome, ScreenVerdictRecord* record) const;

    miri::InterpLimits limits_;
    std::shared_ptr<VerifyCache> cache_;
    bool caching_ = true;
    bool screening_ = true;
    InterpTier interp_ = InterpTier::Slot;
    bool vm_opt_ = true;
    screen::ScreenOptions screen_options_;
    mutable std::atomic<std::uint64_t> screens_{0};
    mutable std::atomic<std::uint64_t> screen_proven_{0};
    mutable std::atomic<std::uint64_t> screen_likely_{0};
    mutable std::atomic<std::uint64_t> screen_unknown_{0};
    mutable std::atomic<std::uint64_t> screen_synthesized_{0};
    mutable std::atomic<std::uint64_t> screen_ops_{0};
};

/// `oracle`, or the process-wide default when null — the fallback every
/// consumer of an optional oracle pointer shares.
[[nodiscard]] inline const Oracle& resolve(const Oracle* oracle) {
    return oracle != nullptr ? *oracle : Oracle::shared_default();
}

}  // namespace rustbrain::verify
