#include "verify/oracle.hpp"

#include <cstdlib>
#include <set>
#include <utility>

#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "support/hashing.hpp"
#include "vm/peephole.hpp"
#include "vm/vm.hpp"

namespace rustbrain::verify {

// ---------------------------------------------------------------------------
// InterpTier
// ---------------------------------------------------------------------------

const char* to_string(InterpTier tier) {
    switch (tier) {
        case InterpTier::Tree: return "tree";
        case InterpTier::Slot: return "slot";
        case InterpTier::Vm: return "vm";
    }
    return "slot";
}

std::optional<InterpTier> parse_interp_tier(const std::string& name) {
    if (name == "tree") return InterpTier::Tree;
    if (name == "slot") return InterpTier::Slot;
    if (name == "vm") return InterpTier::Vm;
    return std::nullopt;
}

std::string interp_tier_names() { return "tree, slot, vm"; }

const vm::VmProgram& CompiledProgram::bytecode() const {
    std::call_once(vm_once_,
                   [this] { vm_code_ = vm::compile(program, lowering); });
    return vm_code_;
}

const vm::VmProgram& CompiledProgram::optimized_bytecode() const {
    std::call_once(opt_once_,
                   [this] { opt_code_ = vm::optimize(bytecode()); });
    return opt_code_;
}

// ---------------------------------------------------------------------------
// VerifyCache
// ---------------------------------------------------------------------------

VerifyCache::VerifyCache(support::EvictionPolicy policy,
                         std::size_t programs_per_shard,
                         std::size_t reports_per_shard) {
    for (Shard& shard : shards_) {
        shard.programs.configure(policy, programs_per_shard);
        shard.reports.configure(policy, reports_per_shard);
    }
}

std::shared_ptr<const CompiledProgram> VerifyCache::lookup_program(
    std::uint64_t key, const std::string& source) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    // peek + find: a fingerprint collision (source mismatch) is a miss
    // and must not promote the colliding owner's entry to MRU.
    const auto* entry = shard.programs.peek(key);
    if (entry == nullptr || (*entry)->source != source) {
        program_misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    program_hits_.fetch_add(1, std::memory_order_relaxed);
    return *shard.programs.find(key);
}

std::shared_ptr<const CompiledProgram> VerifyCache::insert_program(
    std::uint64_t key, std::shared_ptr<const CompiledProgram> compiled) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto* entry = shard.programs.peek(key);
    if (entry == nullptr) {
        shard.programs.insert(key, compiled);
        return compiled;
    }
    if ((*entry)->source == compiled->source) {
        // A racing thread's entry is just as canonical; promote it — this
        // was a genuine access to that program.
        return *shard.programs.find(key);
    }
    // Hash collision: the slot belongs to a different source.
    return nullptr;
}

std::optional<miri::MiriReport> VerifyCache::lookup_report(
    const ReportKeyView& key, ScreenVerdictRecord* verdict) {
    Shard& shard = shard_for(key.hash);
    std::lock_guard<std::mutex> lock(shard.mutex);
    // peek + find: a hash collision (key mismatch) is a miss and must not
    // promote the colliding owner's entry to MRU.
    const ReportEntry* entry = shard.reports.peek(key.hash);
    if (entry == nullptr || !entry->matches(key)) {
        report_misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    report_hits_.fetch_add(1, std::memory_order_relaxed);
    shard.reports.find(key.hash);  // promote the validated hit
    if (verdict != nullptr) *verdict = entry->verdict;
    return entry->report;
}

void VerifyCache::insert_report(const ReportKeyView& key,
                                const miri::MiriReport& report,
                                const ScreenVerdictRecord* verdict) {
    Shard& shard = shard_for(key.hash);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.reports.peek(key.hash) != nullptr) {
        return;  // first entry wins; a colliding key simply stays uncached
    }
    ReportEntry entry;
    entry.fingerprint = key.fingerprint;
    entry.check = key.check;
    entry.limits = key.limits;
    entry.input_sets = *key.input_sets;
    entry.report = report;
    if (verdict != nullptr) entry.verdict = *verdict;
    shard.reports.insert(key.hash, std::move(entry));
}

VerifyCacheStats VerifyCache::stats() const {
    VerifyCacheStats stats;
    stats.program_hits = program_hits_.load(std::memory_order_relaxed);
    stats.program_misses = program_misses_.load(std::memory_order_relaxed);
    stats.report_hits = report_hits_.load(std::memory_order_relaxed);
    stats.report_misses = report_misses_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        stats.programs += shard.programs.size();
        stats.reports += shard.reports.size();
        const support::LruStats& programs = shard.programs.stats();
        const support::LruStats& reports = shard.reports.stats();
        stats.program_flushes += programs.flushes;
        stats.report_flushes += reports.flushes;
        stats.program_evictions += programs.evictions;
        stats.report_evictions += reports.evictions;
        stats.program_evicted_idle_ticks += programs.evicted_idle_ticks;
        stats.report_evicted_idle_ticks += reports.evicted_idle_ticks;
    }
    return stats;
}

const std::shared_ptr<VerifyCache>& VerifyCache::process_wide() {
    static const std::shared_ptr<VerifyCache> store =
        std::make_shared<VerifyCache>();
    return store;
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

namespace {

bool cache_enabled_from_env() {
    const char* value = std::getenv("RUSTBRAIN_VERIFY_CACHE");
    if (value == nullptr) return true;
    const std::string text = value;
    return !(text == "off" || text == "0" || text == "false");
}

bool screen_enabled_from_env() {
    const char* value = std::getenv("RUSTBRAIN_SCREEN");
    if (value == nullptr) return true;
    const std::string text = value;
    return !(text == "off" || text == "0" || text == "false");
}

InterpTier interp_from_env() {
    const char* value = std::getenv("RUSTBRAIN_INTERP");
    if (value == nullptr) return InterpTier::Slot;
    return parse_interp_tier(value).value_or(InterpTier::Slot);
}

bool vm_opt_from_env() {
    const char* value = std::getenv("RUSTBRAIN_VM_OPT");
    if (value == nullptr) return true;
    const std::string text = value;
    return !(text == "off" || text == "0" || text == "false");
}

/// Seed for the independent second source hash (an arbitrary odd constant
/// distinct from the FNV offset basis).
constexpr std::uint64_t kCheckSeed = 0x51ED270B8A2C1495ULL;

ReportKeyView report_key(const CompiledProgram& compiled,
                         const std::vector<std::vector<std::int64_t>>& input_sets,
                         const miri::InterpLimits& limits) {
    std::uint64_t h = compiled.fingerprint;
    h = support::hash_combine(h, limits.max_steps);
    h = support::hash_combine(h, limits.max_call_depth);
    h = support::hash_combine(h, input_sets.size());
    for (const auto& inputs : input_sets) {
        h = support::hash_combine(h, inputs.size());
        for (std::int64_t value : inputs) {
            h = support::hash_combine(h, static_cast<std::uint64_t>(value));
        }
    }
    ReportKeyView key;
    key.hash = h;
    key.fingerprint = compiled.fingerprint;
    key.check = compiled.check;
    key.limits = limits;
    key.input_sets = &input_sets;
    return key;
}

}  // namespace

Oracle::Oracle(OracleOptions options)
    : limits_(options.limits),
      cache_(options.cache != nullptr ? std::move(options.cache)
                                      : VerifyCache::process_wide()),
      caching_(options.caching.value_or(cache_enabled_from_env())),
      screening_(options.screening.value_or(screen_enabled_from_env())),
      interp_(options.interp.value_or(interp_from_env())),
      vm_opt_(options.vm_opt.value_or(vm_opt_from_env())),
      screen_options_(options.screen) {}

const Oracle& Oracle::shared_default() {
    static const Oracle oracle;
    return oracle;
}

std::shared_ptr<const CompiledProgram> Oracle::compile_uncached(
    const std::string& source, std::uint64_t fingerprint) const {
    auto compiled = std::make_shared<CompiledProgram>();
    compiled->fingerprint = fingerprint;
    compiled->check = support::fnv1a64(source, kCheckSeed);
    compiled->source = source;

    std::string parse_error;
    auto program = lang::try_parse(source, &parse_error);
    if (!program) {
        compiled->front_end = CompiledProgram::FrontEnd::ParseError;
        compiled->error = std::move(parse_error);
        return compiled;
    }
    compiled->program = std::move(*program);

    std::string type_error;
    if (!lang::type_check(compiled->program, &type_error)) {
        compiled->front_end = CompiledProgram::FrontEnd::TypeError;
        compiled->error = std::move(type_error);
        return compiled;
    }
    compiled->lowering = miri::lower_program(compiled->program);
    return compiled;
}

std::shared_ptr<const CompiledProgram> Oracle::compile_guarded(
    const std::string& source, VerifyOutcome* outcome, bool* canonical) const {
    const std::uint64_t fingerprint = support::fnv1a64(source);
    if (!caching_) {
        if (canonical != nullptr) *canonical = false;
        return compile_uncached(source, fingerprint);
    }
    if (auto cached = cache_->lookup_program(fingerprint, source)) {
        if (outcome != nullptr) outcome->program_cached = true;
        if (canonical != nullptr) *canonical = true;
        return cached;
    }
    auto compiled = compile_uncached(source, fingerprint);
    auto stored = cache_->insert_program(fingerprint, compiled);
    if (stored == nullptr) {
        // 64-bit hash collision: the slot is owned by a different source.
        // This source keeps its fresh compile and must not key the report
        // cache (the fingerprint would alias the owner's reports).
        if (canonical != nullptr) *canonical = false;
        return compiled;
    }
    if (canonical != nullptr) *canonical = true;
    return stored;
}

std::shared_ptr<const CompiledProgram> Oracle::compile(
    const std::string& source, VerifyOutcome* outcome) const {
    return compile_guarded(source, outcome, nullptr);
}

miri::MiriReport Oracle::interpret(
    const CompiledProgram& compiled,
    const std::vector<std::vector<std::int64_t>>& input_sets) const {
    // Mirrors MiriLite::test (the uncached tree-walk reference) run for run,
    // with the front end already paid and the slot-lowered program.
    miri::MiriReport report;
    const std::vector<std::vector<std::int64_t>> runs =
        input_sets.empty() ? std::vector<std::vector<std::int64_t>>{{}}
                           : input_sets;
    std::set<std::string> seen;
    for (const auto& inputs : runs) {
        miri::RunResult result;
        switch (interp_) {
            case InterpTier::Tree: {
                miri::Interpreter interp(compiled.program, inputs, limits_);
                result = interp.run();
                break;
            }
            case InterpTier::Slot: {
                miri::Interpreter interp(compiled.program, inputs, limits_,
                                         &compiled.lowering);
                result = interp.run();
                break;
            }
            case InterpTier::Vm: {
                vm::Vm vm(compiled.program,
                          vm_opt_ ? compiled.optimized_bytecode()
                                  : compiled.bytecode(),
                          inputs, limits_);
                result = vm.run();
                break;
            }
        }
        report.total_steps += result.steps;
        report.outputs.push_back(std::move(result.output));
        if (result.finding && seen.insert(result.finding->key()).second) {
            report.findings.push_back(*result.finding);
        }
    }
    return report;
}

miri::MiriReport Oracle::screen_or_interpret(
    const CompiledProgram& compiled,
    const std::vector<std::vector<std::int64_t>>& input_sets,
    VerifyOutcome* outcome, ScreenVerdictRecord* record) const {
    if (screening_) {
        const screen::ScreenResult screened = screen::screen_program(
            compiled.program, compiled.lowering, input_sets, limits_,
            screen_options_);
        screens_.fetch_add(1, std::memory_order_relaxed);
        screen_ops_.fetch_add(screened.verdict.ops, std::memory_order_relaxed);
        switch (screened.verdict.kind) {
            case screen::VerdictKind::ProvenSafe:
                screen_proven_.fetch_add(1, std::memory_order_relaxed);
                break;
            case screen::VerdictKind::LikelyUB:
                screen_likely_.fetch_add(1, std::memory_order_relaxed);
                break;
            case screen::VerdictKind::Unknown:
                screen_unknown_.fetch_add(1, std::memory_order_relaxed);
                break;
        }
        if (outcome != nullptr) {
            outcome->screened = true;
            outcome->screen_verdict = screened.verdict;
        }
        if (record != nullptr) {
            record->screened = true;
            record->verdict = screened.verdict;
        }
        if (screened.verdict.kind == screen::VerdictKind::ProvenSafe) {
            // The synthesized report is exact (outputs + steps), so the
            // interpreter run is pure redundancy — skip it.
            screen_synthesized_.fetch_add(1, std::memory_order_relaxed);
            if (outcome != nullptr) outcome->screen_synthesized = true;
            return screened.report;
        }
        // LikelyUB / Unknown: advisory only — MiriLite stays the authority.
    }
    return interpret(compiled, input_sets);
}

miri::MiriReport Oracle::test_source(
    const std::string& source,
    const std::vector<std::vector<std::int64_t>>& input_sets,
    VerifyOutcome* outcome) const {
    bool canonical = false;
    const std::shared_ptr<const CompiledProgram> compiled =
        compile_guarded(source, outcome, &canonical);
    if (!compiled->ok()) {
        // Byte-identical to MiriLite's front-end failure reports. Never
        // screened: there is no program to screen.
        miri::MiriReport report;
        report.findings.push_back(
            miri::Finding{miri::UbCategory::CompileError, compiled->error, {}});
        return report;
    }
    if (!caching_ || !canonical) {
        return screen_or_interpret(*compiled, input_sets, outcome, nullptr);
    }
    const ReportKeyView key = report_key(*compiled, input_sets, limits_);
    ScreenVerdictRecord cached_verdict;
    if (auto cached = cache_->lookup_report(key, &cached_verdict)) {
        if (outcome != nullptr) {
            outcome->report_cached = true;
            // Replay the verdict stored with the entry so policies see the
            // same signal they would on a live screen. Never on a
            // screening-off oracle: the cache may be shared with screen-on
            // oracles, and "off" must stay fully inert.
            outcome->screened = screening_ && cached_verdict.screened;
            if (outcome->screened) {
                outcome->screen_verdict = cached_verdict.verdict;
            }
        }
        return *cached;
    }
    ScreenVerdictRecord record;
    const miri::MiriReport report =
        screen_or_interpret(*compiled, input_sets, outcome, &record);
    cache_->insert_report(key, report, &record);
    return report;
}

std::string Oracle::stats_summary() const {
    const VerifyCacheStats s = stats();
    return std::to_string(s.programs) + " compiled programs, " +
           std::to_string(s.reports) + " memoized reports, " +
           std::to_string(s.report_hits) + " report hits / " +
           std::to_string(s.report_misses) + " misses, " +
           std::to_string(s.program_evictions + s.report_evictions) +
           " evictions, " +
           std::to_string(s.program_flushes + s.report_flushes) +
           " shard flushes" + (caching_ ? "" : " (RUSTBRAIN_VERIFY_CACHE=off)");
}

ScreenStats Oracle::screen_stats() const {
    ScreenStats s;
    s.screens = screens_.load(std::memory_order_relaxed);
    s.proven_safe = screen_proven_.load(std::memory_order_relaxed);
    s.likely_ub = screen_likely_.load(std::memory_order_relaxed);
    s.unknown = screen_unknown_.load(std::memory_order_relaxed);
    s.synthesized = screen_synthesized_.load(std::memory_order_relaxed);
    s.ops = screen_ops_.load(std::memory_order_relaxed);
    return s;
}

std::string Oracle::screen_summary() const {
    if (!screening_) return "screening off (RUSTBRAIN_SCREEN=off)";
    const ScreenStats s = screen_stats();
    return std::to_string(s.screens) + " screened: " +
           std::to_string(s.proven_safe) + " proven-safe (" +
           std::to_string(s.synthesized) + " interpretations skipped), " +
           std::to_string(s.likely_ub) + " likely-ub, " +
           std::to_string(s.unknown) + " unknown, " + std::to_string(s.ops) +
           " abstract ops";
}

}  // namespace rustbrain::verify
