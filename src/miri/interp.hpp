// MiriLite tree-walking interpreter with UB detection.
//
// Threading model: `spawn(f)` registers a thread; its body executes at the
// matching `join` (or is reported as leaked at main exit). Running threads
// to completion at join points keeps execution deterministic, and the
// vector-clock race detector is interleaving-insensitive: it flags
// conflicting accesses that are unordered by happens-before regardless of
// the order in which they actually executed, so races are still caught.
//
// Deviation from real Rust (documented in DESIGN.md): mini-Rust has no
// static borrow checker, so misuse of safe references (e.g. `&mut` while `&`
// is alive) surfaces as a *dynamic* BothBorrow finding instead of a compile
// error. The paper's both-borrow UB category relies on this.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "miri/lower.hpp"
#include "miri/memory.hpp"
#include "miri/value.hpp"

namespace rustbrain::miri {

struct PanicException {
    std::string message;
    support::SourceSpan span;
};

struct InterpLimits {
    std::uint64_t max_steps = 2'000'000;
    std::uint32_t max_call_depth = 200;
};

struct RunResult {
    std::optional<Finding> finding;
    std::vector<std::string> output;
    std::uint64_t steps = 0;

    [[nodiscard]] bool clean() const { return !finding.has_value(); }
};

class Interpreter {
  public:
    /// `program` must be type-checked (expression types annotated).
    /// `lowering`, when non-null, must have been built by lower_program from
    /// this exact program; names then resolve through dense slot indices
    /// instead of the tree-walk scans. Both paths are observationally
    /// identical (findings, outputs, step counts).
    Interpreter(const lang::Program& program, std::vector<std::int64_t> inputs,
                InterpLimits limits = {},
                const LoweredProgram* lowering = nullptr);

    /// Execute main (and all joined threads); never throws for program-level
    /// failures — UB and panics come back as RunResult::finding.
    RunResult run();

  private:
    // A memory place: typed pointer.
    struct Place {
        Pointer ptr;
        lang::Type type;
    };

    struct LocalSlot {
        std::string name;       // empty under slot lowering (lookup is by slot)
        AllocId alloc = kNoAlloc;
        lang::Type type;        // unit under slot lowering (type lives in SlotState)
        std::int32_t slot = -1; // frame slot to clear on kill; -1 = tree-walk
    };

    struct Scope {
        std::vector<LocalSlot> locals;
    };

    /// Dense per-frame local storage for the slot-lowered path: indexed by
    /// the compile-time slot, kNoAlloc while the binding is not live. The
    /// type pointer aliases AST-owned storage (stable for the whole run).
    struct SlotState {
        AllocId alloc = kNoAlloc;
        const lang::Type* type = nullptr;
    };

    struct Frame {
        const lang::FnItem* fn = nullptr;
        std::vector<Scope> scopes;
        std::vector<SlotState> slots;  // sized by the fn's slot count
    };

    enum class Flow { Normal, Return, TailCall };

    struct ExecResult {
        Flow flow = Flow::Normal;
        Value value;
        // Pending `become` target, resolved and validated at the become
        // site; the call_function trampoline replaces the current frame
        // with it instead of recursing.
        std::int32_t tail_fn = -1;
        std::vector<Value> tail_args;
    };

    struct ThreadState {
        ThreadId id = 0;
        std::int32_t entry_fn = -1;
        VectorClock vc;
        bool executed = false;
        bool joined = false;
    };

    struct MutexState {
        std::optional<ThreadId> held_by;
        VectorClock vc;
    };

    // Execution ---------------------------------------------------------
    void setup_statics();
    Value call_function(std::int32_t fn_index, std::vector<Value> args,
                        support::SourceSpan span);
    ExecResult exec_block(const lang::Block& block);
    ExecResult exec_statement(const lang::Stmt& stmt);

    Value eval_expr(const lang::Expr& expr);
    Value eval_unary(const lang::UnaryExpr& expr);
    Value eval_binary(const lang::BinaryExpr& expr);
    Value eval_cast(const lang::CastExpr& expr);
    Value eval_call(const lang::CallExpr& expr);
    Value eval_call_ptr(const lang::CallPtrExpr& expr);
    Value eval_intrinsic(const lang::CallExpr& expr);
    Value call_fn_value(const FnPtrVal& fn, const lang::Type& static_type,
                        std::vector<Value> args, support::SourceSpan span,
                        bool is_become);
    std::int32_t resolve_fn_target(const FnPtrVal& fn,
                                   const lang::Type& static_type,
                                   support::SourceSpan span, bool is_become) const;

    Place eval_place(const lang::Expr& expr);

    // Helpers -----------------------------------------------------------
    void step(const support::SourceSpan& span);
    [[nodiscard]] AccessCtx access_ctx(support::SourceSpan span,
                                       bool atomic = false) const;
    const LocalSlot* find_local(const std::string& name) const;
    /// `type` must reference AST-owned storage when `slot >= 0` (the slot
    /// keeps a pointer to it for the rest of the binding's lifetime).
    void declare_local(const std::string& name, const lang::Type& type,
                       const Value& value, support::SourceSpan span,
                       std::int32_t slot = -1);
    void kill_scope(Frame& frame, Scope& scope);
    void kill_frame(Frame& frame);
    [[nodiscard]] std::int64_t signed_value(const Value& v, const lang::Type& t) const;
    Value arith_result(std::uint64_t bits, const lang::Type& type);
    void run_thread(ThreadState& thread, support::SourceSpan span);
    [[noreturn]] void panic(std::string message, support::SourceSpan span) const;

    const lang::Program& program_;
    std::vector<std::int64_t> inputs_;
    InterpLimits limits_;
    /// Non-null => slot-lowered execution (see miri/lower.hpp).
    const LoweredProgram* lowering_;

    MemoryModel mem_;
    std::vector<Frame> frames_;
    std::map<std::string, AllocId> static_allocs_;      // tree-walk path
    std::vector<AllocId> static_slots_;                 // slot-lowered path

    // Threads & sync.
    ThreadId current_thread_ = 0;
    std::vector<ThreadState> threads_;  // index = id - 1 (main is id 0)
    VectorClock main_vc_;
    std::vector<MutexState> mutexes_;
    std::map<std::pair<AllocId, std::uint64_t>, VectorClock> atomic_vcs_;
    bool multithreaded_ = false;

    std::vector<std::string> output_;
    std::uint64_t steps_ = 0;
    std::uint32_t call_depth_ = 0;

    VectorClock& current_vc();
};

}  // namespace rustbrain::miri
