#include "miri/mirilite.hpp"

#include <set>

#include "lang/parser.hpp"
#include "lang/typecheck.hpp"

namespace rustbrain::miri {

bool MiriReport::has_category(UbCategory category) const {
    for (const auto& finding : findings) {
        if (finding.category == category) return true;
    }
    return false;
}

std::string MiriReport::summary() const {
    if (findings.empty()) {
        return "pass";
    }
    std::string out;
    for (const auto& finding : findings) {
        out += finding.to_string();
        out += '\n';
    }
    return out;
}

MiriReport MiriLite::test(const lang::Program& program,
                          const std::vector<std::vector<std::int64_t>>& input_sets)
    const {
    MiriReport report;

    // The interpreter relies on type annotations; check a private clone so
    // callers' programs are never mutated behind their back.
    lang::Program checked = program.clone();
    std::string type_error;
    if (!lang::type_check(checked, &type_error)) {
        report.findings.push_back(
            Finding{UbCategory::CompileError, type_error, {}});
        return report;
    }

    const std::vector<std::vector<std::int64_t>> runs =
        input_sets.empty() ? std::vector<std::vector<std::int64_t>>{{}}
                           : input_sets;

    std::set<std::string> seen;
    for (const auto& inputs : runs) {
        Interpreter interp(checked, inputs, limits_);
        RunResult result = interp.run();
        report.total_steps += result.steps;
        report.outputs.push_back(std::move(result.output));
        if (result.finding && seen.insert(result.finding->key()).second) {
            report.findings.push_back(*result.finding);
        }
    }
    return report;
}

MiriReport MiriLite::test_source(
    const std::string& source,
    const std::vector<std::vector<std::int64_t>>& input_sets) const {
    std::string parse_error;
    auto program = lang::try_parse(source, &parse_error);
    if (!program) {
        MiriReport report;
        report.findings.push_back(
            Finding{UbCategory::CompileError, parse_error, {}});
        return report;
    }
    return test(*program, input_sets);
}

}  // namespace rustbrain::miri
