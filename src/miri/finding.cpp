#include "miri/finding.hpp"

namespace rustbrain::miri {

const char* ub_category_name(UbCategory category) {
    switch (category) {
        case UbCategory::Alloc: return "Alloc";
        case UbCategory::DanglingPointer: return "DanglingPointer";
        case UbCategory::Panic: return "Panic";
        case UbCategory::Provenance: return "Provenance";
        case UbCategory::Uninit: return "Uninit";
        case UbCategory::BothBorrow: return "BothBorrow";
        case UbCategory::DataRace: return "DataRace";
        case UbCategory::FuncCall: return "FuncCall";
        case UbCategory::FuncPointer: return "FuncPointer";
        case UbCategory::StackBorrow: return "StackBorrow";
        case UbCategory::Validity: return "Validity";
        case UbCategory::Unaligned: return "Unaligned";
        case UbCategory::Concurrency: return "Concurrency";
        case UbCategory::TailCall: return "TailCall";
        case UbCategory::CompileError: return "CompileError";
    }
    return "?";
}

const char* ub_category_label(UbCategory category) {
    switch (category) {
        case UbCategory::Alloc: return "alloc";
        case UbCategory::DanglingPointer: return "danglingpointer";
        case UbCategory::Panic: return "panic";
        case UbCategory::Provenance: return "provenance";
        case UbCategory::Uninit: return "uninit";
        case UbCategory::BothBorrow: return "bothborrow";
        case UbCategory::DataRace: return "datarace";
        case UbCategory::FuncCall: return "func.call";
        case UbCategory::FuncPointer: return "func.pointer";
        case UbCategory::StackBorrow: return "stackborrow";
        case UbCategory::Validity: return "validity";
        case UbCategory::Unaligned: return "unaligned";
        case UbCategory::Concurrency: return "concurrency";
        case UbCategory::TailCall: return "tailcall";
        case UbCategory::CompileError: return "compile.error";
    }
    return "?";
}

const std::vector<UbCategory>& all_ub_categories() {
    static const std::vector<UbCategory> categories = {
        UbCategory::Alloc,        UbCategory::DanglingPointer,
        UbCategory::Panic,        UbCategory::Provenance,
        UbCategory::Uninit,       UbCategory::BothBorrow,
        UbCategory::DataRace,     UbCategory::FuncCall,
        UbCategory::FuncPointer,  UbCategory::StackBorrow,
        UbCategory::Validity,     UbCategory::Unaligned,
        UbCategory::Concurrency,  UbCategory::TailCall,
    };
    return categories;
}

std::string Finding::to_string() const {
    std::string out = "UB[";
    out += ub_category_label(category);
    out += "]";
    if (span.valid()) {
        out += " at ";
        out += span.to_string();
    }
    out += ": ";
    out += message;
    return out;
}

std::string Finding::key() const {
    return std::string(ub_category_name(category)) + "|" + message;
}

}  // namespace rustbrain::miri
