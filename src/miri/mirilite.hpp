// MiriLite — the reproduction's stand-in for the Miri UB detector.
//
// A "Miri test" in the paper means: run the program under the interpreter
// and report UB. Our driver additionally runs the program once per input
// vector (the dataset's semantic benchmark inputs) and aggregates distinct
// findings, which is what the repair loop consumes as its error count
// sequence N = {n_0, n_1, ...}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "miri/finding.hpp"
#include "miri/interp.hpp"

namespace rustbrain::miri {

struct MiriReport {
    /// Distinct findings (deduplicated by category+message) across all runs.
    std::vector<Finding> findings;
    /// Observable output per input run (valid even when a run hit UB —
    /// output up to the failure point).
    std::vector<std::vector<std::string>> outputs;
    std::uint64_t total_steps = 0;

    [[nodiscard]] bool passed() const { return findings.empty(); }
    [[nodiscard]] std::size_t error_count() const { return findings.size(); }
    [[nodiscard]] bool has_category(UbCategory category) const;
    [[nodiscard]] std::string summary() const;
};

class MiriLite {
  public:
    explicit MiriLite(InterpLimits limits = {}) : limits_(limits) {}

    /// Type-check (CompileError findings on failure) then interpret the
    /// program once per input vector. An empty `input_sets` means one run
    /// with no inputs.
    [[nodiscard]] MiriReport test(const lang::Program& program,
                                  const std::vector<std::vector<std::int64_t>>&
                                      input_sets) const;

    /// Parse + test. Parse failures also come back as CompileError findings.
    [[nodiscard]] MiriReport test_source(
        const std::string& source,
        const std::vector<std::vector<std::int64_t>>& input_sets) const;

  private:
    InterpLimits limits_;
};

}  // namespace rustbrain::miri
