#include "miri/lower.hpp"

#include <string>

#include "lang/typecheck.hpp"

namespace rustbrain::miri {

namespace {

class Lowerer {
  public:
    Lowerer(const lang::Program& program, LoweredProgram& out)
        : program_(program), out_(out) {}

    void lower_static_init(const lang::Expr& init, std::size_t statics_ready) {
        statics_ready_ = statics_ready;
        scopes_.clear();
        visit_expr(init);
    }

    std::uint32_t lower_function(const lang::FnItem& fn) {
        statics_ready_ = program_.statics.size();
        scopes_.clear();
        next_slot_ = 0;
        push_scope();
        for (const lang::Param& param : fn.params) {
            declare(param.name, &param.type);
        }
        visit_block(fn.body);
        pop_scope();
        return next_slot_;
    }

  private:
    struct LocalInfo {
        const std::string* name;
        const lang::Type* type;
        std::uint32_t slot;
    };
    struct Scope {
        std::vector<LocalInfo> locals;
    };

    void push_scope() { scopes_.emplace_back(); }
    void pop_scope() { scopes_.pop_back(); }

    void declare(const std::string& name, const lang::Type* type) {
        scopes_.back().locals.push_back({&name, type, next_slot_++});
    }

    [[nodiscard]] const LocalInfo* lookup(const std::string& name) const {
        for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
            for (auto local = scope->locals.rbegin();
                 local != scope->locals.rend(); ++local) {
                if (*local->name == name) return &*local;
            }
        }
        return nullptr;
    }

    [[nodiscard]] std::int32_t find_static(const std::string& name) const {
        // Only statics already initialized at this point are visible —
        // setup_statics runs in declaration order.
        for (std::size_t i = 0; i < statics_ready_; ++i) {
            if (program_.statics[i].name == name) {
                return static_cast<std::int32_t>(i);
            }
        }
        return -1;
    }

    [[nodiscard]] std::int32_t find_function(const std::string& name) const {
        for (std::size_t i = 0; i < program_.functions.size(); ++i) {
            if (program_.functions[i].name == name) {
                return static_cast<std::int32_t>(i);
            }
        }
        return -1;
    }

    void resolve_var_ref(const lang::VarRefExpr& node) {
        VarResolution& res = out_.var_refs[node.id];
        if (const LocalInfo* local = lookup(node.name)) {
            res.kind = VarResolution::Kind::Local;
            res.index = static_cast<std::int32_t>(local->slot);
            return;
        }
        if (const std::int32_t index = find_static(node.name); index >= 0) {
            res.kind = VarResolution::Kind::Static;
            res.index = index;
            return;
        }
        if (const std::int32_t index = find_function(node.name); index >= 0) {
            res.kind = VarResolution::Kind::Function;
            res.index = index;
            return;
        }
        res.kind = VarResolution::Kind::Unresolved;
    }

    void resolve_call(const lang::CallExpr& node) {
        CallResolution& res = out_.calls[node.id];
        // Mirror eval_call: intrinsics first, then a local *of fn-pointer
        // type* (a local of another type does not shadow a function item in
        // call position), then the function item.
        if (lang::is_intrinsic(node.callee)) {
            res.kind = CallResolution::Kind::Intrinsic;
            return;
        }
        if (const LocalInfo* local = lookup(node.callee);
            local != nullptr && local->type->is_fn_ptr()) {
            res.kind = CallResolution::Kind::LocalFnPtr;
            res.index = static_cast<std::int32_t>(local->slot);
            return;
        }
        if (const std::int32_t index = find_function(node.callee); index >= 0) {
            res.kind = CallResolution::Kind::Direct;
            res.index = index;
            return;
        }
        res.kind = CallResolution::Kind::Unresolved;
    }

    void visit_expr(const lang::Expr& expr) {
        switch (expr.kind) {
            case lang::ExprKind::IntLit:
            case lang::ExprKind::BoolLit:
                break;
            case lang::ExprKind::VarRef:
                resolve_var_ref(static_cast<const lang::VarRefExpr&>(expr));
                break;
            case lang::ExprKind::Unary:
                visit_expr(*static_cast<const lang::UnaryExpr&>(expr).operand);
                break;
            case lang::ExprKind::Binary: {
                const auto& node = static_cast<const lang::BinaryExpr&>(expr);
                visit_expr(*node.lhs);
                visit_expr(*node.rhs);
                break;
            }
            case lang::ExprKind::Cast:
                visit_expr(*static_cast<const lang::CastExpr&>(expr).operand);
                break;
            case lang::ExprKind::Index: {
                const auto& node = static_cast<const lang::IndexExpr&>(expr);
                visit_expr(*node.base);
                visit_expr(*node.index);
                break;
            }
            case lang::ExprKind::Call: {
                const auto& node = static_cast<const lang::CallExpr&>(expr);
                resolve_call(node);
                for (const auto& arg : node.args) visit_expr(*arg);
                break;
            }
            case lang::ExprKind::CallPtr: {
                const auto& node = static_cast<const lang::CallPtrExpr&>(expr);
                visit_expr(*node.callee);
                for (const auto& arg : node.args) visit_expr(*arg);
                break;
            }
            case lang::ExprKind::ArrayLit:
                for (const auto& element :
                     static_cast<const lang::ArrayLitExpr&>(expr).elements) {
                    visit_expr(*element);
                }
                break;
            case lang::ExprKind::ArrayRepeat:
                visit_expr(
                    *static_cast<const lang::ArrayRepeatExpr&>(expr).element);
                break;
        }
    }

    void visit_stmt(const lang::Stmt& stmt) {
        switch (stmt.kind) {
            case lang::StmtKind::Let: {
                const auto& node = static_cast<const lang::LetStmt&>(stmt);
                // The initializer sees the environment *before* the binding
                // (`let x = x + 1;` reads the outer x).
                visit_expr(*node.init);
                const lang::Type* type = node.declared_type
                                             ? &*node.declared_type
                                             : &node.init->type;
                out_.let_slots[node.id] =
                    static_cast<std::int32_t>(next_slot_);
                declare(node.name, type);
                break;
            }
            case lang::StmtKind::Assign: {
                const auto& node = static_cast<const lang::AssignStmt&>(stmt);
                visit_expr(*node.place);
                visit_expr(*node.value);
                break;
            }
            case lang::StmtKind::Expr:
                visit_expr(*static_cast<const lang::ExprStmt&>(stmt).expr);
                break;
            case lang::StmtKind::If: {
                const auto& node = static_cast<const lang::IfStmt&>(stmt);
                visit_expr(*node.condition);
                visit_block(node.then_block);
                if (node.else_block) visit_block(*node.else_block);
                break;
            }
            case lang::StmtKind::While: {
                const auto& node = static_cast<const lang::WhileStmt&>(stmt);
                visit_expr(*node.condition);
                visit_block(node.body);
                break;
            }
            case lang::StmtKind::Return: {
                const auto& node = static_cast<const lang::ReturnStmt&>(stmt);
                if (node.value) visit_expr(*node.value);
                break;
            }
            case lang::StmtKind::Block:
                visit_block(static_cast<const lang::BlockStmt&>(stmt).block);
                break;
            case lang::StmtKind::Unsafe:
                visit_block(static_cast<const lang::UnsafeStmt&>(stmt).block);
                break;
            case lang::StmtKind::Become: {
                const auto& node = static_cast<const lang::BecomeStmt&>(stmt);
                visit_expr(*node.callee);
                for (const auto& arg : node.args) visit_expr(*arg);
                break;
            }
        }
    }

    void visit_block(const lang::Block& block) {
        push_scope();
        for (const auto& stmt : block.statements) {
            visit_stmt(*stmt);
        }
        pop_scope();
    }

    const lang::Program& program_;
    LoweredProgram& out_;
    std::vector<Scope> scopes_;
    std::uint32_t next_slot_ = 0;
    std::size_t statics_ready_ = 0;
};

}  // namespace

LoweredProgram lower_program(lang::Program& program) {
    const std::uint32_t node_count = program.renumber();

    LoweredProgram lowered;
    lowered.var_refs.resize(node_count + 1);
    lowered.let_slots.assign(node_count + 1, -1);
    lowered.calls.resize(node_count + 1);
    lowered.fn_slot_counts.reserve(program.functions.size());

    Lowerer lowerer(program, lowered);
    for (std::size_t i = 0; i < program.statics.size(); ++i) {
        if (program.statics[i].init) {
            // A static is registered before its initializer is evaluated
            // (setup_statics), so an initializer sees statics 0..i
            // *including itself*.
            lowerer.lower_static_init(*program.statics[i].init, i + 1);
        }
    }
    for (const lang::FnItem& fn : program.functions) {
        lowered.fn_slot_counts.push_back(lowerer.lower_function(fn));
    }
    return lowered;
}

}  // namespace rustbrain::miri
