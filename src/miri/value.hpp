// Runtime values for the MiriLite interpreter.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lang/type.hpp"

namespace rustbrain::miri {

using AllocId = std::uint32_t;
using BorrowTag = std::uint64_t;

constexpr AllocId kNoAlloc = 0;
constexpr BorrowTag kNoTag = 0;

/// A pointer value: absolute address plus (optional) provenance. Pointers
/// cast from integers have no provenance (strict-provenance semantics, like
/// `miri -Zmiri-strict-provenance`); dereferencing them is UB.
struct Pointer {
    std::uint64_t addr = 0;
    AllocId alloc = kNoAlloc;   // kNoAlloc => no provenance
    BorrowTag tag = kNoTag;     // borrow-stack tag; kNoTag on provenance-free ptrs

    [[nodiscard]] bool is_null() const { return addr == 0; }
    [[nodiscard]] bool has_provenance() const { return alloc != kNoAlloc; }
};

/// Virtual code addresses for function pointers: fn i lives at
/// kFnAddrBase + i * kFnAddrStride. Data allocations never overlap this.
constexpr std::uint64_t kFnAddrBase = 0x7000'0000'0000ULL;
constexpr std::uint64_t kFnAddrStride = 16;

inline std::uint64_t fn_index_to_addr(std::int32_t index) {
    if (index < 0) return 0;
    return kFnAddrBase + static_cast<std::uint64_t>(index) * kFnAddrStride;
}

/// A function-pointer value. `fn_index` is an index into Program::functions,
/// or kInvalidFn for pointers fabricated from non-function addresses.
struct FnPtrVal {
    static constexpr std::int32_t kInvalidFn = -1;
    std::int32_t fn_index = kInvalidFn;

    [[nodiscard]] bool valid() const { return fn_index >= 0; }
};

/// Tagged value union. Arrays appear transiently (literal evaluation) as a
/// vector of element values; they are stored element-wise into memory.
class Value {
  public:
    enum class Kind { Unit, Scalar, Ptr, Fn, Array };

    Value() : kind_(Kind::Unit) {}

    static Value unit() { return Value(); }
    static Value scalar(std::uint64_t bits) {
        Value v;
        v.kind_ = Kind::Scalar;
        v.scalar_ = bits;
        return v;
    }
    static Value boolean(bool b) { return scalar(b ? 1 : 0); }
    static Value pointer(Pointer p) {
        Value v;
        v.kind_ = Kind::Ptr;
        v.ptr_ = p;
        return v;
    }
    static Value function(FnPtrVal f) {
        Value v;
        v.kind_ = Kind::Fn;
        v.fn_ = f;
        return v;
    }
    static Value array(std::vector<Value> elements) {
        Value v;
        v.kind_ = Kind::Array;
        v.elements_ = std::make_shared<std::vector<Value>>(std::move(elements));
        return v;
    }

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool is_unit() const { return kind_ == Kind::Unit; }

    /// Raw bits (zero-extended). For Ptr returns the address; for Fn the
    /// encoded code address.
    [[nodiscard]] std::uint64_t bits() const {
        switch (kind_) {
            case Kind::Unit: return 0;
            case Kind::Scalar: return scalar_;
            case Kind::Ptr: return ptr_.addr;
            case Kind::Fn: return fn_index_to_addr(fn_.fn_index);
            case Kind::Array: throw_bits_on_array();
        }
        return 0;
    }
    [[nodiscard]] bool as_bool() const { return bits() != 0; }
    [[nodiscard]] const Pointer& as_ptr() const;
    [[nodiscard]] const FnPtrVal& as_fn() const;
    [[nodiscard]] const std::vector<Value>& as_array() const;

    /// Sign-extend the low `bytes` of the scalar to 64-bit signed.
    [[nodiscard]] std::int64_t as_signed(std::uint64_t bytes) const {
        const std::uint64_t raw = bits();
        if (bytes >= 8) return static_cast<std::int64_t>(raw);
        const std::uint64_t shift = 64 - bytes * 8;
        return static_cast<std::int64_t>(raw << shift) >> shift;
    }

  private:
    [[noreturn]] static void throw_bits_on_array();

    Kind kind_;
    std::uint64_t scalar_ = 0;
    Pointer ptr_;
    FnPtrVal fn_;
    std::shared_ptr<std::vector<Value>> elements_;
};

/// kInvalidFn when the address is not a valid function address.
std::int32_t fn_addr_to_index(std::uint64_t addr, std::size_t fn_count);

/// Truncate `bits` to the width of `type` (scalars; pointers unchanged).
inline std::uint64_t truncate_to_type(std::uint64_t bits,
                                      const lang::Type& type) {
    const std::uint64_t size = type.size_bytes();
    if (size == 0) return 0;
    if (size >= 8) return bits;
    const std::uint64_t mask = (1ULL << (size * 8)) - 1;
    return bits & mask;
}

}  // namespace rustbrain::miri
