// MiriLite memory model.
//
// Implements the dynamic checks that make UB detection real rather than
// pattern-matched:
//   * allocation tracking (liveness, layout-checked dealloc, leak check)
//   * strict pointer provenance (int-derived pointers cannot be dereferenced)
//   * per-byte borrow stacks — a Stacked-Borrows-lite with Unique/SharedRO/
//     SharedRW permissions and retag-on-reference-creation
//   * per-byte initialization tracking
//   * alignment and typed-value validity checks
//   * per-byte access epochs + vector clocks for data-race detection
//
// UB unwinds via UbException; the interpreter catches it at thread top level
// and converts it into a Finding. (UB genuinely terminates the abstract
// machine, so exceptional control flow is the honest model.)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lang/type.hpp"
#include "miri/finding.hpp"
#include "miri/value.hpp"

namespace rustbrain::miri {

using ThreadId = std::uint32_t;

struct UbException {
    Finding finding;
};

/// Vector clock for happens-before tracking.
class VectorClock {
  public:
    [[nodiscard]] std::uint64_t get(ThreadId tid) const;
    void set(ThreadId tid, std::uint64_t value);
    void increment(ThreadId tid);
    /// Pointwise maximum (join).
    void merge(const VectorClock& other);

    [[nodiscard]] std::size_t size() const { return clocks_.size(); }

  private:
    std::vector<std::uint64_t> clocks_;
};

enum class AllocKind { Heap, Stack, Static };

enum class Permission {
    Unique,    // &mut or allocation base: full access, invalidated by others
    SharedRO,  // &: read-only, survives reads, killed by writes
    SharedRW,  // raw pointer derived from &mut: read/write until parent dies
};

/// What kind of pointer a borrow tag was created for — used to pick the UB
/// category when an invalidated tag is used (reference tags -> BothBorrow,
/// raw/base tags -> StackBorrow).
enum class TagOrigin { Base, Ref, Raw };

struct BorrowEntry {
    BorrowTag tag = kNoTag;
    Permission perm = Permission::Unique;
};

struct AccessEpoch {
    ThreadId tid = 0;
    std::uint64_t clock = 0;
    bool atomic = false;
    bool valid = false;
};

/// Per-byte borrow stack with inline storage for the common shapes (base
/// tag alone, or base tag + one retag). Deeper retag chains spill into a
/// heap vector. Keeping the first two entries inline removes a pointer
/// chase per byte from every access-validation pass.
class BorrowStack {
  public:
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] const BorrowEntry& operator[](std::size_t i) const {
        return i < kInline ? inline_[i] : spill_[i - kInline];
    }
    void push_back(BorrowEntry entry) {
        if (size_ < kInline) {
            inline_[size_] = entry;
        } else {
            spill_.push_back(entry);
        }
        ++size_;
    }
    /// Shrink to the first `n` entries (never grows).
    void shrink_to(std::size_t n) {
        if (n >= size_) return;
        if (size_ > kInline) {
            spill_.resize(n > kInline ? n - kInline : 0);
        }
        size_ = n;
    }
    /// Drop every Unique entry at index >= `from`, keeping the rest in order.
    void remove_unique_above(std::size_t from) {
        std::size_t write = from;
        for (std::size_t read = from; read < size_; ++read) {
            const BorrowEntry entry = (*this)[read];
            if (entry.perm != Permission::Unique) {
                set(write++, entry);
            }
        }
        shrink_to(write);
    }

  private:
    void set(std::size_t i, BorrowEntry entry) {
        if (i < kInline) {
            inline_[i] = entry;
        } else {
            spill_[i - kInline] = entry;
        }
    }

    static constexpr std::size_t kInline = 2;
    BorrowEntry inline_[kInline];
    std::uint32_t size_ = 0;
    std::vector<BorrowEntry> spill_;
};

struct Allocation {
    AllocId id = kNoAlloc;
    AllocKind kind = AllocKind::Stack;
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    std::uint64_t align = 1;
    bool live = true;
    /// Died because its frame was popped by a `become` tail call — accesses
    /// are reported under the TailCall category instead of DanglingPointer.
    bool tail_call_killed = false;
    BorrowTag base_tag = kNoTag;
    /// True while every byte's borrow stack is exactly [base_tag/Unique] —
    /// the state allocate() creates. Cleared by the first retag. While set,
    /// an access through the base tag provably leaves every stack unchanged
    /// (found at top, nothing above to invalidate), so validation can skip
    /// the per-byte borrow walk entirely.
    bool uniform_borrows = true;
    /// Bytes not yet written. 0 means the whole allocation is initialized,
    /// so reads need no per-byte init scan.
    std::uint64_t uninit_count = 0;
    std::string label;  // variable/static name or "heap" — for diagnostics
    // Per-byte state, structure-of-arrays: the load/store hot loops touch
    // `bytes`/`init` as dense arrays instead of striding over one big
    // per-byte struct.
    std::vector<std::uint8_t> bytes;   // raw byte values
    std::vector<std::uint8_t> init;    // 0/1: byte has been written
    std::vector<BorrowStack> borrows;  // per-byte borrow stacks
    // Race-detection state, materialized lazily on the first access made
    // with a vector clock — single-threaded programs never touch it.
    std::vector<AccessEpoch> last_write;
    std::vector<std::vector<AccessEpoch>> reads;  // most recent read per thread
    /// Pointer values stored in memory keep their provenance here, keyed by
    /// byte offset of the 8-byte pointer.
    std::map<std::uint64_t, Pointer> ptr_prov;
    std::map<std::uint64_t, FnPtrVal> fn_prov;
};

/// Context for a memory access: which thread, its vector clock, atomicity.
struct AccessCtx {
    ThreadId tid = 0;
    const VectorClock* vc = nullptr;
    bool atomic = false;
    support::SourceSpan span;
};

class MemoryModel {
  public:
    MemoryModel();

    // Allocation lifecycle ---------------------------------------------
    /// Create a new allocation; throws UbException (Alloc) on invalid layout.
    AllocId allocate(std::uint64_t size, std::uint64_t align, AllocKind kind,
                     std::string label, support::SourceSpan span);
    /// allocate() minus the per-byte state (bytes / init / borrow stacks).
    /// For register-promoted locals (vm::optimize): the allocation must go
    /// through the identical bookkeeping — same layout UB checks, same
    /// address-space bump, same AllocId / base-tag / bytes_allocated streams,
    /// all observable through ptr-to-int casts and later allocations — but is
    /// guaranteed never to be loaded/stored through, so materializing its
    /// contents would be pure waste. kill() and check_leaks() treat it like
    /// any other stack allocation.
    AllocId allocate_shadow(std::uint64_t size, std::uint64_t align,
                            AllocKind kind, std::string label,
                            support::SourceSpan span);
    /// Heap deallocation with full layout validation.
    void deallocate(const Pointer& p, std::uint64_t size, std::uint64_t align,
                    support::SourceSpan span);
    /// Stack scope exit / program teardown: mark dead, keep for diagnostics.
    void kill(AllocId id);
    /// Frame popped by a `become` tail call: dead, and later accesses are
    /// classified as TailCall UB.
    void kill_for_tail_call(AllocId id);

    [[nodiscard]] Allocation& get(AllocId id) {
        if (id == kNoAlloc || id > allocs_.size()) throw_bad_alloc_id();
        return allocs_[id - 1];
    }
    [[nodiscard]] const Allocation& get(AllocId id) const {
        if (id == kNoAlloc || id > allocs_.size()) throw_bad_alloc_id();
        return allocs_[id - 1];
    }
    [[nodiscard]] std::size_t allocation_count() const { return allocs_.size(); }

    /// Pointer to an allocation's base carrying its base (Unique) tag.
    [[nodiscard]] Pointer base_pointer(AllocId id) const {
        const Allocation& alloc = get(id);
        return Pointer{alloc.base, alloc.id, alloc.base_tag};
    }

    // Typed access -------------------------------------------------------
    Value load(const Pointer& p, const lang::Type& type, const AccessCtx& ctx);
    void store(const Pointer& p, const lang::Type& type, const Value& value,
               const AccessCtx& ctx);

    // Retagging (reference / raw-pointer creation) ----------------------
    /// `&place` / `&mut place`: use the parent tag, push a fresh Ref tag.
    Pointer retag_ref(const Pointer& p, std::uint64_t size, bool is_mut,
                      support::SourceSpan span);
    /// `ref as *const/mut T`: push a fresh Raw tag below-the-surface.
    Pointer retag_raw(const Pointer& p, std::uint64_t size, bool writable,
                      support::SourceSpan span);

    /// `offset(p, n)` — inbounds pointer arithmetic; one-past-end allowed.
    Pointer offset_pointer(const Pointer& p, std::int64_t byte_delta,
                           support::SourceSpan span);

    /// Leak check: any live heap allocation is an Alloc finding.
    [[nodiscard]] std::optional<Finding> check_leaks() const;

    [[nodiscard]] std::uint64_t bytes_allocated() const { return bytes_allocated_; }

  private:
    /// Shared validation pipeline; returns the allocation and base offset.
    Allocation& check_access(const Pointer& p, std::uint64_t size, bool write,
                             const AccessCtx& ctx, std::uint64_t& offset_out,
                             std::uint64_t align = 1);
    /// Fast path for the overwhelmingly common access shape: in-bounds,
    /// aligned, through the base tag of a live allocation that has never
    /// been retagged, with no vector clock in play. Under those conditions
    /// the full pipeline is a provable no-op on the borrow/race state, so
    /// this returns the allocation directly; nullptr means "take the slow
    /// path" (which also produces every diagnostic).
    Allocation* try_fast_access(const Pointer& p, std::uint64_t size,
                                const AccessCtx& ctx, std::uint64_t& offset_out,
                                std::uint64_t align) {
        if (p.alloc == kNoAlloc || p.alloc > allocs_.size() ||
            ctx.vc != nullptr) {
            return nullptr;
        }
        Allocation& alloc = allocs_[p.alloc - 1];
        if (!alloc.live || !alloc.uniform_borrows || p.tag != alloc.base_tag ||
            p.addr < alloc.base || p.addr + size > alloc.base + alloc.size ||
            (align > 1 && p.addr % align != 0)) {
            return nullptr;
        }
        offset_out = p.addr - alloc.base;
        return &alloc;
    }
    void borrow_use(Allocation& alloc, std::uint64_t offset, std::uint64_t size,
                    BorrowTag tag, bool write, support::SourceSpan span);
    void race_check(Allocation& alloc, std::uint64_t offset, std::uint64_t size,
                    bool write, const AccessCtx& ctx);
    void clear_provenance_overlapping(Allocation& alloc, std::uint64_t offset,
                                      std::uint64_t size);

    [[noreturn]] void ub(UbCategory category, std::string message,
                         support::SourceSpan span) const;
    [[noreturn]] static void throw_bad_alloc_id();

    AllocId allocate_common(std::uint64_t size, std::uint64_t align,
                            AllocKind kind, std::string label,
                            support::SourceSpan span, bool materialize);

    BorrowTag fresh_tag(TagOrigin origin);
    [[nodiscard]] TagOrigin origin_of(BorrowTag tag) const;

    std::vector<Allocation> allocs_;
    /// Origin per tag, indexed by tag - 1 (fresh_tag hands them out densely
    /// starting at 1).
    std::vector<TagOrigin> tag_origins_;
    std::uint64_t next_addr_ = 0x10000;
    BorrowTag next_tag_ = 1;
    std::uint64_t bytes_allocated_ = 0;
};

}  // namespace rustbrain::miri
