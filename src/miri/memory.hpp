// MiriLite memory model.
//
// Implements the dynamic checks that make UB detection real rather than
// pattern-matched:
//   * allocation tracking (liveness, layout-checked dealloc, leak check)
//   * strict pointer provenance (int-derived pointers cannot be dereferenced)
//   * per-byte borrow stacks — a Stacked-Borrows-lite with Unique/SharedRO/
//     SharedRW permissions and retag-on-reference-creation
//   * per-byte initialization tracking
//   * alignment and typed-value validity checks
//   * per-byte access epochs + vector clocks for data-race detection
//
// UB unwinds via UbException; the interpreter catches it at thread top level
// and converts it into a Finding. (UB genuinely terminates the abstract
// machine, so exceptional control flow is the honest model.)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lang/type.hpp"
#include "miri/finding.hpp"
#include "miri/value.hpp"

namespace rustbrain::miri {

using ThreadId = std::uint32_t;

struct UbException {
    Finding finding;
};

/// Vector clock for happens-before tracking.
class VectorClock {
  public:
    [[nodiscard]] std::uint64_t get(ThreadId tid) const;
    void set(ThreadId tid, std::uint64_t value);
    void increment(ThreadId tid);
    /// Pointwise maximum (join).
    void merge(const VectorClock& other);

    [[nodiscard]] std::size_t size() const { return clocks_.size(); }

  private:
    std::vector<std::uint64_t> clocks_;
};

enum class AllocKind { Heap, Stack, Static };

enum class Permission {
    Unique,    // &mut or allocation base: full access, invalidated by others
    SharedRO,  // &: read-only, survives reads, killed by writes
    SharedRW,  // raw pointer derived from &mut: read/write until parent dies
};

/// What kind of pointer a borrow tag was created for — used to pick the UB
/// category when an invalidated tag is used (reference tags -> BothBorrow,
/// raw/base tags -> StackBorrow).
enum class TagOrigin { Base, Ref, Raw };

struct BorrowEntry {
    BorrowTag tag = kNoTag;
    Permission perm = Permission::Unique;
};

struct AccessEpoch {
    ThreadId tid = 0;
    std::uint64_t clock = 0;
    bool atomic = false;
    bool valid = false;
};

struct ByteState {
    std::uint8_t value = 0;
    bool init = false;
    std::vector<BorrowEntry> borrows;
    AccessEpoch last_write;
    std::vector<AccessEpoch> reads;  // most recent read per thread
};

struct Allocation {
    AllocId id = kNoAlloc;
    AllocKind kind = AllocKind::Stack;
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    std::uint64_t align = 1;
    bool live = true;
    /// Died because its frame was popped by a `become` tail call — accesses
    /// are reported under the TailCall category instead of DanglingPointer.
    bool tail_call_killed = false;
    BorrowTag base_tag = kNoTag;
    std::string label;  // variable/static name or "heap" — for diagnostics
    std::vector<ByteState> bytes;
    /// Pointer values stored in memory keep their provenance here, keyed by
    /// byte offset of the 8-byte pointer.
    std::map<std::uint64_t, Pointer> ptr_prov;
    std::map<std::uint64_t, FnPtrVal> fn_prov;
};

/// Context for a memory access: which thread, its vector clock, atomicity.
struct AccessCtx {
    ThreadId tid = 0;
    const VectorClock* vc = nullptr;
    bool atomic = false;
    support::SourceSpan span;
};

class MemoryModel {
  public:
    MemoryModel();

    // Allocation lifecycle ---------------------------------------------
    /// Create a new allocation; throws UbException (Alloc) on invalid layout.
    AllocId allocate(std::uint64_t size, std::uint64_t align, AllocKind kind,
                     std::string label, support::SourceSpan span);
    /// Heap deallocation with full layout validation.
    void deallocate(const Pointer& p, std::uint64_t size, std::uint64_t align,
                    support::SourceSpan span);
    /// Stack scope exit / program teardown: mark dead, keep for diagnostics.
    void kill(AllocId id);
    /// Frame popped by a `become` tail call: dead, and later accesses are
    /// classified as TailCall UB.
    void kill_for_tail_call(AllocId id);

    [[nodiscard]] Allocation& get(AllocId id);
    [[nodiscard]] const Allocation& get(AllocId id) const;
    [[nodiscard]] std::size_t allocation_count() const { return allocs_.size(); }

    /// Pointer to an allocation's base carrying its base (Unique) tag.
    [[nodiscard]] Pointer base_pointer(AllocId id) const;

    // Typed access -------------------------------------------------------
    Value load(const Pointer& p, const lang::Type& type, const AccessCtx& ctx);
    void store(const Pointer& p, const lang::Type& type, const Value& value,
               const AccessCtx& ctx);

    // Retagging (reference / raw-pointer creation) ----------------------
    /// `&place` / `&mut place`: use the parent tag, push a fresh Ref tag.
    Pointer retag_ref(const Pointer& p, std::uint64_t size, bool is_mut,
                      support::SourceSpan span);
    /// `ref as *const/mut T`: push a fresh Raw tag below-the-surface.
    Pointer retag_raw(const Pointer& p, std::uint64_t size, bool writable,
                      support::SourceSpan span);

    /// `offset(p, n)` — inbounds pointer arithmetic; one-past-end allowed.
    Pointer offset_pointer(const Pointer& p, std::int64_t byte_delta,
                           support::SourceSpan span);

    /// Leak check: any live heap allocation is an Alloc finding.
    [[nodiscard]] std::optional<Finding> check_leaks() const;

    [[nodiscard]] std::uint64_t bytes_allocated() const { return bytes_allocated_; }

  private:
    /// Shared validation pipeline; returns the allocation and base offset.
    Allocation& check_access(const Pointer& p, std::uint64_t size, bool write,
                             const AccessCtx& ctx, std::uint64_t& offset_out,
                             std::uint64_t align = 1);
    void borrow_use(Allocation& alloc, std::uint64_t offset, std::uint64_t size,
                    BorrowTag tag, bool write, support::SourceSpan span);
    void race_check(Allocation& alloc, std::uint64_t offset, std::uint64_t size,
                    bool write, const AccessCtx& ctx);
    void clear_provenance_overlapping(Allocation& alloc, std::uint64_t offset,
                                      std::uint64_t size);

    [[noreturn]] void ub(UbCategory category, std::string message,
                         support::SourceSpan span) const;

    BorrowTag fresh_tag(TagOrigin origin);
    [[nodiscard]] TagOrigin origin_of(BorrowTag tag) const;

    std::vector<Allocation> allocs_;
    std::map<BorrowTag, TagOrigin> tag_origins_;
    std::uint64_t next_addr_ = 0x10000;
    BorrowTag next_tag_ = 1;
    std::uint64_t bytes_allocated_ = 0;
};

}  // namespace rustbrain::miri
