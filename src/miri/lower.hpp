// Slot lowering — compile-time name resolution for the MiriLite interpreter.
//
// The tree-walk interpreter resolves every name at runtime: locals by a
// reverse scan over the frame's scope stack (string compares), statics
// through a std::map<std::string, AllocId>, and function references through
// Program::find_function. On the hot loop of a verification sweep that
// bookkeeping dominates. This pass resolves all of it once, at compile
// time, into dense indices:
//
//   * every `let` and parameter gets a unique frame slot (shadowing gets a
//     fresh slot; visibility follows the same lexical rules the type
//     checker enforces),
//   * every VarRef is classified Local(slot) / Static(index) /
//     Function(index),
//   * every direct call is classified Intrinsic / LocalFnPtr(slot) /
//     Direct(fn index),
//
// so the interpreter reads std::vector slots instead of scanning maps.
//
// The tables are *side tables* keyed by AST NodeId (dense after
// Program::renumber(), which lower_program performs). The AST itself is
// never annotated, so a LoweredProgram is only meaningful when paired with
// the exact Program it was built from — verify::Oracle owns such pairs
// immutably. Programs mutated after lowering (repair patches, AST edits)
// simply aren't paired with a LoweredProgram and take the tree-walk path;
// there is no stale-annotation hazard.
//
// Resolution deliberately mirrors the *interpreter's* runtime lookup order
// (which the type checker shares): intrinsics shadow everything in call
// position; then locals, then statics, then function items. Static
// initializers see themselves and statics declared before them (never later
// ones), exactly like the interpreter's in-order setup_statics.
#pragma once

#include <cstdint>
#include <vector>

#include "lang/ast.hpp"

namespace rustbrain::miri {

struct VarResolution {
    enum class Kind : std::uint8_t {
        Unresolved,  // interpreter throws the same logic_error as tree-walk
        Local,       // index = frame slot
        Static,      // index = position in Program::statics
        Function,    // index = position in Program::functions
    };
    Kind kind = Kind::Unresolved;
    std::int32_t index = -1;
};

struct CallResolution {
    enum class Kind : std::uint8_t {
        Unresolved,  // unknown callee — interpreter throws like tree-walk
        Intrinsic,   // dispatched by name (cold table, not a hot lookup)
        LocalFnPtr,  // index = frame slot holding the fn-pointer value
        Direct,      // index = position in Program::functions
    };
    Kind kind = Kind::Unresolved;
    std::int32_t index = -1;
};

struct LoweredProgram {
    /// Indexed by NodeId (ids are 1-based; slot 0 is unused).
    std::vector<VarResolution> var_refs;
    std::vector<std::int32_t> let_slots;
    std::vector<CallResolution> calls;
    /// Frame slot count per function (parameters occupy slots 0..n-1).
    std::vector<std::uint32_t> fn_slot_counts;
};

/// Lower a type-checked program. Renumbers the AST (deterministic pre-order,
/// the same numbering try_parse already produced) and builds the resolution
/// tables; the tree shape is never changed.
[[nodiscard]] LoweredProgram lower_program(lang::Program& program);

}  // namespace rustbrain::miri
