// UB findings — the currency of the whole reproduction.
//
// Categories follow the paper's evaluation axes (Figs 8/9/10/12, Table I),
// which themselves mirror the Miri test-suite directory names: alloc,
// dangling pointer, panic, provenance, uninit, both-borrow, data race,
// func.call, func.pointer, stack borrow, validity, unaligned, concurrency,
// tail call. CompileError is an extra bucket for repair iterations that
// produce code rejected by the type checker (RustAssistant's original
// problem domain).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/source_span.hpp"

namespace rustbrain::miri {

enum class UbCategory {
    Alloc,
    DanglingPointer,
    Panic,
    Provenance,
    Uninit,
    BothBorrow,
    DataRace,
    FuncCall,
    FuncPointer,
    StackBorrow,
    Validity,
    Unaligned,
    Concurrency,
    TailCall,
    CompileError,
};

constexpr std::size_t kUbCategoryCount = 15;

const char* ub_category_name(UbCategory category);
/// Paper-style label, e.g. "danglingpointer", "func.call".
const char* ub_category_label(UbCategory category);
/// All categories in a stable order (paper figure order).
const std::vector<UbCategory>& all_ub_categories();

struct Finding {
    UbCategory category = UbCategory::Panic;
    std::string message;
    support::SourceSpan span;

    [[nodiscard]] std::string to_string() const;
    /// Dedup key: category + message (spans differ across inputs).
    [[nodiscard]] std::string key() const;
};

}  // namespace rustbrain::miri
