#include "miri/value.hpp"

#include <stdexcept>

namespace rustbrain::miri {

std::uint64_t Value::bits() const {
    switch (kind_) {
        case Kind::Unit: return 0;
        case Kind::Scalar: return scalar_;
        case Kind::Ptr: return ptr_.addr;
        case Kind::Fn: return fn_index_to_addr(fn_.fn_index);
        case Kind::Array:
            throw std::logic_error("Value::bits on array value");
    }
    return 0;
}

const Pointer& Value::as_ptr() const {
    if (kind_ != Kind::Ptr) {
        throw std::logic_error("Value::as_ptr on non-pointer value");
    }
    return ptr_;
}

const FnPtrVal& Value::as_fn() const {
    if (kind_ != Kind::Fn) {
        throw std::logic_error("Value::as_fn on non-fn value");
    }
    return fn_;
}

const std::vector<Value>& Value::as_array() const {
    if (kind_ != Kind::Array || !elements_) {
        throw std::logic_error("Value::as_array on non-array value");
    }
    return *elements_;
}

std::int64_t Value::as_signed(std::uint64_t bytes) const {
    const std::uint64_t raw = bits();
    if (bytes >= 8) return static_cast<std::int64_t>(raw);
    const std::uint64_t shift = 64 - bytes * 8;
    return static_cast<std::int64_t>(raw << shift) >> shift;
}

std::uint64_t fn_index_to_addr(std::int32_t index) {
    if (index < 0) return 0;
    return kFnAddrBase + static_cast<std::uint64_t>(index) * kFnAddrStride;
}

std::int32_t fn_addr_to_index(std::uint64_t addr, std::size_t fn_count) {
    if (addr < kFnAddrBase) return FnPtrVal::kInvalidFn;
    const std::uint64_t delta = addr - kFnAddrBase;
    if (delta % kFnAddrStride != 0) return FnPtrVal::kInvalidFn;
    const std::uint64_t index = delta / kFnAddrStride;
    if (index >= fn_count) return FnPtrVal::kInvalidFn;
    return static_cast<std::int32_t>(index);
}

std::uint64_t truncate_to_type(std::uint64_t bits, const lang::Type& type) {
    const std::uint64_t size = type.size_bytes();
    if (size == 0) return 0;
    if (size >= 8) return bits;
    const std::uint64_t mask = (1ULL << (size * 8)) - 1;
    return bits & mask;
}

}  // namespace rustbrain::miri
