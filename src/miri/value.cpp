#include "miri/value.hpp"

#include <stdexcept>

namespace rustbrain::miri {

void Value::throw_bits_on_array() {
    throw std::logic_error("Value::bits on array value");
}

const Pointer& Value::as_ptr() const {
    if (kind_ != Kind::Ptr) {
        throw std::logic_error("Value::as_ptr on non-pointer value");
    }
    return ptr_;
}

const FnPtrVal& Value::as_fn() const {
    if (kind_ != Kind::Fn) {
        throw std::logic_error("Value::as_fn on non-fn value");
    }
    return fn_;
}

const std::vector<Value>& Value::as_array() const {
    if (kind_ != Kind::Array || !elements_) {
        throw std::logic_error("Value::as_array on non-array value");
    }
    return *elements_;
}


std::int32_t fn_addr_to_index(std::uint64_t addr, std::size_t fn_count) {
    if (addr < kFnAddrBase) return FnPtrVal::kInvalidFn;
    const std::uint64_t delta = addr - kFnAddrBase;
    if (delta % kFnAddrStride != 0) return FnPtrVal::kInvalidFn;
    const std::uint64_t index = delta / kFnAddrStride;
    if (index >= fn_count) return FnPtrVal::kInvalidFn;
    return static_cast<std::int32_t>(index);
}


}  // namespace rustbrain::miri
