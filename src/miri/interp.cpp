#include "miri/interp.hpp"

#include <limits>
#include <stdexcept>

#include "lang/typecheck.hpp"

namespace rustbrain::miri {

using lang::Type;

Interpreter::Interpreter(const lang::Program& program,
                         std::vector<std::int64_t> inputs, InterpLimits limits,
                         const LoweredProgram* lowering)
    : program_(program),
      inputs_(std::move(inputs)),
      limits_(limits),
      lowering_(lowering) {
    if (lowering_ != nullptr) {
        static_slots_.assign(program_.statics.size(), kNoAlloc);
    }
}

void Interpreter::panic(std::string message, support::SourceSpan span) const {
    throw PanicException{std::move(message), span};
}

void Interpreter::step(const support::SourceSpan& span) {
    if (++steps_ > limits_.max_steps) {
        panic("step limit exceeded (possible infinite loop)", span);
    }
}

VectorClock& Interpreter::current_vc() {
    if (current_thread_ == 0) return main_vc_;
    return threads_[current_thread_ - 1].vc;
}

AccessCtx Interpreter::access_ctx(support::SourceSpan span, bool atomic) const {
    AccessCtx ctx;
    ctx.tid = current_thread_;
    // Skip race bookkeeping entirely until the first spawn: single-threaded
    // programs cannot race and this keeps the common path fast.
    ctx.vc = multithreaded_
                 ? (current_thread_ == 0 ? &main_vc_
                                         : &threads_[current_thread_ - 1].vc)
                 : nullptr;
    ctx.atomic = atomic;
    ctx.span = span;
    return ctx;
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

RunResult Interpreter::run() {
    RunResult result;
    try {
        setup_statics();
        const lang::FnItem* main_fn = program_.find_function("main");
        if (main_fn == nullptr) {
            throw UbException{Finding{UbCategory::CompileError,
                                      "program has no 'main' function",
                                      {}}};
        }
        const std::int32_t main_index = static_cast<std::int32_t>(
            main_fn - program_.functions.data());
        call_function(main_index, {}, main_fn->span);

        // Post-main checks (mirrors Miri's machine teardown).
        for (const ThreadState& thread : threads_) {
            if (!thread.joined) {
                throw UbException{Finding{
                    UbCategory::Concurrency,
                    "thread leaked: spawned thread was never joined before main exited",
                    {}}};
            }
        }
        for (std::size_t i = 0; i < mutexes_.size(); ++i) {
            if (mutexes_[i].held_by.has_value()) {
                throw UbException{Finding{
                    UbCategory::Concurrency,
                    "mutex " + std::to_string(i + 1) + " still held at main exit",
                    {}}};
            }
        }
        if (auto leak = mem_.check_leaks()) {
            throw UbException{*leak};
        }
    } catch (const UbException& ub) {
        result.finding = ub.finding;
    } catch (const PanicException& p) {
        result.finding = Finding{UbCategory::Panic, p.message, p.span};
    }
    result.output = output_;
    result.steps = steps_;
    return result;
}

void Interpreter::setup_statics() {
    for (std::size_t i = 0; i < program_.statics.size(); ++i) {
        const auto& item = program_.statics[i];
        const AllocId alloc = mem_.allocate(item.type.size_bytes(),
                                            item.type.align_bytes(),
                                            AllocKind::Static, item.name, item.span);
        if (lowering_ != nullptr) {
            static_slots_[i] = alloc;
        } else {
            static_allocs_[item.name] = alloc;
        }
        const Value init = eval_expr(*item.init);
        mem_.store(mem_.base_pointer(alloc), item.type, init,
                   access_ctx(item.span));
    }
}

// ---------------------------------------------------------------------------
// Frames / locals
// ---------------------------------------------------------------------------

const Interpreter::LocalSlot* Interpreter::find_local(const std::string& name) const {
    if (frames_.empty()) return nullptr;
    const Frame& frame = frames_.back();
    for (auto scope = frame.scopes.rbegin(); scope != frame.scopes.rend(); ++scope) {
        for (auto local = scope->locals.rbegin(); local != scope->locals.rend();
             ++local) {
            if (local->name == name) return &*local;
        }
    }
    return nullptr;
}

void Interpreter::declare_local(const std::string& name, const Type& type,
                                const Value& value, support::SourceSpan span,
                                std::int32_t slot) {
    const AllocId alloc = mem_.allocate(type.size_bytes(), type.align_bytes(),
                                        AllocKind::Stack, name, span);
    mem_.store(mem_.base_pointer(alloc), type, value, access_ctx(span));
    Frame& frame = frames_.back();
    if (slot >= 0) {
        // Slot-lowered: lookups go through the dense slot vector, so the
        // scope entry skips the name/type copies and only remembers what
        // kill_scope needs.
        frame.slots[static_cast<std::size_t>(slot)] = {alloc, &type};
        frame.scopes.back().locals.push_back({{}, alloc, {}, slot});
        return;
    }
    frame.scopes.back().locals.push_back({name, alloc, type, -1});
}

void Interpreter::kill_scope(Frame& frame, Scope& scope) {
    for (const LocalSlot& local : scope.locals) {
        mem_.kill(local.alloc);
        if (local.slot >= 0) {
            frame.slots[static_cast<std::size_t>(local.slot)] = {};
        }
    }
    scope.locals.clear();
}

void Interpreter::kill_frame(Frame& frame) {
    for (auto& scope : frame.scopes) {
        kill_scope(frame, scope);
    }
    frame.scopes.clear();
}

Value Interpreter::call_function(std::int32_t fn_index, std::vector<Value> args,
                                 support::SourceSpan span) {
    if (fn_index < 0 ||
        static_cast<std::size_t>(fn_index) >= program_.functions.size()) {
        throw UbException{Finding{UbCategory::FuncCall,
                                  "calling a pointer that is not a function",
                                  span}};
    }
    if (++call_depth_ > limits_.max_call_depth) {
        --call_depth_;
        panic("stack overflow: call depth exceeded " +
                  std::to_string(limits_.max_call_depth),
              span);
    }
    Value result = Value::unit();
    // Trampoline: a `become` in the callee surfaces as Flow::TailCall and
    // replaces this frame in place, so arbitrarily long tail-call chains
    // use O(1) native stack and never grow call_depth_.
    while (true) {
        const lang::FnItem& fn =
            program_.functions[static_cast<std::size_t>(fn_index)];
        frames_.emplace_back();
        frames_.back().fn = &fn;
        frames_.back().scopes.emplace_back();
        if (lowering_ != nullptr) {
            frames_.back().slots.assign(
                lowering_->fn_slot_counts[static_cast<std::size_t>(fn_index)],
                SlotState{});
        }
        ExecResult exec;
        try {
            for (std::size_t i = 0; i < fn.params.size(); ++i) {
                // Under lowering, parameters occupy slots 0..n-1 in order.
                declare_local(fn.params[i].name, fn.params[i].type,
                              i < args.size() ? args[i] : Value::unit(), fn.span,
                              lowering_ != nullptr ? static_cast<std::int32_t>(i)
                                                   : -1);
            }
            exec = exec_block(fn.body);
        } catch (...) {
            kill_frame(frames_.back());
            frames_.pop_back();
            --call_depth_;
            throw;
        }
        kill_frame(frames_.back());
        frames_.pop_back();
        if (exec.flow == Flow::TailCall) {
            fn_index = exec.tail_fn;
            args = std::move(exec.tail_args);
            continue;
        }
        if (exec.flow == Flow::Return) {
            result = exec.value;
        }
        break;
    }
    --call_depth_;
    return result;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Interpreter::ExecResult Interpreter::exec_block(const lang::Block& block) {
    frames_.back().scopes.emplace_back();
    ExecResult result;
    for (const auto& stmt : block.statements) {
        result = exec_statement(*stmt);
        if (result.flow != Flow::Normal) break;
    }
    kill_scope(frames_.back(), frames_.back().scopes.back());
    frames_.back().scopes.pop_back();
    return result;
}

Interpreter::ExecResult Interpreter::exec_statement(const lang::Stmt& stmt) {
    step(stmt.span);
    switch (stmt.kind) {
        case lang::StmtKind::Let: {
            const auto& node = static_cast<const lang::LetStmt&>(stmt);
            const Value value = eval_expr(*node.init);
            const Type& type =
                node.declared_type ? *node.declared_type : node.init->type;
            declare_local(node.name, type, value, node.span,
                          lowering_ != nullptr ? lowering_->let_slots[node.id]
                                               : -1);
            return {};
        }
        case lang::StmtKind::Assign: {
            const auto& node = static_cast<const lang::AssignStmt&>(stmt);
            const Value value = eval_expr(*node.value);
            const Place place = eval_place(*node.place);
            mem_.store(place.ptr, place.type, value, access_ctx(node.span));
            return {};
        }
        case lang::StmtKind::Expr: {
            const auto& node = static_cast<const lang::ExprStmt&>(stmt);
            eval_expr(*node.expr);
            return {};
        }
        case lang::StmtKind::If: {
            const auto& node = static_cast<const lang::IfStmt&>(stmt);
            if (eval_expr(*node.condition).as_bool()) {
                return exec_block(node.then_block);
            }
            if (node.else_block) {
                return exec_block(*node.else_block);
            }
            return {};
        }
        case lang::StmtKind::While: {
            const auto& node = static_cast<const lang::WhileStmt&>(stmt);
            while (eval_expr(*node.condition).as_bool()) {
                step(node.span);
                ExecResult result = exec_block(node.body);
                if (result.flow != Flow::Normal) return result;
            }
            return {};
        }
        case lang::StmtKind::Return: {
            const auto& node = static_cast<const lang::ReturnStmt&>(stmt);
            ExecResult result;
            result.flow = Flow::Return;
            result.value = node.value ? eval_expr(*node.value) : Value::unit();
            return result;
        }
        case lang::StmtKind::Block:
            return exec_block(static_cast<const lang::BlockStmt&>(stmt).block);
        case lang::StmtKind::Unsafe:
            return exec_block(static_cast<const lang::UnsafeStmt&>(stmt).block);
        case lang::StmtKind::Become: {
            const auto& node = static_cast<const lang::BecomeStmt&>(stmt);
            const Value callee = eval_expr(*node.callee);
            std::vector<Value> args;
            args.reserve(node.args.size());
            for (const auto& arg : node.args) {
                args.push_back(eval_expr(*arg));
            }
            // Guaranteed tail call: the current frame's locals die *before*
            // the callee runs. Pointers into this frame become dangling, and
            // accesses to them are classified as TailCall UB. The scope
            // structure is kept so enclosing blocks unwind normally on the
            // way out to the call_function trampoline.
            for (auto& scope : frames_.back().scopes) {
                for (const LocalSlot& local : scope.locals) {
                    mem_.kill_for_tail_call(local.alloc);
                    if (local.slot >= 0) {
                        frames_.back().slots[static_cast<std::size_t>(
                            local.slot)] = {};
                    }
                }
                scope.locals.clear();
            }
            ExecResult result;
            result.flow = Flow::TailCall;
            // Validate now so a bad target is attributed to the become site.
            result.tail_fn = resolve_fn_target(callee.as_fn(), node.callee->type,
                                               node.span, /*is_become=*/true);
            result.tail_args = std::move(args);
            return result;
        }
    }
    return {};
}

// ---------------------------------------------------------------------------
// Places
// ---------------------------------------------------------------------------

Interpreter::Place Interpreter::eval_place(const lang::Expr& expr) {
    switch (expr.kind) {
        case lang::ExprKind::VarRef: {
            const auto& node = static_cast<const lang::VarRefExpr&>(expr);
            if (lowering_ != nullptr) {
                const VarResolution& res = lowering_->var_refs[node.id];
                if (res.kind == VarResolution::Kind::Local) {
                    const SlotState& slot = frames_.back().slots
                        [static_cast<std::size_t>(res.index)];
                    if (slot.alloc != kNoAlloc) {
                        return {mem_.base_pointer(slot.alloc), *slot.type};
                    }
                } else if (res.kind == VarResolution::Kind::Static) {
                    const AllocId alloc =
                        static_slots_[static_cast<std::size_t>(res.index)];
                    if (alloc != kNoAlloc) {
                        return {mem_.base_pointer(alloc),
                                program_.statics[static_cast<std::size_t>(
                                                     res.index)]
                                    .type};
                    }
                }
                throw std::logic_error("eval_place: unresolved name '" +
                                       node.name + "'");
            }
            if (const LocalSlot* local = find_local(node.name)) {
                return {mem_.base_pointer(local->alloc), local->type};
            }
            if (auto it = static_allocs_.find(node.name); it != static_allocs_.end()) {
                const lang::StaticItem* item = program_.find_static(node.name);
                return {mem_.base_pointer(it->second), item->type};
            }
            throw std::logic_error("eval_place: unresolved name '" + node.name + "'");
        }
        case lang::ExprKind::Unary: {
            const auto& node = static_cast<const lang::UnaryExpr&>(expr);
            if (node.op != lang::UnaryOp::Deref) break;
            const Value ptr_value = eval_expr(*node.operand);
            return {ptr_value.as_ptr(), expr.type};
        }
        case lang::ExprKind::Index: {
            const auto& node = static_cast<const lang::IndexExpr&>(expr);
            const Type& base_type = node.base->type;
            Pointer base_ptr;
            Type array_type = base_type;
            if (base_type.is_ref() && base_type.element().is_array()) {
                // Indexing through a reference loads the reference value.
                base_ptr = eval_expr(*node.base).as_ptr();
                array_type = base_type.element();
            } else {
                const Place base_place = eval_place(*node.base);
                base_ptr = base_place.ptr;
                array_type = base_place.type;
            }
            const Value index = eval_expr(*node.index);
            const std::uint64_t i = index.bits();
            if (i >= array_type.array_length()) {
                panic("index out of bounds: the len is " +
                          std::to_string(array_type.array_length()) +
                          " but the index is " + std::to_string(i),
                      node.span);
            }
            Pointer element_ptr = base_ptr;
            element_ptr.addr += i * array_type.element().size_bytes();
            return {element_ptr, array_type.element()};
        }
        default:
            break;
    }
    throw std::logic_error("eval_place: expression is not a place");
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

std::int64_t Interpreter::signed_value(const Value& v, const Type& t) const {
    return v.as_signed(t.size_bytes());
}

Value Interpreter::arith_result(std::uint64_t bits, const Type& type) {
    return Value::scalar(truncate_to_type(bits, type));
}

Value Interpreter::eval_expr(const lang::Expr& expr) {
    step(expr.span);
    switch (expr.kind) {
        case lang::ExprKind::IntLit: {
            const auto& node = static_cast<const lang::IntLitExpr&>(expr);
            return arith_result(node.value, expr.type);
        }
        case lang::ExprKind::BoolLit:
            return Value::boolean(static_cast<const lang::BoolLitExpr&>(expr).value);
        case lang::ExprKind::VarRef: {
            const auto& node = static_cast<const lang::VarRefExpr&>(expr);
            if (lowering_ != nullptr) {
                const VarResolution& res = lowering_->var_refs[node.id];
                switch (res.kind) {
                    case VarResolution::Kind::Local: {
                        const Place place = eval_place(expr);
                        return mem_.load(place.ptr, place.type,
                                         access_ctx(node.span));
                    }
                    case VarResolution::Kind::Static: {
                        if (static_slots_[static_cast<std::size_t>(
                                res.index)] != kNoAlloc) {
                            const Place place = eval_place(expr);
                            return mem_.load(place.ptr, place.type,
                                             access_ctx(node.span));
                        }
                        // Forward reference during static setup: like the
                        // tree-walk, fall through to a function item of the
                        // same name before giving up.
                        break;
                    }
                    case VarResolution::Kind::Function:
                        return Value::function(FnPtrVal{res.index});
                    case VarResolution::Kind::Unresolved:
                        break;
                }
                const lang::FnItem* fn = program_.find_function(node.name);
                if (fn == nullptr) {
                    throw std::logic_error("unresolved name '" + node.name +
                                           "'");
                }
                return Value::function(FnPtrVal{
                    static_cast<std::int32_t>(fn - program_.functions.data())});
            }
            if (find_local(node.name) != nullptr ||
                static_allocs_.count(node.name) != 0) {
                const Place place = eval_place(expr);
                return mem_.load(place.ptr, place.type, access_ctx(node.span));
            }
            // Function item used as a value.
            const lang::FnItem* fn = program_.find_function(node.name);
            if (fn == nullptr) {
                throw std::logic_error("unresolved name '" + node.name + "'");
            }
            return Value::function(FnPtrVal{
                static_cast<std::int32_t>(fn - program_.functions.data())});
        }
        case lang::ExprKind::Unary:
            return eval_unary(static_cast<const lang::UnaryExpr&>(expr));
        case lang::ExprKind::Binary:
            return eval_binary(static_cast<const lang::BinaryExpr&>(expr));
        case lang::ExprKind::Cast:
            return eval_cast(static_cast<const lang::CastExpr&>(expr));
        case lang::ExprKind::Index: {
            const Place place = eval_place(expr);
            return mem_.load(place.ptr, place.type, access_ctx(expr.span));
        }
        case lang::ExprKind::Call:
            return eval_call(static_cast<const lang::CallExpr&>(expr));
        case lang::ExprKind::CallPtr:
            return eval_call_ptr(static_cast<const lang::CallPtrExpr&>(expr));
        case lang::ExprKind::ArrayLit: {
            const auto& node = static_cast<const lang::ArrayLitExpr&>(expr);
            std::vector<Value> elements;
            elements.reserve(node.elements.size());
            for (const auto& element : node.elements) {
                elements.push_back(eval_expr(*element));
            }
            return Value::array(std::move(elements));
        }
        case lang::ExprKind::ArrayRepeat: {
            const auto& node = static_cast<const lang::ArrayRepeatExpr&>(expr);
            const Value element = eval_expr(*node.element);
            return Value::array(std::vector<Value>(node.count, element));
        }
    }
    return Value::unit();
}

Value Interpreter::eval_unary(const lang::UnaryExpr& expr) {
    switch (expr.op) {
        case lang::UnaryOp::Neg: {
            const Value operand = eval_expr(*expr.operand);
            const std::int64_t value = signed_value(operand, expr.operand->type);
            const std::uint64_t size = expr.type.size_bytes();
            const std::int64_t min_value =
                size >= 8 ? std::numeric_limits<std::int64_t>::min()
                          : -(1LL << (size * 8 - 1));
            if (value == min_value) {
                panic("attempt to negate with overflow", expr.span);
            }
            return arith_result(static_cast<std::uint64_t>(-value), expr.type);
        }
        case lang::UnaryOp::Not: {
            const Value operand = eval_expr(*expr.operand);
            if (expr.type.is_bool()) {
                return Value::boolean(!operand.as_bool());
            }
            return arith_result(~operand.bits(), expr.type);
        }
        case lang::UnaryOp::Deref: {
            const Place place = eval_place(expr);
            return mem_.load(place.ptr, place.type, access_ctx(expr.span));
        }
        case lang::UnaryOp::AddrOf:
        case lang::UnaryOp::AddrOfMut: {
            const Place place = eval_place(*expr.operand);
            const bool is_mut = expr.op == lang::UnaryOp::AddrOfMut;
            const Pointer tagged = mem_.retag_ref(
                place.ptr, place.type.size_bytes(), is_mut, expr.span);
            return Value::pointer(tagged);
        }
    }
    return Value::unit();
}

Value Interpreter::eval_binary(const lang::BinaryExpr& expr) {
    using lang::BinaryOp;
    // Short-circuit operators first.
    if (expr.op == BinaryOp::And) {
        if (!eval_expr(*expr.lhs).as_bool()) return Value::boolean(false);
        return Value::boolean(eval_expr(*expr.rhs).as_bool());
    }
    if (expr.op == BinaryOp::Or) {
        if (eval_expr(*expr.lhs).as_bool()) return Value::boolean(true);
        return Value::boolean(eval_expr(*expr.rhs).as_bool());
    }

    const Value lhs = eval_expr(*expr.lhs);
    const Value rhs = eval_expr(*expr.rhs);
    const Type& operand_type = expr.lhs->type;
    const std::uint64_t size = operand_type.size_bytes();
    const bool is_signed = operand_type.is_signed_integer();

    auto check_overflow = [&](std::int64_t wide, const char* op_name) {
        // `wide` is the mathematically-correct result computed in i64/u64
        // where possible; detect overflow of the *operand* width.
        if (size >= 8) return;  // handled separately below for 64-bit
        if (is_signed) {
            const std::int64_t min_value = -(1LL << (size * 8 - 1));
            const std::int64_t max_value = (1LL << (size * 8 - 1)) - 1;
            if (wide < min_value || wide > max_value) {
                panic(std::string("attempt to ") + op_name + " with overflow",
                      expr.span);
            }
        } else {
            const std::uint64_t max_value = (1ULL << (size * 8)) - 1;
            if (static_cast<std::uint64_t>(wide) > max_value || wide < 0) {
                panic(std::string("attempt to ") + op_name + " with overflow",
                      expr.span);
            }
        }
    };

    switch (expr.op) {
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul: {
            const char* name = expr.op == BinaryOp::Add   ? "add"
                               : expr.op == BinaryOp::Sub ? "subtract"
                                                          : "multiply";
            if (size >= 8) {
                // 64-bit overflow detection via builtins.
                if (is_signed) {
                    const std::int64_t a = signed_value(lhs, operand_type);
                    const std::int64_t b = signed_value(rhs, operand_type);
                    std::int64_t out = 0;
                    bool overflow = false;
                    if (expr.op == BinaryOp::Add) {
                        overflow = __builtin_add_overflow(a, b, &out);
                    } else if (expr.op == BinaryOp::Sub) {
                        overflow = __builtin_sub_overflow(a, b, &out);
                    } else {
                        overflow = __builtin_mul_overflow(a, b, &out);
                    }
                    if (overflow) {
                        panic(std::string("attempt to ") + name + " with overflow",
                              expr.span);
                    }
                    return arith_result(static_cast<std::uint64_t>(out), expr.type);
                }
                const std::uint64_t a = lhs.bits();
                const std::uint64_t b = rhs.bits();
                std::uint64_t out = 0;
                bool overflow = false;
                if (expr.op == BinaryOp::Add) {
                    overflow = __builtin_add_overflow(a, b, &out);
                } else if (expr.op == BinaryOp::Sub) {
                    overflow = __builtin_sub_overflow(a, b, &out);
                } else {
                    overflow = __builtin_mul_overflow(a, b, &out);
                }
                if (overflow) {
                    panic(std::string("attempt to ") + name + " with overflow",
                          expr.span);
                }
                return arith_result(out, expr.type);
            }
            const std::int64_t a = is_signed
                                       ? signed_value(lhs, operand_type)
                                       : static_cast<std::int64_t>(lhs.bits());
            const std::int64_t b = is_signed
                                       ? signed_value(rhs, operand_type)
                                       : static_cast<std::int64_t>(rhs.bits());
            std::int64_t wide = 0;
            if (expr.op == BinaryOp::Add) wide = a + b;
            if (expr.op == BinaryOp::Sub) wide = a - b;
            if (expr.op == BinaryOp::Mul) wide = a * b;
            check_overflow(wide, name);
            return arith_result(static_cast<std::uint64_t>(wide), expr.type);
        }
        case BinaryOp::Div:
        case BinaryOp::Rem: {
            const bool is_div = expr.op == BinaryOp::Div;
            if (rhs.bits() == 0) {
                panic(is_div ? "attempt to divide by zero"
                             : "attempt to calculate the remainder with a divisor of zero",
                      expr.span);
            }
            if (is_signed) {
                const std::int64_t a = signed_value(lhs, operand_type);
                const std::int64_t b = signed_value(rhs, operand_type);
                const std::int64_t min_value =
                    size >= 8 ? std::numeric_limits<std::int64_t>::min()
                              : -(1LL << (size * 8 - 1));
                if (a == min_value && b == -1) {
                    panic(is_div ? "attempt to divide with overflow"
                                 : "attempt to calculate the remainder with overflow",
                          expr.span);
                }
                const std::int64_t out = is_div ? a / b : a % b;
                return arith_result(static_cast<std::uint64_t>(out), expr.type);
            }
            const std::uint64_t out =
                is_div ? lhs.bits() / rhs.bits() : lhs.bits() % rhs.bits();
            return arith_result(out, expr.type);
        }
        case BinaryOp::Shl:
        case BinaryOp::Shr: {
            const std::uint64_t shift = rhs.bits();
            if (shift >= size * 8) {
                panic(expr.op == BinaryOp::Shl
                          ? "attempt to shift left with overflow"
                          : "attempt to shift right with overflow",
                      expr.span);
            }
            if (expr.op == BinaryOp::Shl) {
                return arith_result(lhs.bits() << shift, expr.type);
            }
            if (is_signed) {
                return arith_result(static_cast<std::uint64_t>(
                                        signed_value(lhs, operand_type) >>
                                        static_cast<std::int64_t>(shift)),
                                    expr.type);
            }
            return arith_result(lhs.bits() >> shift, expr.type);
        }
        case BinaryOp::BitAnd:
            return arith_result(lhs.bits() & rhs.bits(), expr.type);
        case BinaryOp::BitOr:
            return arith_result(lhs.bits() | rhs.bits(), expr.type);
        case BinaryOp::BitXor:
            return arith_result(lhs.bits() ^ rhs.bits(), expr.type);
        case BinaryOp::Eq:
            return Value::boolean(lhs.bits() == rhs.bits());
        case BinaryOp::Ne:
            return Value::boolean(lhs.bits() != rhs.bits());
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge: {
            bool result = false;
            if (is_signed) {
                const std::int64_t a = signed_value(lhs, operand_type);
                const std::int64_t b = signed_value(rhs, operand_type);
                result = expr.op == BinaryOp::Lt   ? a < b
                         : expr.op == BinaryOp::Le ? a <= b
                         : expr.op == BinaryOp::Gt ? a > b
                                                   : a >= b;
            } else {
                const std::uint64_t a = lhs.bits();
                const std::uint64_t b = rhs.bits();
                result = expr.op == BinaryOp::Lt   ? a < b
                         : expr.op == BinaryOp::Le ? a <= b
                         : expr.op == BinaryOp::Gt ? a > b
                                                   : a >= b;
            }
            return Value::boolean(result);
        }
        case BinaryOp::And:
        case BinaryOp::Or:
            break;  // handled above
    }
    return Value::unit();
}

Value Interpreter::eval_cast(const lang::CastExpr& expr) {
    const Value operand = eval_expr(*expr.operand);
    const Type& source = expr.operand->type;
    const Type& target = expr.target;

    // int/bool -> int: sign- or zero-extend the source, truncate to target.
    if ((source.is_integer() || source.is_bool()) && target.is_integer()) {
        const std::uint64_t wide =
            source.is_signed_integer()
                ? static_cast<std::uint64_t>(signed_value(operand, source))
                : operand.bits();
        return arith_result(wide, target);
    }
    // int -> raw pointer: provenance-free.
    if (source.is_integer() && target.is_raw_ptr()) {
        return Value::pointer(Pointer{operand.bits(), kNoAlloc, kNoTag});
    }
    // pointer -> int.
    if (source.is_any_pointer() && target.is_integer()) {
        return arith_result(operand.bits(), target);
    }
    // raw pointer -> raw pointer: value unchanged (tag & provenance kept).
    if (source.is_raw_ptr() && target.is_raw_ptr()) {
        return operand;
    }
    // reference -> raw pointer: a retag that pushes a Raw entry.
    if (source.is_ref() && target.is_raw_ptr()) {
        const Pointer raw = mem_.retag_raw(operand.as_ptr(),
                                           source.element().size_bytes(),
                                           target.is_mut(), expr.span);
        return Value::pointer(raw);
    }
    // fn pointer -> int.
    if (source.is_fn_ptr() && target.is_integer()) {
        return arith_result(operand.bits(), target);
    }
    // int -> fn pointer: decode the code address (maybe invalid).
    if (source.is_integer() && target.is_fn_ptr()) {
        return Value::function(FnPtrVal{
            fn_addr_to_index(operand.bits(), program_.functions.size())});
    }
    // fn pointer -> fn pointer: identity (static type changes only).
    if (source.is_fn_ptr() && target.is_fn_ptr()) {
        return operand;
    }
    throw std::logic_error("eval_cast: unexpected cast " + source.to_string() +
                           " as " + target.to_string());
}

std::int32_t Interpreter::resolve_fn_target(const FnPtrVal& fn,
                                            const Type& static_type,
                                            support::SourceSpan span,
                                            bool is_become) const {
    if (!fn.valid() ||
        static_cast<std::size_t>(fn.fn_index) >= program_.functions.size()) {
        throw UbException{
            Finding{is_become ? UbCategory::TailCall : UbCategory::FuncCall,
                    is_become
                        ? "tail call through a pointer that is not a function"
                        : "calling a pointer that is not a function",
                    span}};
    }
    const lang::FnItem& target =
        program_.functions[static_cast<std::size_t>(fn.fn_index)];
    if (static_type.is_fn_ptr() && !(target.fn_type() == static_type)) {
        throw UbException{Finding{
            is_become ? UbCategory::TailCall : UbCategory::FuncPointer,
            std::string(is_become ? "tail call" : "call") +
                " through a function pointer with the wrong signature: pointer says " +
                static_type.to_string() + " but '" + target.name + "' is " +
                target.fn_type().to_string(),
            span}};
    }
    return fn.fn_index;
}

Value Interpreter::call_fn_value(const FnPtrVal& fn, const Type& static_type,
                                 std::vector<Value> args, support::SourceSpan span,
                                 bool is_become) {
    const std::int32_t target =
        resolve_fn_target(fn, static_type, span, is_become);
    return call_function(target, std::move(args), span);
}

Value Interpreter::eval_call(const lang::CallExpr& expr) {
    if (lowering_ != nullptr) {
        const CallResolution& res = lowering_->calls[expr.id];
        if (res.kind == CallResolution::Kind::Intrinsic) {
            return eval_intrinsic(expr);
        }
        std::vector<Value> args;
        args.reserve(expr.args.size());
        for (const auto& arg : expr.args) {
            args.push_back(eval_expr(*arg));
        }
        switch (res.kind) {
            case CallResolution::Kind::LocalFnPtr: {
                const SlotState& slot =
                    frames_.back().slots[static_cast<std::size_t>(res.index)];
                if (slot.alloc == kNoAlloc) {
                    // Same invariant break as a dead VarRef slot: surface
                    // it as the tree-walk's error, never as wild memory.
                    throw std::logic_error("call to unknown function '" +
                                           expr.callee + "'");
                }
                const Value callee = mem_.load(mem_.base_pointer(slot.alloc),
                                               *slot.type, access_ctx(expr.span));
                return call_fn_value(callee.as_fn(), *slot.type,
                                     std::move(args), expr.span,
                                     /*is_become=*/false);
            }
            case CallResolution::Kind::Direct:
                return call_function(res.index, std::move(args), expr.span);
            default:
                throw std::logic_error("call to unknown function '" +
                                       expr.callee + "'");
        }
    }
    if (lang::is_intrinsic(expr.callee)) {
        return eval_intrinsic(expr);
    }
    std::vector<Value> args;
    args.reserve(expr.args.size());
    for (const auto& arg : expr.args) {
        args.push_back(eval_expr(*arg));
    }
    // Local fn-pointer variable called by name?
    if (const LocalSlot* local = find_local(expr.callee);
        local != nullptr && local->type.is_fn_ptr()) {
        const Value callee =
            mem_.load(mem_.base_pointer(local->alloc), local->type,
                      access_ctx(expr.span));
        return call_fn_value(callee.as_fn(), local->type, std::move(args),
                             expr.span, /*is_become=*/false);
    }
    const lang::FnItem* fn = program_.find_function(expr.callee);
    if (fn == nullptr) {
        throw std::logic_error("call to unknown function '" + expr.callee + "'");
    }
    return call_function(static_cast<std::int32_t>(fn - program_.functions.data()),
                         std::move(args), expr.span);
}

Value Interpreter::eval_call_ptr(const lang::CallPtrExpr& expr) {
    const Value callee = eval_expr(*expr.callee);
    std::vector<Value> args;
    args.reserve(expr.args.size());
    for (const auto& arg : expr.args) {
        args.push_back(eval_expr(*arg));
    }
    return call_fn_value(callee.as_fn(), expr.callee->type, std::move(args),
                         expr.span, /*is_become=*/false);
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

void Interpreter::run_thread(ThreadState& thread, support::SourceSpan span) {
    const ThreadId saved_thread = current_thread_;
    current_thread_ = thread.id;
    // The spawned thread body runs with its own empty frame stack; frames_
    // is a plain stack, so pushes/pops nest correctly around this call.
    const std::size_t saved_frames = frames_.size();
    const std::uint32_t saved_depth = call_depth_;
    call_depth_ = 0;
    try {
        call_function(thread.entry_fn, {}, span);
    } catch (...) {
        current_thread_ = saved_thread;
        call_depth_ = saved_depth;
        while (frames_.size() > saved_frames) {
            kill_frame(frames_.back());
            frames_.pop_back();
        }
        throw;
    }
    call_depth_ = saved_depth;
    current_thread_ = saved_thread;
    thread.executed = true;
}

// ---------------------------------------------------------------------------
// Intrinsics
// ---------------------------------------------------------------------------

Value Interpreter::eval_intrinsic(const lang::CallExpr& expr) {
    const std::string& name = expr.callee;
    std::vector<Value> args;
    args.reserve(expr.args.size());
    for (const auto& arg : expr.args) {
        args.push_back(eval_expr(*arg));
    }
    auto arg_bits = [&](std::size_t i) {
        return i < args.size() ? args[i].bits() : 0;
    };

    if (name == "alloc") {
        const std::uint64_t size = arg_bits(0);
        const std::uint64_t align = arg_bits(1);
        const AllocId id =
            mem_.allocate(size, align, AllocKind::Heap, "heap", expr.span);
        return Value::pointer(mem_.base_pointer(id));
    }
    if (name == "dealloc") {
        mem_.deallocate(args[0].as_ptr(), arg_bits(1), arg_bits(2), expr.span);
        return Value::unit();
    }
    if (name == "offset") {
        const Pointer p = args[0].as_ptr();
        const std::int64_t count = args[1].as_signed(expr.args[1]->type.size_bytes());
        const Type& ptr_type = expr.args[0]->type;
        const std::int64_t element_size =
            static_cast<std::int64_t>(ptr_type.element().size_bytes());
        return Value::pointer(
            mem_.offset_pointer(p, count * element_size, expr.span));
    }
    if (name == "print_int") {
        const Type& arg_type = expr.args[0]->type;
        if (arg_type.is_signed_integer()) {
            output_.push_back(
                std::to_string(args[0].as_signed(arg_type.size_bytes())));
        } else {
            output_.push_back(std::to_string(args[0].bits()));
        }
        return Value::unit();
    }
    if (name == "print_bool") {
        output_.push_back(args[0].as_bool() ? "true" : "false");
        return Value::unit();
    }
    if (name == "input") {
        const std::uint64_t index = arg_bits(0);
        const std::int64_t value =
            index < inputs_.size() ? inputs_[index] : 0;
        return Value::scalar(static_cast<std::uint64_t>(value));
    }
    if (name == "assert") {
        if (!args[0].as_bool()) {
            panic("assertion failed", expr.span);
        }
        return Value::unit();
    }
    if (name == "panic") {
        panic("explicit panic", expr.span);
    }
    if (name == "spawn") {
        multithreaded_ = true;
        ThreadState thread;
        thread.id = static_cast<ThreadId>(threads_.size() + 1);
        thread.entry_fn = args[0].as_fn().fn_index;
        // Happens-before: everything the parent did so far is visible.
        thread.vc = current_vc();
        thread.vc.increment(thread.id);
        current_vc().increment(current_thread_);
        threads_.push_back(std::move(thread));
        return Value::scalar(threads_.size());
    }
    if (name == "join") {
        const std::uint64_t handle = arg_bits(0);
        if (handle == 0 || handle > threads_.size()) {
            throw UbException{Finding{UbCategory::Concurrency,
                                      "joining an invalid thread handle",
                                      expr.span}};
        }
        ThreadState& thread = threads_[handle - 1];
        if (thread.joined) {
            throw UbException{Finding{UbCategory::Concurrency,
                                      "joining a thread that was already joined",
                                      expr.span}};
        }
        if (!thread.executed) {
            run_thread(thread, expr.span);
        }
        thread.joined = true;
        current_vc().merge(thread.vc);
        current_vc().increment(current_thread_);
        return Value::unit();
    }
    if (name == "mutex_new") {
        mutexes_.emplace_back();
        return Value::scalar(mutexes_.size());
    }
    if (name == "mutex_lock" || name == "mutex_unlock") {
        const std::uint64_t handle = arg_bits(0);
        if (handle == 0 || handle > mutexes_.size()) {
            throw UbException{Finding{UbCategory::Concurrency,
                                      "invalid mutex handle", expr.span}};
        }
        MutexState& mutex = mutexes_[handle - 1];
        if (name == "mutex_lock") {
            if (mutex.held_by.has_value()) {
                throw UbException{Finding{
                    UbCategory::Concurrency,
                    *mutex.held_by == current_thread_
                        ? "deadlock: thread re-locking a mutex it already holds"
                        : "deadlock: locking a mutex held by a finished thread",
                    expr.span}};
            }
            mutex.held_by = current_thread_;
            current_vc().merge(mutex.vc);  // acquire
        } else {
            if (!mutex.held_by.has_value() || *mutex.held_by != current_thread_) {
                throw UbException{Finding{UbCategory::Concurrency,
                                          "unlocking a mutex not held by this thread",
                                          expr.span}};
            }
            mutex.held_by.reset();
            mutex.vc.merge(current_vc());  // release
            current_vc().increment(current_thread_);
        }
        return Value::unit();
    }
    if (name == "atomic_load" || name == "atomic_store" ||
        name == "atomic_fetch_add") {
        const Pointer p = args[0].as_ptr();
        const Type i64_type = Type::i64();
        const bool is_load = name == "atomic_load";
        const bool is_rmw = name == "atomic_fetch_add";
        // Synchronize through the location's clock.
        const std::pair<AllocId, std::uint64_t> key{p.alloc, p.addr};
        VectorClock& loc_vc = atomic_vcs_[key];
        current_vc().merge(loc_vc);  // acquire
        Value result = Value::unit();
        if (is_load) {
            result = mem_.load(p, i64_type, access_ctx(expr.span, /*atomic=*/true));
        } else if (is_rmw) {
            const Value old =
                mem_.load(p, i64_type, access_ctx(expr.span, /*atomic=*/true));
            const std::uint64_t updated = old.bits() + args[1].bits();
            mem_.store(p, i64_type, Value::scalar(updated),
                       access_ctx(expr.span, /*atomic=*/true));
            result = old;
        } else {
            mem_.store(p, i64_type, args[1],
                       access_ctx(expr.span, /*atomic=*/true));
        }
        if (!is_load) {
            loc_vc.merge(current_vc());  // release
            current_vc().increment(current_thread_);
        }
        return result;
    }
    throw std::logic_error("unhandled intrinsic '" + name + "'");
}

}  // namespace rustbrain::miri
