#include "miri/memory.hpp"

#include <algorithm>
#include <stdexcept>

namespace rustbrain::miri {

// ---------------------------------------------------------------------------
// VectorClock
// ---------------------------------------------------------------------------

std::uint64_t VectorClock::get(ThreadId tid) const {
    return tid < clocks_.size() ? clocks_[tid] : 0;
}

void VectorClock::set(ThreadId tid, std::uint64_t value) {
    if (tid >= clocks_.size()) {
        clocks_.resize(tid + 1, 0);
    }
    clocks_[tid] = value;
}

void VectorClock::increment(ThreadId tid) { set(tid, get(tid) + 1); }

void VectorClock::merge(const VectorClock& other) {
    if (other.clocks_.size() > clocks_.size()) {
        clocks_.resize(other.clocks_.size(), 0);
    }
    for (std::size_t i = 0; i < other.clocks_.size(); ++i) {
        clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
    }
}

// ---------------------------------------------------------------------------
// MemoryModel
// ---------------------------------------------------------------------------

MemoryModel::MemoryModel() = default;

void MemoryModel::ub(UbCategory category, std::string message,
                     support::SourceSpan span) const {
    throw UbException{Finding{category, std::move(message), span}};
}

BorrowTag MemoryModel::fresh_tag(TagOrigin origin) {
    const BorrowTag tag = next_tag_++;
    tag_origins_.push_back(origin);  // tags are dense from 1
    return tag;
}

TagOrigin MemoryModel::origin_of(BorrowTag tag) const {
    if (tag == kNoTag || tag > tag_origins_.size()) return TagOrigin::Raw;
    return tag_origins_[tag - 1];
}

AllocId MemoryModel::allocate(std::uint64_t size, std::uint64_t align,
                              AllocKind kind, std::string label,
                              support::SourceSpan span) {
    return allocate_common(size, align, kind, std::move(label), span,
                           /*materialize=*/true);
}

AllocId MemoryModel::allocate_shadow(std::uint64_t size, std::uint64_t align,
                                     AllocKind kind, std::string label,
                                     support::SourceSpan span) {
    return allocate_common(size, align, kind, std::move(label), span,
                           /*materialize=*/false);
}

AllocId MemoryModel::allocate_common(std::uint64_t size, std::uint64_t align,
                                     AllocKind kind, std::string label,
                                     support::SourceSpan span,
                                     bool materialize) {
    if (align == 0 || (align & (align - 1)) != 0) {
        ub(UbCategory::Alloc,
           "invalid allocation alignment " + std::to_string(align) +
               " (must be a power of two)",
           span);
    }
    // Unit-sized locals still get a 1-byte allocation so they have identity.
    const std::uint64_t alloc_size = std::max<std::uint64_t>(size, 1);

    // Bump allocation with a 16-byte guard gap so out-of-bounds addresses
    // never alias a neighbouring allocation.
    std::uint64_t base = next_addr_;
    base = (base + align - 1) & ~(align - 1);
    next_addr_ = base + alloc_size + 16;
    if (next_addr_ >= kFnAddrBase) {
        ub(UbCategory::Alloc, "address space exhausted", span);
    }

    Allocation alloc;
    alloc.id = static_cast<AllocId>(allocs_.size() + 1);
    alloc.kind = kind;
    alloc.base = base;
    alloc.size = alloc_size;
    alloc.align = align;
    alloc.label = std::move(label);
    alloc.base_tag = fresh_tag(TagOrigin::Base);
    alloc.uninit_count = alloc_size;
    if (materialize) {
        alloc.bytes.assign(alloc_size, 0);
        alloc.init.assign(alloc_size, 0);
        alloc.borrows.resize(alloc_size);
        for (auto& stack : alloc.borrows) {
            stack.push_back({alloc.base_tag, Permission::Unique});
        }
    }
    bytes_allocated_ += alloc_size;
    allocs_.push_back(std::move(alloc));
    return allocs_.back().id;
}

void MemoryModel::throw_bad_alloc_id() {
    throw std::logic_error("MemoryModel::get: bad allocation id");
}

void MemoryModel::deallocate(const Pointer& p, std::uint64_t size,
                             std::uint64_t align, support::SourceSpan span) {
    if (p.is_null()) {
        ub(UbCategory::Alloc, "deallocating the null pointer", span);
    }
    if (!p.has_provenance()) {
        ub(UbCategory::Provenance,
           "deallocating a pointer without provenance (int-to-pointer cast)", span);
    }
    Allocation& alloc = get(p.alloc);
    if (!alloc.live) {
        ub(UbCategory::Alloc,
           "double free: allocation '" + alloc.label + "' was already deallocated",
           span);
    }
    if (alloc.kind != AllocKind::Heap) {
        ub(UbCategory::Alloc,
           "deallocating non-heap memory ('" + alloc.label + "')", span);
    }
    if (p.addr != alloc.base) {
        ub(UbCategory::Alloc,
           "dealloc pointer does not point to the start of the allocation", span);
    }
    if (size != alloc.size || align != alloc.align) {
        ub(UbCategory::Alloc,
           "dealloc layout mismatch: allocated (size " + std::to_string(alloc.size) +
               ", align " + std::to_string(alloc.align) + "), freed with (size " +
               std::to_string(size) + ", align " + std::to_string(align) + ")",
           span);
    }
    alloc.live = false;
}

void MemoryModel::kill(AllocId id) { get(id).live = false; }

void MemoryModel::kill_for_tail_call(AllocId id) {
    Allocation& alloc = get(id);
    alloc.live = false;
    alloc.tail_call_killed = true;
}

// ---------------------------------------------------------------------------
// Access validation
// ---------------------------------------------------------------------------

Allocation& MemoryModel::check_access(const Pointer& p, std::uint64_t size,
                                      bool write, const AccessCtx& ctx,
                                      std::uint64_t& offset_out,
                                      std::uint64_t align) {
    if (p.is_null()) {
        ub(UbCategory::DanglingPointer, "null pointer dereference", ctx.span);
    }
    if (!p.has_provenance()) {
        ub(UbCategory::Provenance,
           "dereferencing a pointer without provenance (created from an integer)",
           ctx.span);
    }
    Allocation& alloc = get(p.alloc);
    if (!alloc.live) {
        if (alloc.tail_call_killed) {
            ub(UbCategory::TailCall,
               "use after free: local '" + alloc.label +
                   "' died when its frame was popped by a become tail call",
               ctx.span);
        }
        ub(UbCategory::DanglingPointer,
           "use after free: allocation '" + alloc.label + "' is dead", ctx.span);
    }
    if (p.addr < alloc.base || p.addr + size > alloc.base + alloc.size) {
        ub(UbCategory::Provenance,
           "out-of-bounds access: " + std::to_string(size) + " bytes at offset " +
               std::to_string(p.addr - alloc.base) + " of " +
               std::to_string(alloc.size) + "-byte allocation '" + alloc.label + "'",
           ctx.span);
    }
    if (align > 1 && p.addr % align != 0) {
        ub(UbCategory::Unaligned,
           "accessing memory with alignment " + std::to_string(align) +
               " at misaligned address (addr % " + std::to_string(align) + " == " +
               std::to_string(p.addr % align) + ")",
           ctx.span);
    }
    const std::uint64_t offset = p.addr - alloc.base;
    borrow_use(alloc, offset, size, p.tag, write, ctx.span);
    race_check(alloc, offset, size, write, ctx);
    offset_out = offset;
    return alloc;
}

void MemoryModel::borrow_use(Allocation& alloc, std::uint64_t offset,
                             std::uint64_t size, BorrowTag tag, bool write,
                             support::SourceSpan span) {
    auto category_for = [&](BorrowTag failing) {
        return origin_of(failing) == TagOrigin::Ref ? UbCategory::BothBorrow
                                                    : UbCategory::StackBorrow;
    };
    for (std::uint64_t i = offset; i < offset + size; ++i) {
        BorrowStack& stack = alloc.borrows[i];
        // Find the topmost occurrence of the tag.
        std::ptrdiff_t found = -1;
        for (std::ptrdiff_t j = static_cast<std::ptrdiff_t>(stack.size()) - 1; j >= 0;
             --j) {
            if (stack[static_cast<std::size_t>(j)].tag == tag) {
                found = j;
                break;
            }
        }
        if (found < 0) {
            ub(category_for(tag),
               write ? "write through an invalidated borrow of '" + alloc.label +
                           "' (tag no longer on the borrow stack)"
                     : "read through an invalidated borrow of '" + alloc.label +
                           "' (tag no longer on the borrow stack)",
               span);
        }
        const BorrowEntry entry = stack[static_cast<std::size_t>(found)];
        if (write && entry.perm == Permission::SharedRO) {
            ub(category_for(tag),
               "write through a read-only borrow of '" + alloc.label + "'", span);
        }
        const std::size_t top = static_cast<std::size_t>(found) + 1;
        if (top == stack.size()) {
            continue;  // tag already topmost: nothing to invalidate
        }
        if (write) {
            // A write invalidates everything above the used tag.
            stack.shrink_to(top);
        } else {
            // A read invalidates Unique tags above but shared tags survive
            // (in order) — compact in place, no temporary.
            stack.remove_unique_above(top);
        }
    }
}

void MemoryModel::race_check(Allocation& alloc, std::uint64_t offset,
                             std::uint64_t size, bool write, const AccessCtx& ctx) {
    if (ctx.vc == nullptr) return;  // single-threaded fast path
    if (alloc.last_write.empty()) {
        // First clocked access: materialize the race-detection arrays.
        alloc.last_write.resize(alloc.size);
        alloc.reads.resize(alloc.size);
    }
    auto unordered = [&](const AccessEpoch& epoch) {
        return epoch.valid && epoch.clock > ctx.vc->get(epoch.tid);
    };
    for (std::uint64_t i = offset; i < offset + size; ++i) {
        AccessEpoch& last_write = alloc.last_write[i];
        std::vector<AccessEpoch>& reads = alloc.reads[i];
        // A racing pair needs at least one non-atomic access.
        if (unordered(last_write) && !(last_write.atomic && ctx.atomic) &&
            last_write.tid != ctx.tid) {
            ub(UbCategory::DataRace,
               std::string(write ? "write" : "read") + "-after-write data race on '" +
                   alloc.label + "' between threads " +
                   std::to_string(last_write.tid) + " and " +
                   std::to_string(ctx.tid),
               ctx.span);
        }
        if (write) {
            for (const AccessEpoch& read : reads) {
                if (unordered(read) && !(read.atomic && ctx.atomic) &&
                    read.tid != ctx.tid) {
                    ub(UbCategory::DataRace,
                       "write-after-read data race on '" + alloc.label +
                           "' between threads " + std::to_string(read.tid) + " and " +
                           std::to_string(ctx.tid),
                       ctx.span);
                }
            }
        }
        // Record this access.
        if (write) {
            last_write = {ctx.tid, ctx.vc->get(ctx.tid), ctx.atomic, true};
            reads.clear();
        } else {
            bool updated = false;
            for (AccessEpoch& read : reads) {
                if (read.tid == ctx.tid) {
                    read = {ctx.tid, ctx.vc->get(ctx.tid), ctx.atomic, true};
                    updated = true;
                    break;
                }
            }
            if (!updated) {
                reads.push_back({ctx.tid, ctx.vc->get(ctx.tid), ctx.atomic, true});
            }
        }
    }
}

void MemoryModel::clear_provenance_overlapping(Allocation& alloc,
                                               std::uint64_t offset,
                                               std::uint64_t size) {
    auto overlaps = [&](std::uint64_t entry_offset) {
        return entry_offset < offset + size && entry_offset + 8 > offset;
    };
    for (auto it = alloc.ptr_prov.begin(); it != alloc.ptr_prov.end();) {
        it = overlaps(it->first) ? alloc.ptr_prov.erase(it) : std::next(it);
    }
    for (auto it = alloc.fn_prov.begin(); it != alloc.fn_prov.end();) {
        it = overlaps(it->first) ? alloc.fn_prov.erase(it) : std::next(it);
    }
}

// ---------------------------------------------------------------------------
// Typed loads/stores
// ---------------------------------------------------------------------------

Value MemoryModel::load(const Pointer& p, const lang::Type& type,
                        const AccessCtx& ctx) {
    using lang::Type;
    const std::uint64_t size = type.size_bytes();
    if (size == 0) {
        return Value::unit();
    }
    if (type.is_array()) {
        // Element-wise load.
        std::vector<Value> elements;
        const std::uint64_t element_size = type.element().size_bytes();
        Pointer cursor = p;
        for (std::uint64_t i = 0; i < type.array_length(); ++i) {
            elements.push_back(load(cursor, type.element(), ctx));
            cursor.addr += element_size;
        }
        return Value::array(std::move(elements));
    }

    std::uint64_t offset = 0;
    Allocation* fast = try_fast_access(p, size, ctx, offset, type.align_bytes());
    if (fast != nullptr && fast->uninit_count == 0) {
        // Fully-initialized, never-retagged allocation read through its
        // base tag: the init scan and borrow/race updates are no-ops.
    } else {
        fast = nullptr;
    }
    Allocation& alloc =
        fast != nullptr
            ? *fast
            : check_access(p, size, /*write=*/false, ctx, offset,
                           type.align_bytes());
    if (fast == nullptr) {
        for (std::uint64_t i = offset; i < offset + size; ++i) {
            if (!alloc.init[i]) {
                ub(UbCategory::Uninit,
                   "reading uninitialized memory in '" + alloc.label +
                       "' at offset " + std::to_string(i),
                   ctx.span);
            }
        }
    }
    std::uint64_t bits = 0;
    for (std::uint64_t i = 0; i < size; ++i) {
        bits |= static_cast<std::uint64_t>(alloc.bytes[offset + i]) << (8 * i);
    }

    if (type.is_bool()) {
        if (bits > 1) {
            ub(UbCategory::Validity,
               "invalid bool value " + std::to_string(bits) +
                   " (must be 0 or 1) loaded from '" + alloc.label + "'",
               ctx.span);
        }
        return Value::boolean(bits != 0);
    }
    if (type.is_raw_ptr() || type.is_ref()) {
        Pointer loaded;
        if (auto it = alloc.ptr_prov.find(offset); it != alloc.ptr_prov.end()) {
            loaded = it->second;
        } else {
            loaded = Pointer{bits, kNoAlloc, kNoTag};  // provenance was erased
        }
        if (type.is_ref() && loaded.is_null()) {
            ub(UbCategory::Validity,
               "loaded a null reference from '" + alloc.label + "'", ctx.span);
        }
        return Value::pointer(loaded);
    }
    if (type.is_fn_ptr()) {
        if (auto it = alloc.fn_prov.find(offset); it != alloc.fn_prov.end()) {
            return Value::function(it->second);
        }
        return Value::function(
            FnPtrVal{fn_addr_to_index(bits, static_cast<std::size_t>(-1))});
    }
    return Value::scalar(bits);
}

void MemoryModel::store(const Pointer& p, const lang::Type& type,
                        const Value& value, const AccessCtx& ctx) {
    const std::uint64_t size = type.size_bytes();
    if (size == 0) {
        return;
    }
    if (type.is_array()) {
        const auto& elements = value.as_array();
        const std::uint64_t element_size = type.element().size_bytes();
        Pointer cursor = p;
        for (std::uint64_t i = 0; i < type.array_length() && i < elements.size();
             ++i) {
            store(cursor, type.element(), elements[i], ctx);
            cursor.addr += element_size;
        }
        return;
    }

    std::uint64_t offset = 0;
    Allocation* fast = try_fast_access(p, size, ctx, offset, type.align_bytes());
    Allocation& alloc =
        fast != nullptr
            ? *fast
            : check_access(p, size, /*write=*/true, ctx, offset,
                           type.align_bytes());
    if (!alloc.ptr_prov.empty() || !alloc.fn_prov.empty()) {
        clear_provenance_overlapping(alloc, offset, size);
    }

    const std::uint64_t bits = truncate_to_type(value.bits(), type);
    if (alloc.uninit_count == 0) {
        for (std::uint64_t i = 0; i < size; ++i) {
            alloc.bytes[offset + i] = static_cast<std::uint8_t>(bits >> (8 * i));
        }
    } else {
        for (std::uint64_t i = 0; i < size; ++i) {
            alloc.bytes[offset + i] = static_cast<std::uint8_t>(bits >> (8 * i));
            if (!alloc.init[offset + i]) {
                alloc.init[offset + i] = 1;
                --alloc.uninit_count;
            }
        }
    }
    if ((type.is_raw_ptr() || type.is_ref()) && value.kind() == Value::Kind::Ptr) {
        alloc.ptr_prov[offset] = value.as_ptr();
    }
    if (type.is_fn_ptr() && value.kind() == Value::Kind::Fn) {
        alloc.fn_prov[offset] = value.as_fn();
    }
}

// ---------------------------------------------------------------------------
// Retagging & pointer arithmetic
// ---------------------------------------------------------------------------

Pointer MemoryModel::retag_ref(const Pointer& p, std::uint64_t size, bool is_mut,
                               support::SourceSpan span) {
    if (p.is_null()) {
        ub(UbCategory::DanglingPointer, "creating a reference from a null pointer",
           span);
    }
    if (!p.has_provenance()) {
        ub(UbCategory::Provenance,
           "creating a reference from a pointer without provenance", span);
    }
    Allocation& alloc = get(p.alloc);
    if (!alloc.live) {
        ub(UbCategory::DanglingPointer,
           "creating a reference into dead allocation '" + alloc.label + "'", span);
    }
    if (p.addr < alloc.base || p.addr + size > alloc.base + alloc.size) {
        ub(UbCategory::Provenance, "reference would be out of bounds", span);
    }
    const std::uint64_t offset = p.addr - alloc.base;
    // Creating the reference is itself a use of the parent pointer.
    borrow_use(alloc, offset, std::max<std::uint64_t>(size, 1), p.tag, is_mut, span);
    const BorrowTag tag = fresh_tag(TagOrigin::Ref);
    const Permission perm = is_mut ? Permission::Unique : Permission::SharedRO;
    alloc.uniform_borrows = false;
    for (std::uint64_t i = offset; i < offset + std::max<std::uint64_t>(size, 1);
         ++i) {
        alloc.borrows[i].push_back({tag, perm});
    }
    return Pointer{p.addr, p.alloc, tag};
}

Pointer MemoryModel::retag_raw(const Pointer& p, std::uint64_t size, bool writable,
                               support::SourceSpan span) {
    if (!p.has_provenance()) {
        // Raw-from-int keeps its (non-)provenance; cast is fine, use is UB.
        return p;
    }
    Allocation& alloc = get(p.alloc);
    if (!alloc.live) {
        ub(UbCategory::DanglingPointer,
           "casting a reference into dead allocation '" + alloc.label + "'", span);
    }
    const std::uint64_t offset = p.addr - alloc.base;
    borrow_use(alloc, offset, std::max<std::uint64_t>(size, 1), p.tag, writable,
               span);
    const BorrowTag tag = fresh_tag(TagOrigin::Raw);
    const Permission perm = writable ? Permission::SharedRW : Permission::SharedRO;
    alloc.uniform_borrows = false;
    for (std::uint64_t i = offset; i < offset + std::max<std::uint64_t>(size, 1);
         ++i) {
        alloc.borrows[i].push_back({tag, perm});
    }
    return Pointer{p.addr, p.alloc, tag};
}

Pointer MemoryModel::offset_pointer(const Pointer& p, std::int64_t byte_delta,
                                    support::SourceSpan span) {
    if (!p.has_provenance()) {
        ub(UbCategory::Provenance,
           "pointer arithmetic on a pointer without provenance", span);
    }
    const Allocation& alloc = get(p.alloc);
    if (!alloc.live) {
        ub(UbCategory::DanglingPointer,
           "pointer arithmetic on dead allocation '" + alloc.label + "'", span);
    }
    const std::int64_t new_addr = static_cast<std::int64_t>(p.addr) + byte_delta;
    // Rust's offset contract: must stay within [base, base + size] inclusive.
    if (new_addr < static_cast<std::int64_t>(alloc.base) ||
        new_addr > static_cast<std::int64_t>(alloc.base + alloc.size)) {
        ub(UbCategory::Provenance,
           "pointer arithmetic out of bounds: offset " + std::to_string(byte_delta) +
               " from offset " + std::to_string(p.addr - alloc.base) + " of " +
               std::to_string(alloc.size) + "-byte allocation '" + alloc.label + "'",
           span);
    }
    return Pointer{static_cast<std::uint64_t>(new_addr), p.alloc, p.tag};
}

std::optional<Finding> MemoryModel::check_leaks() const {
    for (const auto& alloc : allocs_) {
        if (alloc.live && alloc.kind == AllocKind::Heap) {
            return Finding{UbCategory::Alloc,
                           "memory leaked: " + std::to_string(alloc.size) +
                               "-byte heap allocation was never deallocated",
                           {}};
        }
    }
    return std::nullopt;
}

}  // namespace rustbrain::miri
