// Baseline: RustAssistant-style fixed repair pipeline (Deligiannis et al.,
// ICSE 2025 — the paper's state-of-the-art LLM comparator).
//
// Faithful to its published design philosophy, transplanted to UB repair:
//   * an error-code -> fix-pattern store selects a FIXED, pre-designed
//     sequence of repair steps for each error category;
//   * one candidate path, executed in order, re-verifying after each step;
//   * on regression the pipeline discards everything and restarts from the
//     ORIGINAL code (full rollback to T0, the Fig 5a behaviour);
//   * no feature extraction, no multi-solution generation, no feedback.
#pragma once

#include <cstdint>
#include <string>

#include "core/rustbrain.hpp"
#include "dataset/case.hpp"

namespace rustbrain::baselines {

struct FixedPipelineConfig {
    std::string model = "gpt-4";
    double temperature = 0.5;
    int max_iterations = 2;
    std::uint64_t seed = 42;
};

class FixedPipeline {
  public:
    explicit FixedPipeline(FixedPipelineConfig config);

    core::CaseResult repair(const dataset::UbCase& ub_case);

  private:
    FixedPipelineConfig config_;
};

}  // namespace rustbrain::baselines
