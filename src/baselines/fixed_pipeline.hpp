// Baseline: RustAssistant-style fixed repair pipeline (Deligiannis et al.,
// ICSE 2025 — the paper's state-of-the-art LLM comparator).
//
// Faithful to its published design philosophy, transplanted to UB repair:
//   * an error-code -> fix-pattern store selects a FIXED, pre-designed
//     sequence of repair steps for each error category;
//   * one candidate path, executed in order, re-verifying after each step;
//   * on regression the pipeline discards everything and restarts from the
//     ORIGINAL code (full rollback to T0, the Fig 5a behaviour);
//   * no feature extraction, no multi-solution generation, no feedback.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/repair_engine.hpp"
#include "core/thinking_policy.hpp"
#include "dataset/case.hpp"
#include "llm/backend.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::baselines {

struct FixedPipelineConfig {
    std::string model = "gpt-4";
    double temperature = 0.5;
    int max_iterations = 2;
    std::uint64_t seed = 42;
    /// Thinking-policy spec (core::PolicyRegistry): the shared decision
    /// seam gates the fixed step walk — FastOnly caps it at one step,
    /// gate_attempt can stop or skip steps. "paper" (the default) is
    /// bit-identical to the ungated walk.
    std::string policy = "paper";
};

class FixedPipelineRepair final : public core::RepairEngine {
  public:
    explicit FixedPipelineRepair(
        FixedPipelineConfig config, llm::BackendFactory backend_factory = {},
        std::shared_ptr<const verify::Oracle> oracle = nullptr);

    core::CaseResult repair(const dataset::UbCase& ub_case) override;

    [[nodiscard]] std::string name() const override { return "fixed-pipeline"; }
    [[nodiscard]] std::string config_summary() const override;

  private:
    FixedPipelineConfig config_;
    llm::BackendFactory backend_factory_;
    std::shared_ptr<const verify::Oracle> oracle_;
    std::shared_ptr<const core::ThinkingPolicy> policy_;
};

}  // namespace rustbrain::baselines
