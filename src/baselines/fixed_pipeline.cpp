#include "baselines/fixed_pipeline.hpp"

#include <stdexcept>

#include "agents/agent_context.hpp"
#include "dataset/semantic.hpp"
#include "llm/rules.hpp"
#include "llm/simllm.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace rustbrain::baselines {

FixedPipelineRepair::FixedPipelineRepair(
    FixedPipelineConfig config, llm::BackendFactory backend_factory,
    std::shared_ptr<const verify::Oracle> oracle)
    : config_(std::move(config)),
      backend_factory_(std::move(backend_factory)),
      oracle_(std::move(oracle)),
      policy_(core::parse_policy_spec(config_.policy)) {
    if (llm::find_profile(config_.model) == nullptr) {
        throw std::invalid_argument("unknown model profile: " + config_.model);
    }
    if (!backend_factory_) backend_factory_ = llm::sim_backend_factory();
}

std::string FixedPipelineRepair::config_summary() const {
    return "model=" + config_.model +
           " temperature=" + support::format_double(config_.temperature, 2) +
           " max_iterations=" + std::to_string(config_.max_iterations) +
           " policy=" + policy_->descriptor() +
           " seed=" + std::to_string(config_.seed);
}

core::CaseResult FixedPipelineRepair::repair(const dataset::UbCase& ub_case) {
    core::CaseResult result;
    result.case_id = ub_case.id;

    const auto backend = backend_factory_(
        *llm::find_profile(config_.model),
        support::derive_seed(config_.seed, "fixed:" + ub_case.id));
    support::SimClock clock;
    core::TraceStats stats;
    core::TraceTee tee(&stats, trace_sink_);
    const verify::Oracle& oracle = verify::resolve(oracle_.get());
    agents::AgentContext context{*backend, clock};
    context.trace = &tee;
    context.temperature = config_.temperature;
    context.inputs = &ub_case.inputs;
    context.oracle = &oracle;

    const miri::MiriReport initial = context.verify(ub_case.buggy_source);
    if (initial.passed()) {
        result.pass = true;
        result.exec = true;
        result.screens = stats.screens();
        result.screen_proven_safe = stats.screen_proven_safe();
        result.screen_likely_ub = stats.screen_likely_ub();
        result.screen_unknown = stats.screen_unknown();
        result.time_ms = clock.now_ms();
        result.time_breakdown = clock.breakdown();
        return result;
    }
    const miri::Finding& finding = initial.findings.front();
    const std::size_t initial_errors = initial.error_count();

    // The pattern store: a fixed ordered step list per error category. The
    // pipeline always walks it in the same order — the rigidity the paper
    // criticizes ("numerous generic steps ... unnecessary complexity").
    // RustAssistant's store was built for rustc error codes, not UB shapes,
    // so its ordering is generic: modelled here by walking the category's
    // rules in reverse registration order (assertion-style generic patches
    // first, shape-specific semantic fixes last).
    std::vector<std::string> fixed_steps;
    for (const llm::RepairRule* rule :
         llm::rules_for_category(finding.category)) {
        fixed_steps.insert(fixed_steps.begin(), rule->id);
    }
    if (fixed_steps.empty()) {
        result.screens = stats.screens();
        result.screen_proven_safe = stats.screen_proven_safe();
        result.screen_likely_ub = stats.screen_likely_ub();
        result.screen_unknown = stats.screen_unknown();
        result.time_ms = clock.now_ms();
        result.time_breakdown = clock.breakdown();
        return result;
    }

    // The decision seam the engines share: the policy sees the fixed step
    // walk as the attempt loop.
    core::PolicySignals signals;
    signals.solution_count = fixed_steps.size();
    signals.initial_error_count = initial_errors;
    signals.error_trajectory = &stats.error_trajectory();
    context.signals = &signals;

    const core::ThinkingMode mode = policy_->choose_mode(signals);
    context.emit(core::TraceEventKind::ThinkingSwitch,
                 mode == core::ThinkingMode::FastOnly ? "fast-only" : "escalate");
    const int max_iterations = mode == core::ThinkingMode::FastOnly
                                   ? (config_.max_iterations > 0 ? 1 : 0)
                                   : config_.max_iterations;
    signals.attempts_planned = static_cast<std::size_t>(
        max_iterations < 0 ? 0 : max_iterations);

    std::string current = ub_case.buggy_source;
    int iterations = 0;
    for (std::size_t step = 0;
         step < fixed_steps.size() && iterations < max_iterations;
         ++step, ++iterations) {
        signals.attempt_index = static_cast<std::size_t>(iterations);
        signals.elapsed_ms = clock.now_ms();
        if (mode == core::ThinkingMode::Escalate) {
            const core::AttemptAction action = policy_->gate_attempt(signals);
            if (action == core::AttemptAction::Skip) {
                context.emit(core::TraceEventKind::ThinkingSwitch, "skip",
                             static_cast<std::uint64_t>(step));
                continue;
            }
            if (action == core::AttemptAction::Stop) {
                context.emit(core::TraceEventKind::ThinkingSwitch, "stop",
                             static_cast<std::uint64_t>(step));
                break;
            }
        }
        llm::PromptSpec apply;
        apply.task = "apply_rule";
        apply.fields["rule"] = fixed_steps[step];
        apply.fields["error_category"] =
            miri::ub_category_label(finding.category);
        apply.fields["error_message"] = finding.message;
        apply.code = current;
        const auto patched = context.call_llm(apply);
        const std::string candidate = llm::parse_code_block(patched.content);

        context.emit(core::TraceEventKind::StepExecuted, fixed_steps[step]);
        const miri::MiriReport report = context.verify(candidate);
        context.emit(core::TraceEventKind::StepVerified, fixed_steps[step],
                     report.error_count());

        if (report.passed()) {
            result.pass = true;
            result.exec =
                dataset::judge_semantics(candidate, ub_case, oracle)
                    .acceptable();
            result.winning_rule = fixed_steps[step];
            result.final_source = candidate;
            break;
        }
        if (report.error_count() > initial_errors) {
            signals.regression_seen = true;
            // Full rollback to the initial state (Fig 5a): every partial
            // correction is discarded and the restart is charged in full.
            clock.charge("rollback", 400.0);
            context.emit(core::TraceEventKind::Rollback, fixed_steps[step],
                         initial_errors);
            current = ub_case.buggy_source;
        } else {
            current = candidate;
        }
    }
    result.steps_executed = stats.steps_executed();
    result.rollbacks = stats.rollbacks();
    result.error_trajectory = stats.error_trajectory();
    result.llm_calls = stats.llm_calls();
    result.thinking_switches = stats.thinking_switches();
    result.escalations = stats.escalations();
    result.early_stops = stats.early_stops();
    result.attempts_skipped = stats.attempts_skipped();
    result.screens = stats.screens();
    result.screen_proven_safe = stats.screen_proven_safe();
    result.screen_likely_ub = stats.screen_likely_ub();
    result.screen_unknown = stats.screen_unknown();
    result.time_ms = clock.now_ms();
    result.time_breakdown = clock.breakdown();
    return result;
}

}  // namespace rustbrain::baselines
