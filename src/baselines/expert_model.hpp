// Baseline: human expert repair (the Thetis-Lathe expert study the paper's
// Table I compares against).
//
// Only *time* is compared in the paper — expert correctness is assumed.
// Per-category mean times are calibrated to Table I's human column; each
// case gets a deterministic jitter and a difficulty multiplier. No LLM is
// involved, so the backend boundary is unused.
#pragma once

#include <cstdint>
#include <string>

#include "core/repair_engine.hpp"
#include "dataset/case.hpp"

namespace rustbrain::baselines {

class ExpertModelRepair final : public core::RepairEngine {
  public:
    explicit ExpertModelRepair(std::uint64_t seed = 42) : seed_(seed) {}

    core::CaseResult repair(const dataset::UbCase& ub_case) override;

    [[nodiscard]] std::string name() const override { return "expert"; }
    [[nodiscard]] std::string config_summary() const override {
        return "seed=" + std::to_string(seed_);
    }

    /// Mean human repair time for a category, in virtual seconds.
    static double category_mean_seconds(miri::UbCategory category);

  private:
    std::uint64_t seed_;
};

}  // namespace rustbrain::baselines
