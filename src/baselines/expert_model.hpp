// Baseline: human expert repair (the Thetis-Lathe expert study the paper's
// Table I compares against).
//
// Only *time* is compared in the paper — expert correctness is assumed.
// Per-category mean times are calibrated to Table I's human column; each
// case gets a deterministic jitter and a difficulty multiplier.
#pragma once

#include <cstdint>

#include "core/rustbrain.hpp"
#include "dataset/case.hpp"

namespace rustbrain::baselines {

class ExpertModel {
  public:
    explicit ExpertModel(std::uint64_t seed = 42) : seed_(seed) {}

    core::CaseResult repair(const dataset::UbCase& ub_case) const;

    /// Mean human repair time for a category, in virtual seconds.
    static double category_mean_seconds(miri::UbCategory category);

  private:
    std::uint64_t seed_;
};

}  // namespace rustbrain::baselines
