// Baseline: human expert repair (the Thetis-Lathe expert study the paper's
// Table I compares against).
//
// Only *time* is compared in the paper — expert correctness is assumed.
// Per-category mean times are calibrated to Table I's human column; each
// case gets a deterministic jitter and a difficulty multiplier. No LLM is
// involved, so the backend boundary is unused.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/repair_engine.hpp"
#include "core/thinking_policy.hpp"
#include "dataset/case.hpp"

namespace rustbrain::baselines {

class ExpertModelRepair final : public core::RepairEngine {
  public:
    /// `policy` is validated through core::PolicyRegistry so uniform
    /// policy sweeps can include the expert column, but a human expert has
    /// no fast/slow switch to drive — behavior never depends on it.
    explicit ExpertModelRepair(std::uint64_t seed = 42,
                               const std::string& policy = "paper")
        : seed_(seed), policy_(core::parse_policy_spec(policy)) {}

    core::CaseResult repair(const dataset::UbCase& ub_case) override;

    [[nodiscard]] std::string name() const override { return "expert"; }
    [[nodiscard]] std::string config_summary() const override {
        return "seed=" + std::to_string(seed_) +
               " policy=" + policy_->descriptor();
    }

    /// Mean human repair time for a category, in virtual seconds.
    static double category_mean_seconds(miri::UbCategory category);

  private:
    std::uint64_t seed_;
    std::shared_ptr<const core::ThinkingPolicy> policy_;
};

}  // namespace rustbrain::baselines
