#include "baselines/expert_model.hpp"

#include "support/rng.hpp"

namespace rustbrain::baselines {

double ExpertModelRepair::category_mean_seconds(miri::UbCategory category) {
    // Calibrated to Table I's human column (seconds).
    switch (category) {
        case miri::UbCategory::StackBorrow: return 366.0;
        case miri::UbCategory::Unaligned: return 222.0;
        case miri::UbCategory::Validity: return 678.0;
        case miri::UbCategory::Alloc: return 450.0;
        case miri::UbCategory::FuncPointer: return 480.0;
        case miri::UbCategory::Provenance: return 240.0;
        case miri::UbCategory::Panic: return 336.0;
        case miri::UbCategory::FuncCall: return 1176.0;
        case miri::UbCategory::DanglingPointer: return 114.0;
        case miri::UbCategory::BothBorrow: return 762.0;
        case miri::UbCategory::Concurrency: return 144.0;
        case miri::UbCategory::DataRace: return 336.0;
        // Not in Table I; set near the study's overall average.
        case miri::UbCategory::Uninit: return 300.0;
        case miri::UbCategory::TailCall: return 520.0;
        case miri::UbCategory::CompileError: return 60.0;
    }
    return 442.0;  // the study's overall average
}

core::CaseResult ExpertModelRepair::repair(const dataset::UbCase& ub_case) {
    core::CaseResult result;
    result.case_id = ub_case.id;
    result.pass = true;
    result.exec = true;
    result.winning_rule = "human-expert";
    result.final_source = ub_case.reference_fix;

    support::Rng rng(support::derive_seed(seed_, "expert:" + ub_case.id));
    const double mean_ms = category_mean_seconds(ub_case.category) * 1000.0;
    // Difficulty multiplies effort; jitter is deterministic per case.
    const double difficulty_factor = 0.85 + 0.15 * ub_case.difficulty;
    const double jitter = 1.0 + 0.2 * (rng.next_double() - 0.5);
    result.time_ms = mean_ms * difficulty_factor * jitter;
    result.time_breakdown["human"] = result.time_ms;
    return result;
}

}  // namespace rustbrain::baselines
