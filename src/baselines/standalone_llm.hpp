// Baseline: the bare model ("GPT-4", "Claude-3.5", ... columns of Figs 8/9).
//
// One shot, optionally one retry: the model is shown the code and the Miri
// error and asked to fix it — no feature extraction, no multi-solution fast
// thinking, no agents, no rollback, no knowledge base, no feedback.
#pragma once

#include <cstdint>
#include <string>

#include "core/rustbrain.hpp"
#include "dataset/case.hpp"

namespace rustbrain::baselines {

struct StandaloneConfig {
    std::string model = "gpt-4";
    double temperature = 0.5;
    int attempts = 2;  // common practice: re-prompt once on failure
    std::uint64_t seed = 42;
};

class StandaloneLlmRepair {
  public:
    explicit StandaloneLlmRepair(StandaloneConfig config);

    core::CaseResult repair(const dataset::UbCase& ub_case);

  private:
    StandaloneConfig config_;
};

}  // namespace rustbrain::baselines
