// Baseline: the bare model ("GPT-4", "Claude-3.5", ... columns of Figs 8/9).
//
// One shot, optionally one retry: the model is shown the code and the Miri
// error and asked to fix it — no feature extraction, no multi-solution fast
// thinking, no agents, no rollback, no knowledge base, no feedback.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/repair_engine.hpp"
#include "core/thinking_policy.hpp"
#include "dataset/case.hpp"
#include "llm/backend.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::baselines {

struct StandaloneConfig {
    std::string model = "gpt-4";
    double temperature = 0.5;
    int attempts = 2;  // common practice: re-prompt once on failure
    std::uint64_t seed = 42;
    /// Thinking-policy spec (core::PolicyRegistry). The baseline has no
    /// fast/slow split, but the same decision seam gates its attempt loop:
    /// FastOnly caps it at one attempt, gate_attempt can stop it early.
    /// "paper" (the default) is bit-identical to the ungated loop.
    std::string policy = "paper";
};

class StandaloneLlmRepair final : public core::RepairEngine {
  public:
    explicit StandaloneLlmRepair(
        StandaloneConfig config, llm::BackendFactory backend_factory = {},
        std::shared_ptr<const verify::Oracle> oracle = nullptr);

    core::CaseResult repair(const dataset::UbCase& ub_case) override;

    [[nodiscard]] std::string name() const override { return "standalone"; }
    [[nodiscard]] std::string config_summary() const override;

  private:
    StandaloneConfig config_;
    llm::BackendFactory backend_factory_;
    std::shared_ptr<const verify::Oracle> oracle_;
    std::shared_ptr<const core::ThinkingPolicy> policy_;
};

}  // namespace rustbrain::baselines
