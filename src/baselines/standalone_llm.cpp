#include "baselines/standalone_llm.hpp"

#include <stdexcept>

#include "agents/agent_context.hpp"
#include "dataset/semantic.hpp"
#include "llm/simllm.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace rustbrain::baselines {

StandaloneLlmRepair::StandaloneLlmRepair(
    StandaloneConfig config, llm::BackendFactory backend_factory,
    std::shared_ptr<const verify::Oracle> oracle)
    : config_(std::move(config)),
      backend_factory_(std::move(backend_factory)),
      oracle_(std::move(oracle)),
      policy_(core::parse_policy_spec(config_.policy)) {
    if (llm::find_profile(config_.model) == nullptr) {
        throw std::invalid_argument("unknown model profile: " + config_.model);
    }
    if (!backend_factory_) backend_factory_ = llm::sim_backend_factory();
}

std::string StandaloneLlmRepair::config_summary() const {
    return "model=" + config_.model +
           " temperature=" + support::format_double(config_.temperature, 2) +
           " attempts=" + std::to_string(config_.attempts) +
           " policy=" + policy_->descriptor() +
           " seed=" + std::to_string(config_.seed);
}

core::CaseResult StandaloneLlmRepair::repair(const dataset::UbCase& ub_case) {
    core::CaseResult result;
    result.case_id = ub_case.id;

    const auto backend =
        backend_factory_(*llm::find_profile(config_.model),
                         support::derive_seed(config_.seed, "solo:" + ub_case.id));
    support::SimClock clock;
    core::TraceStats stats;
    core::TraceTee tee(&stats, trace_sink_);
    const verify::Oracle& oracle = verify::resolve(oracle_.get());
    agents::AgentContext context{*backend, clock};
    context.trace = &tee;
    context.temperature = config_.temperature;
    context.inputs = &ub_case.inputs;
    context.oracle = &oracle;

    const miri::MiriReport initial = context.verify(ub_case.buggy_source);
    if (initial.passed()) {
        result.pass = true;
        result.exec = true;
        result.screens = stats.screens();
        result.screen_proven_safe = stats.screen_proven_safe();
        result.screen_likely_ub = stats.screen_likely_ub();
        result.screen_unknown = stats.screen_unknown();
        result.time_ms = clock.now_ms();
        result.time_breakdown = clock.breakdown();
        return result;
    }
    const miri::Finding& finding = initial.findings.front();
    const std::size_t initial_errors = initial.error_count();

    // The decision seam the engines share: the policy sees the attempt
    // loop as a one-solution-per-attempt ranking.
    core::PolicySignals signals;
    signals.solution_count = static_cast<std::size_t>(
        config_.attempts < 0 ? 0 : config_.attempts);
    signals.initial_error_count = initial_errors;
    signals.error_trajectory = &stats.error_trajectory();
    context.signals = &signals;

    const core::ThinkingMode mode = policy_->choose_mode(signals);
    context.emit(core::TraceEventKind::ThinkingSwitch,
                 mode == core::ThinkingMode::FastOnly ? "fast-only" : "escalate");
    const int attempts = mode == core::ThinkingMode::FastOnly
                             ? (config_.attempts > 0 ? 1 : 0)
                             : config_.attempts;
    signals.attempts_planned = static_cast<std::size_t>(attempts < 0 ? 0 : attempts);

    std::string current = ub_case.buggy_source;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        signals.attempt_index = static_cast<std::size_t>(attempt);
        signals.elapsed_ms = clock.now_ms();
        if (mode == core::ThinkingMode::Escalate) {
            const core::AttemptAction action = policy_->gate_attempt(signals);
            if (action == core::AttemptAction::Skip) {
                context.emit(core::TraceEventKind::ThinkingSwitch, "skip",
                             static_cast<std::uint64_t>(attempt));
                continue;
            }
            if (action == core::AttemptAction::Stop) {
                context.emit(core::TraceEventKind::ThinkingSwitch, "stop",
                             static_cast<std::uint64_t>(attempt));
                break;
            }
        }
        // The bare model picks its own strategy (one candidate, no features,
        // no hints) and applies it in the same breath.
        llm::PromptSpec generate;
        generate.task = "generate_solutions";
        generate.fields["error_category"] =
            miri::ub_category_label(finding.category);
        generate.fields["error_message"] = finding.message;
        generate.fields["count"] = "1";
        generate.fields["difficulty"] = std::to_string(ub_case.difficulty);
        generate.code = current;
        const auto idea = context.call_llm(generate);
        const auto rules = llm::parse_solution_lines(idea.content);
        if (rules.empty()) break;

        llm::PromptSpec apply;
        apply.task = "apply_rule";
        apply.fields["rule"] = rules.front();
        apply.fields["error_category"] =
            miri::ub_category_label(finding.category);
        apply.fields["error_message"] = finding.message;
        apply.code = current;
        const auto patched = context.call_llm(apply);
        const std::string candidate = llm::parse_code_block(patched.content);

        context.emit(core::TraceEventKind::StepExecuted, rules.front());
        const miri::MiriReport report = context.verify(candidate);
        context.emit(core::TraceEventKind::StepVerified, rules.front(),
                     report.error_count());
        if (report.error_count() > initial_errors) signals.regression_seen = true;
        if (report.passed()) {
            result.pass = true;
            result.exec =
                dataset::judge_semantics(candidate, ub_case, oracle)
                    .acceptable();
            result.winning_rule = rules.front();
            result.final_source = candidate;
            break;
        }
        // No rollback: the (possibly worse) code is what the next attempt
        // starts from, exactly the failure mode RustBrain's rollback fixes.
        current = candidate;
    }
    result.steps_executed = stats.steps_executed();
    result.error_trajectory = stats.error_trajectory();
    result.llm_calls = stats.llm_calls();
    result.thinking_switches = stats.thinking_switches();
    result.escalations = stats.escalations();
    result.early_stops = stats.early_stops();
    result.attempts_skipped = stats.attempts_skipped();
    result.screens = stats.screens();
    result.screen_proven_safe = stats.screen_proven_safe();
    result.screen_likely_ub = stats.screen_likely_ub();
    result.screen_unknown = stats.screen_unknown();
    result.time_ms = clock.now_ms();
    result.time_breakdown = clock.breakdown();
    return result;
}

}  // namespace rustbrain::baselines
