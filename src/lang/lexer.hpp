// Lexer for mini-Rust. Produces the full token stream in one pass; lexical
// errors are reported through the DiagnosticEngine and yield Invalid tokens
// so the parser can continue and report more.
#pragma once

#include <string_view>
#include <vector>

#include "lang/token.hpp"
#include "support/diagnostics.hpp"

namespace rustbrain::lang {

class Lexer {
  public:
    Lexer(std::string_view source, support::DiagnosticEngine& diagnostics);

    /// Tokenize the whole buffer. The last token is always EndOfFile.
    std::vector<Token> tokenize();

  private:
    [[nodiscard]] bool at_end() const { return position_ >= source_.size(); }
    [[nodiscard]] char peek(std::size_t lookahead = 0) const;
    char advance();
    void skip_trivia();
    Token next_token();
    Token lex_identifier_or_keyword();
    Token lex_number();
    Token make_token(TokenKind kind, std::size_t start);
    [[nodiscard]] support::SourceSpan span_from(std::size_t start) const;

    std::string_view source_;
    support::DiagnosticEngine& diagnostics_;
    std::size_t position_ = 0;
    std::uint32_t line_ = 1;
    std::uint32_t column_ = 1;
    std::uint32_t token_line_ = 1;
    std::uint32_t token_column_ = 1;
};

}  // namespace rustbrain::lang
