#include "lang/parser.hpp"

#include <utility>

#include "lang/lexer.hpp"

namespace rustbrain::lang {

namespace {

/// Binary operator precedence, mirroring Rust. Higher binds tighter.
/// (`as` casts and unary operators are handled above this table.)
struct OpInfo {
    BinaryOp op;
    int precedence;
};

std::optional<OpInfo> binary_op_for(TokenKind kind) {
    switch (kind) {
        case TokenKind::Star: return OpInfo{BinaryOp::Mul, 10};
        case TokenKind::Slash: return OpInfo{BinaryOp::Div, 10};
        case TokenKind::Percent: return OpInfo{BinaryOp::Rem, 10};
        case TokenKind::Plus: return OpInfo{BinaryOp::Add, 9};
        case TokenKind::Minus: return OpInfo{BinaryOp::Sub, 9};
        case TokenKind::Shl: return OpInfo{BinaryOp::Shl, 8};
        case TokenKind::Shr: return OpInfo{BinaryOp::Shr, 8};
        case TokenKind::Amp: return OpInfo{BinaryOp::BitAnd, 7};
        case TokenKind::Caret: return OpInfo{BinaryOp::BitXor, 6};
        case TokenKind::Pipe: return OpInfo{BinaryOp::BitOr, 5};
        case TokenKind::EqEq: return OpInfo{BinaryOp::Eq, 4};
        case TokenKind::NotEq: return OpInfo{BinaryOp::Ne, 4};
        case TokenKind::Lt: return OpInfo{BinaryOp::Lt, 4};
        case TokenKind::Le: return OpInfo{BinaryOp::Le, 4};
        case TokenKind::Gt: return OpInfo{BinaryOp::Gt, 4};
        case TokenKind::Ge: return OpInfo{BinaryOp::Ge, 4};
        case TokenKind::AmpAmp: return OpInfo{BinaryOp::And, 3};
        case TokenKind::PipePipe: return OpInfo{BinaryOp::Or, 2};
        default: return std::nullopt;
    }
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, support::DiagnosticEngine& diagnostics)
    : tokens_(std::move(tokens)), diagnostics_(diagnostics) {
    if (tokens_.empty()) {
        Token eof;
        eof.kind = TokenKind::EndOfFile;
        tokens_.push_back(eof);
    }
}

const Token& Parser::peek(std::size_t lookahead) const {
    const std::size_t index = position_ + lookahead;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
}

const Token& Parser::advance() {
    const Token& token = peek();
    if (position_ + 1 < tokens_.size()) {
        ++position_;
    }
    return token;
}

bool Parser::match(TokenKind kind) {
    if (check(kind)) {
        advance();
        return true;
    }
    return false;
}

const Token& Parser::expect(TokenKind kind, std::string_view context) {
    if (check(kind)) {
        return advance();
    }
    diagnostics_.error("expected " + std::string(token_kind_name(kind)) + " " +
                           std::string(context) + ", found " +
                           token_kind_name(peek().kind),
                       peek().span);
    return peek();
}

void Parser::synchronize_to_item() {
    while (!check(TokenKind::EndOfFile)) {
        if (check(TokenKind::KwFn) || check(TokenKind::KwStatic) ||
            (check(TokenKind::KwUnsafe) && peek(1).is(TokenKind::KwFn))) {
            return;
        }
        advance();
    }
}

Program Parser::parse_program() {
    Program program;
    while (!check(TokenKind::EndOfFile)) {
        if (diagnostics_.error_count() > 20) {
            break;  // avoid error storms on garbage input
        }
        if (check(TokenKind::KwStatic)) {
            program.statics.push_back(parse_static());
        } else if (check(TokenKind::KwFn)) {
            advance();
            program.functions.push_back(parse_fn(/*is_unsafe=*/false));
        } else if (check(TokenKind::KwUnsafe) && peek(1).is(TokenKind::KwFn)) {
            advance();
            advance();
            program.functions.push_back(parse_fn(/*is_unsafe=*/true));
        } else {
            diagnostics_.error(std::string("expected item, found ") +
                                   token_kind_name(peek().kind),
                               peek().span);
            synchronize_to_item();
        }
    }
    return program;
}

FnItem Parser::parse_fn(bool is_unsafe) {
    FnItem fn;
    fn.is_unsafe = is_unsafe;
    const Token& name = expect(TokenKind::Identifier, "after 'fn'");
    fn.name = name.text;
    fn.span = name.span;

    expect(TokenKind::LParen, "to open parameter list");
    if (!check(TokenKind::RParen)) {
        do {
            Param param;
            const Token& param_name = expect(TokenKind::Identifier, "parameter name");
            param.name = param_name.text;
            expect(TokenKind::Colon, "after parameter name");
            param.type = parse_type();
            fn.params.push_back(std::move(param));
        } while (match(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "to close parameter list");

    if (match(TokenKind::Arrow)) {
        fn.return_type = parse_type();
    } else {
        fn.return_type = Type::unit();
    }
    expect(TokenKind::LBrace, "to open function body");
    fn.body = parse_block();
    return fn;
}

StaticItem Parser::parse_static() {
    StaticItem item;
    const Token& kw = expect(TokenKind::KwStatic, "item");
    item.span = kw.span;
    item.is_mut = match(TokenKind::KwMut);
    const Token& name = expect(TokenKind::Identifier, "static name");
    item.name = name.text;
    expect(TokenKind::Colon, "after static name");
    item.type = parse_type();
    expect(TokenKind::Eq, "static initializer");
    item.init = parse_expression();
    expect(TokenKind::Semicolon, "after static item");
    return item;
}

Type Parser::parse_type() {
    // "*const T" / "*mut T"
    if (match(TokenKind::Star)) {
        bool is_mut = false;
        if (match(TokenKind::KwMut)) {
            is_mut = true;
        } else if (match(TokenKind::KwConst)) {
            is_mut = false;
        } else {
            diagnostics_.error("raw pointer type needs 'const' or 'mut'", peek().span);
        }
        return Type::raw_ptr(parse_type(), is_mut);
    }
    // "&T" / "&mut T"
    if (match(TokenKind::Amp)) {
        const bool is_mut = match(TokenKind::KwMut);
        return Type::reference(parse_type(), is_mut);
    }
    // "[T; N]"
    if (match(TokenKind::LBracket)) {
        Type element = parse_type();
        expect(TokenKind::Semicolon, "in array type");
        const Token& len = expect(TokenKind::IntLiteral, "array length");
        expect(TokenKind::RBracket, "to close array type");
        return Type::array(std::move(element), len.int_value);
    }
    // "fn(T, ...) -> T"
    if (match(TokenKind::KwFn)) {
        expect(TokenKind::LParen, "in fn pointer type");
        std::vector<Type> params;
        if (!check(TokenKind::RParen)) {
            do {
                params.push_back(parse_type());
            } while (match(TokenKind::Comma));
        }
        expect(TokenKind::RParen, "to close fn pointer type");
        Type ret = Type::unit();
        if (match(TokenKind::Arrow)) {
            ret = parse_type();
        }
        return Type::fn_ptr(std::move(params), std::move(ret));
    }
    // "()"
    if (check(TokenKind::LParen) && peek(1).is(TokenKind::RParen)) {
        advance();
        advance();
        return Type::unit();
    }
    // scalar name
    if (check(TokenKind::Identifier)) {
        const Token& name = advance();
        ScalarKind kind;
        if (scalar_kind_from_name(name.text, kind)) {
            return Type::scalar(kind);
        }
        diagnostics_.error("unknown type '" + name.text + "'", name.span);
        return Type::unit();
    }
    diagnostics_.error(std::string("expected type, found ") +
                           token_kind_name(peek().kind),
                       peek().span);
    advance();
    return Type::unit();
}

Block Parser::parse_block() {
    // Caller has already consumed the '{'.
    Block block;
    while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
        if (diagnostics_.error_count() > 20) break;
        block.statements.push_back(parse_statement());
    }
    expect(TokenKind::RBrace, "to close block");
    return block;
}

StmtPtr Parser::parse_statement() {
    switch (peek().kind) {
        case TokenKind::KwLet:
            return parse_let();
        case TokenKind::KwIf:
            return parse_if();
        case TokenKind::KwWhile:
            return parse_while();
        case TokenKind::KwReturn:
            return parse_return();
        case TokenKind::KwBecome:
            return parse_become();
        case TokenKind::KwUnsafe: {
            auto stmt = std::make_unique<UnsafeStmt>();
            stmt->span = advance().span;
            expect(TokenKind::LBrace, "after 'unsafe'");
            stmt->block = parse_block();
            return stmt;
        }
        case TokenKind::LBrace: {
            auto stmt = std::make_unique<BlockStmt>();
            stmt->span = advance().span;
            stmt->block = parse_block();
            return stmt;
        }
        default:
            return parse_expr_or_assign();
    }
}

StmtPtr Parser::parse_let() {
    auto stmt = std::make_unique<LetStmt>();
    stmt->span = expect(TokenKind::KwLet, "statement").span;
    stmt->is_mut = match(TokenKind::KwMut);
    const Token& name = expect(TokenKind::Identifier, "after 'let'");
    stmt->name = name.text;
    if (match(TokenKind::Colon)) {
        stmt->declared_type = parse_type();
    }
    expect(TokenKind::Eq, "let initializer (mini-Rust requires initialization)");
    stmt->init = parse_expression();
    expect(TokenKind::Semicolon, "after let statement");
    return stmt;
}

StmtPtr Parser::parse_if() {
    auto stmt = std::make_unique<IfStmt>();
    stmt->span = expect(TokenKind::KwIf, "statement").span;
    stmt->condition = parse_expression();
    expect(TokenKind::LBrace, "to open if body");
    stmt->then_block = parse_block();
    if (match(TokenKind::KwElse)) {
        if (check(TokenKind::KwIf)) {
            // `else if` desugars to an else block containing a single if.
            Block else_block;
            else_block.statements.push_back(parse_if());
            stmt->else_block = std::move(else_block);
        } else {
            expect(TokenKind::LBrace, "to open else body");
            stmt->else_block = parse_block();
        }
    }
    return stmt;
}

StmtPtr Parser::parse_while() {
    auto stmt = std::make_unique<WhileStmt>();
    stmt->span = expect(TokenKind::KwWhile, "statement").span;
    stmt->condition = parse_expression();
    expect(TokenKind::LBrace, "to open while body");
    stmt->body = parse_block();
    return stmt;
}

StmtPtr Parser::parse_return() {
    auto stmt = std::make_unique<ReturnStmt>();
    stmt->span = expect(TokenKind::KwReturn, "statement").span;
    if (!check(TokenKind::Semicolon)) {
        stmt->value = parse_expression();
    }
    expect(TokenKind::Semicolon, "after return");
    return stmt;
}

StmtPtr Parser::parse_become() {
    auto stmt = std::make_unique<BecomeStmt>();
    stmt->span = expect(TokenKind::KwBecome, "statement").span;
    // The callee is a primary expression (identifier or parenthesized value),
    // followed by mandatory call arguments.
    auto callee = std::make_unique<VarRefExpr>();
    const Token& name = expect(TokenKind::Identifier, "after 'become'");
    callee->name = name.text;
    callee->span = name.span;
    stmt->callee = std::move(callee);
    expect(TokenKind::LParen, "to open become arguments");
    stmt->args = parse_call_args();
    expect(TokenKind::Semicolon, "after become");
    return stmt;
}

StmtPtr Parser::parse_expr_or_assign() {
    ExprPtr first = parse_expression();
    if (match(TokenKind::Eq)) {
        auto stmt = std::make_unique<AssignStmt>();
        stmt->span = first->span;
        stmt->place = std::move(first);
        stmt->value = parse_expression();
        expect(TokenKind::Semicolon, "after assignment");
        return stmt;
    }
    auto stmt = std::make_unique<ExprStmt>();
    stmt->span = first->span;
    stmt->expr = std::move(first);
    expect(TokenKind::Semicolon, "after expression statement");
    return stmt;
}

ExprPtr Parser::parse_expression() { return parse_binary(1); }

ExprPtr Parser::parse_binary(int min_precedence) {
    ExprPtr lhs = parse_cast();
    for (;;) {
        const auto info = binary_op_for(peek().kind);
        if (!info || info->precedence < min_precedence) {
            return lhs;
        }
        advance();
        ExprPtr rhs = parse_binary(info->precedence + 1);
        auto node = std::make_unique<BinaryExpr>();
        node->span = lhs->span.merge(rhs->span);
        node->op = info->op;
        node->lhs = std::move(lhs);
        node->rhs = std::move(rhs);
        lhs = std::move(node);
    }
}

ExprPtr Parser::parse_cast() {
    ExprPtr operand = parse_unary();
    while (match(TokenKind::KwAs)) {
        auto node = std::make_unique<CastExpr>();
        node->span = operand->span;
        node->operand = std::move(operand);
        node->target = parse_type();
        operand = std::move(node);
    }
    return operand;
}

ExprPtr Parser::parse_unary() {
    const Token& token = peek();
    switch (token.kind) {
        case TokenKind::Minus: {
            advance();
            auto node = std::make_unique<UnaryExpr>();
            node->span = token.span;
            node->op = UnaryOp::Neg;
            node->operand = parse_unary();
            return node;
        }
        case TokenKind::Bang: {
            advance();
            auto node = std::make_unique<UnaryExpr>();
            node->span = token.span;
            node->op = UnaryOp::Not;
            node->operand = parse_unary();
            return node;
        }
        case TokenKind::Star: {
            advance();
            auto node = std::make_unique<UnaryExpr>();
            node->span = token.span;
            node->op = UnaryOp::Deref;
            node->operand = parse_unary();
            return node;
        }
        case TokenKind::Amp: {
            advance();
            auto node = std::make_unique<UnaryExpr>();
            node->span = token.span;
            node->op = match(TokenKind::KwMut) ? UnaryOp::AddrOfMut : UnaryOp::AddrOf;
            node->operand = parse_unary();
            return node;
        }
        default:
            return parse_postfix();
    }
}

ExprPtr Parser::parse_postfix() {
    ExprPtr expr = parse_primary();
    for (;;) {
        if (check(TokenKind::LBracket)) {
            advance();
            auto node = std::make_unique<IndexExpr>();
            node->span = expr->span;
            node->base = std::move(expr);
            node->index = parse_expression();
            expect(TokenKind::RBracket, "to close index");
            expr = std::move(node);
        } else if (check(TokenKind::LParen) && expr->kind != ExprKind::VarRef) {
            // Indirect call through a computed fn-pointer value, e.g. (f)(1)
            // or p[0](x). Direct `name(args)` calls are handled in primary.
            advance();
            auto node = std::make_unique<CallPtrExpr>();
            node->span = expr->span;
            node->callee = std::move(expr);
            node->args = parse_call_args();
            expr = std::move(node);
        } else if (check(TokenKind::LParen) && expr->kind == ExprKind::VarRef) {
            // VarRef followed by parens only occurs via parenthesized primary
            // re-parse; plain identifiers take the Call path in parse_primary.
            advance();
            auto node = std::make_unique<CallPtrExpr>();
            node->span = expr->span;
            node->callee = std::move(expr);
            node->args = parse_call_args();
            expr = std::move(node);
        } else {
            return expr;
        }
    }
}

std::vector<ExprPtr> Parser::parse_call_args() {
    // Caller consumed '('.
    std::vector<ExprPtr> args;
    if (!check(TokenKind::RParen)) {
        do {
            args.push_back(parse_expression());
        } while (match(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "to close call arguments");
    return args;
}

ExprPtr Parser::parse_primary() {
    const Token& token = peek();
    switch (token.kind) {
        case TokenKind::IntLiteral: {
            advance();
            auto node = std::make_unique<IntLitExpr>();
            node->span = token.span;
            node->value = token.int_value;
            // Optional type suffix written as an adjacent identifier token is
            // not produced by our lexer (suffixes are part of the literal in
            // Rust); mini-Rust spells suffixed literals `5usize` which the
            // lexer splits into IntLiteral + Identifier only when the suffix
            // starts the next token — handle the common `as` pattern instead.
            return node;
        }
        case TokenKind::KwTrue:
        case TokenKind::KwFalse: {
            advance();
            auto node = std::make_unique<BoolLitExpr>();
            node->span = token.span;
            node->value = token.kind == TokenKind::KwTrue;
            return node;
        }
        case TokenKind::Identifier: {
            advance();
            if (check(TokenKind::LParen)) {
                advance();
                auto node = std::make_unique<CallExpr>();
                node->span = token.span;
                node->callee = token.text;
                node->args = parse_call_args();
                return node;
            }
            auto node = std::make_unique<VarRefExpr>();
            node->span = token.span;
            node->name = token.text;
            return node;
        }
        case TokenKind::LParen: {
            advance();
            ExprPtr inner = parse_expression();
            expect(TokenKind::RParen, "to close parenthesized expression");
            return inner;
        }
        case TokenKind::LBracket: {
            advance();
            // Array literal `[a, b, c]` or repeat `[v; n]`.
            if (check(TokenKind::RBracket)) {
                advance();
                diagnostics_.error("empty array literals are not supported", token.span);
                auto node = std::make_unique<ArrayLitExpr>();
                node->span = token.span;
                return node;
            }
            ExprPtr first = parse_expression();
            if (match(TokenKind::Semicolon)) {
                const Token& count = expect(TokenKind::IntLiteral, "array repeat count");
                expect(TokenKind::RBracket, "to close array repeat");
                auto node = std::make_unique<ArrayRepeatExpr>();
                node->span = token.span;
                node->element = std::move(first);
                node->count = count.int_value;
                return node;
            }
            auto node = std::make_unique<ArrayLitExpr>();
            node->span = token.span;
            node->elements.push_back(std::move(first));
            while (match(TokenKind::Comma)) {
                if (check(TokenKind::RBracket)) break;  // trailing comma
                node->elements.push_back(parse_expression());
            }
            expect(TokenKind::RBracket, "to close array literal");
            return node;
        }
        default: {
            diagnostics_.error(std::string("expected expression, found ") +
                                   token_kind_name(token.kind),
                               token.span);
            advance();
            auto node = std::make_unique<IntLitExpr>();
            node->span = token.span;
            return node;
        }
    }
}

Program parse_source(std::string_view source, support::DiagnosticEngine& diagnostics) {
    Lexer lexer(source, diagnostics);
    Parser parser(lexer.tokenize(), diagnostics);
    Program program = parser.parse_program();
    program.renumber();
    return program;
}

std::optional<Program> try_parse(std::string_view source, std::string* error) {
    support::DiagnosticEngine diagnostics;
    Program program = parse_source(source, diagnostics);
    if (diagnostics.has_errors()) {
        if (error != nullptr) {
            *error = diagnostics.summary();
        }
        return std::nullopt;
    }
    return program;
}

}  // namespace rustbrain::lang
