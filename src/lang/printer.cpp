#include "lang/printer.hpp"

namespace rustbrain::lang {

namespace {

std::string pad(int level) { return std::string(static_cast<std::size_t>(level) * 4, ' '); }

/// Parenthesize children conservatively: we print parentheses around any
/// binary/cast child of a binary/unary/cast/index node. The printed form is
/// therefore not minimal but always re-parses with identical structure.
bool needs_parens(const Expr& child) {
    return child.kind == ExprKind::Binary || child.kind == ExprKind::Cast;
}

std::string print_child(const Expr& child) {
    if (needs_parens(child)) {
        return "(" + print_expression(child) + ")";
    }
    return print_expression(child);
}

}  // namespace

std::string print_expression(const Expr& expr) {
    switch (expr.kind) {
        case ExprKind::IntLit: {
            const auto& node = static_cast<const IntLitExpr&>(expr);
            std::string out = std::to_string(node.value);
            if (node.suffix) {
                out += scalar_kind_name(*node.suffix);
            }
            return out;
        }
        case ExprKind::BoolLit:
            return static_cast<const BoolLitExpr&>(expr).value ? "true" : "false";
        case ExprKind::VarRef:
            return static_cast<const VarRefExpr&>(expr).name;
        case ExprKind::Unary: {
            const auto& node = static_cast<const UnaryExpr&>(expr);
            return std::string(unary_op_name(node.op)) + print_child(*node.operand);
        }
        case ExprKind::Binary: {
            const auto& node = static_cast<const BinaryExpr&>(expr);
            return print_child(*node.lhs) + " " + binary_op_name(node.op) + " " +
                   print_child(*node.rhs);
        }
        case ExprKind::Cast: {
            const auto& node = static_cast<const CastExpr&>(expr);
            return print_child(*node.operand) + " as " + node.target.to_string();
        }
        case ExprKind::Index: {
            const auto& node = static_cast<const IndexExpr&>(expr);
            return print_child(*node.base) + "[" + print_expression(*node.index) + "]";
        }
        case ExprKind::Call: {
            const auto& node = static_cast<const CallExpr&>(expr);
            std::string out = node.callee + "(";
            for (std::size_t i = 0; i < node.args.size(); ++i) {
                if (i != 0) out += ", ";
                out += print_expression(*node.args[i]);
            }
            return out + ")";
        }
        case ExprKind::CallPtr: {
            const auto& node = static_cast<const CallPtrExpr&>(expr);
            std::string out = "(" + print_expression(*node.callee) + ")(";
            for (std::size_t i = 0; i < node.args.size(); ++i) {
                if (i != 0) out += ", ";
                out += print_expression(*node.args[i]);
            }
            return out + ")";
        }
        case ExprKind::ArrayLit: {
            const auto& node = static_cast<const ArrayLitExpr&>(expr);
            std::string out = "[";
            for (std::size_t i = 0; i < node.elements.size(); ++i) {
                if (i != 0) out += ", ";
                out += print_expression(*node.elements[i]);
            }
            return out + "]";
        }
        case ExprKind::ArrayRepeat: {
            const auto& node = static_cast<const ArrayRepeatExpr&>(expr);
            return "[" + print_expression(*node.element) + "; " +
                   std::to_string(node.count) + "]";
        }
    }
    return "<?>";
}

std::string print_statement(const Stmt& stmt, int indent_level) {
    const std::string indent = pad(indent_level);
    switch (stmt.kind) {
        case StmtKind::Let: {
            const auto& node = static_cast<const LetStmt&>(stmt);
            std::string out = indent + "let ";
            if (node.is_mut) out += "mut ";
            out += node.name;
            if (node.declared_type) {
                out += ": " + node.declared_type->to_string();
            }
            out += " = " + print_expression(*node.init) + ";\n";
            return out;
        }
        case StmtKind::Assign: {
            const auto& node = static_cast<const AssignStmt&>(stmt);
            return indent + print_expression(*node.place) + " = " +
                   print_expression(*node.value) + ";\n";
        }
        case StmtKind::Expr:
            return indent + print_expression(*static_cast<const ExprStmt&>(stmt).expr) +
                   ";\n";
        case StmtKind::If: {
            const auto& node = static_cast<const IfStmt&>(stmt);
            std::string out = indent + "if " + print_expression(*node.condition) + " {\n";
            out += print_block(node.then_block, indent_level + 1);
            out += indent + "}";
            if (node.else_block) {
                out += " else {\n";
                out += print_block(*node.else_block, indent_level + 1);
                out += indent + "}";
            }
            out += "\n";
            return out;
        }
        case StmtKind::While: {
            const auto& node = static_cast<const WhileStmt&>(stmt);
            std::string out =
                indent + "while " + print_expression(*node.condition) + " {\n";
            out += print_block(node.body, indent_level + 1);
            out += indent + "}\n";
            return out;
        }
        case StmtKind::Return: {
            const auto& node = static_cast<const ReturnStmt&>(stmt);
            if (node.value) {
                return indent + "return " + print_expression(*node.value) + ";\n";
            }
            return indent + "return;\n";
        }
        case StmtKind::Block: {
            const auto& node = static_cast<const BlockStmt&>(stmt);
            std::string out = indent + "{\n";
            out += print_block(node.block, indent_level + 1);
            out += indent + "}\n";
            return out;
        }
        case StmtKind::Unsafe: {
            const auto& node = static_cast<const UnsafeStmt&>(stmt);
            std::string out = indent + "unsafe {\n";
            out += print_block(node.block, indent_level + 1);
            out += indent + "}\n";
            return out;
        }
        case StmtKind::Become: {
            const auto& node = static_cast<const BecomeStmt&>(stmt);
            std::string out = indent + "become " + print_expression(*node.callee) + "(";
            for (std::size_t i = 0; i < node.args.size(); ++i) {
                if (i != 0) out += ", ";
                out += print_expression(*node.args[i]);
            }
            out += ");\n";
            return out;
        }
    }
    return indent + "<?>;\n";
}

std::string print_block(const Block& block, int indent_level) {
    std::string out;
    for (const auto& stmt : block.statements) {
        out += print_statement(*stmt, indent_level);
    }
    return out;
}

std::string print_function(const FnItem& fn) {
    std::string out;
    if (fn.is_unsafe) out += "unsafe ";
    out += "fn " + fn.name + "(";
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
        if (i != 0) out += ", ";
        out += fn.params[i].name + ": " + fn.params[i].type.to_string();
    }
    out += ")";
    if (!fn.return_type.is_unit()) {
        out += " -> " + fn.return_type.to_string();
    }
    out += " {\n";
    out += print_block(fn.body, 1);
    out += "}\n";
    return out;
}

std::string print_program(const Program& program) {
    std::string out;
    for (const auto& item : program.statics) {
        out += "static ";
        if (item.is_mut) out += "mut ";
        out += item.name + ": " + item.type.to_string() + " = " +
               print_expression(*item.init) + ";\n";
    }
    if (!program.statics.empty()) out += "\n";
    for (std::size_t i = 0; i < program.functions.size(); ++i) {
        if (i != 0) out += "\n";
        out += print_function(program.functions[i]);
    }
    return out;
}

}  // namespace rustbrain::lang
