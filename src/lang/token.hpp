// Token model for mini-Rust.
#pragma once

#include <cstdint>
#include <string>

#include "support/source_span.hpp"

namespace rustbrain::lang {

enum class TokenKind {
    // Literals / identifiers
    Identifier,
    IntLiteral,
    // Keywords
    KwFn,
    KwLet,
    KwMut,
    KwIf,
    KwElse,
    KwWhile,
    KwReturn,
    KwUnsafe,
    KwStatic,
    KwAs,
    KwTrue,
    KwFalse,
    KwConst,
    KwBecome,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Colon,
    Arrow,      // ->
    Eq,         // =
    EqEq,       // ==
    NotEq,      // !=
    Lt,
    Gt,
    Le,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,        // &
    AmpAmp,     // &&
    Pipe,       // |
    PipePipe,   // ||
    Caret,      // ^
    Shl,        // <<
    Shr,        // >>
    Bang,       // !
    EndOfFile,
    Invalid,
};

struct Token {
    TokenKind kind = TokenKind::Invalid;
    std::string text;          // identifier spelling / literal spelling
    std::uint64_t int_value = 0;  // for IntLiteral
    support::SourceSpan span;

    [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
};

const char* token_kind_name(TokenKind kind);

}  // namespace rustbrain::lang
