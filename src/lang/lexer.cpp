#include "lang/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace rustbrain::lang {

const char* token_kind_name(TokenKind kind) {
    switch (kind) {
        case TokenKind::Identifier: return "identifier";
        case TokenKind::IntLiteral: return "integer literal";
        case TokenKind::KwFn: return "'fn'";
        case TokenKind::KwLet: return "'let'";
        case TokenKind::KwMut: return "'mut'";
        case TokenKind::KwIf: return "'if'";
        case TokenKind::KwElse: return "'else'";
        case TokenKind::KwWhile: return "'while'";
        case TokenKind::KwReturn: return "'return'";
        case TokenKind::KwUnsafe: return "'unsafe'";
        case TokenKind::KwStatic: return "'static'";
        case TokenKind::KwAs: return "'as'";
        case TokenKind::KwTrue: return "'true'";
        case TokenKind::KwFalse: return "'false'";
        case TokenKind::KwConst: return "'const'";
        case TokenKind::KwBecome: return "'become'";
        case TokenKind::LParen: return "'('";
        case TokenKind::RParen: return "')'";
        case TokenKind::LBrace: return "'{'";
        case TokenKind::RBrace: return "'}'";
        case TokenKind::LBracket: return "'['";
        case TokenKind::RBracket: return "']'";
        case TokenKind::Comma: return "','";
        case TokenKind::Semicolon: return "';'";
        case TokenKind::Colon: return "':'";
        case TokenKind::Arrow: return "'->'";
        case TokenKind::Eq: return "'='";
        case TokenKind::EqEq: return "'=='";
        case TokenKind::NotEq: return "'!='";
        case TokenKind::Lt: return "'<'";
        case TokenKind::Gt: return "'>'";
        case TokenKind::Le: return "'<='";
        case TokenKind::Ge: return "'>='";
        case TokenKind::Plus: return "'+'";
        case TokenKind::Minus: return "'-'";
        case TokenKind::Star: return "'*'";
        case TokenKind::Slash: return "'/'";
        case TokenKind::Percent: return "'%'";
        case TokenKind::Amp: return "'&'";
        case TokenKind::AmpAmp: return "'&&'";
        case TokenKind::Pipe: return "'|'";
        case TokenKind::PipePipe: return "'||'";
        case TokenKind::Caret: return "'^'";
        case TokenKind::Shl: return "'<<'";
        case TokenKind::Shr: return "'>>'";
        case TokenKind::Bang: return "'!'";
        case TokenKind::EndOfFile: return "end of file";
        case TokenKind::Invalid: return "invalid token";
    }
    return "unknown";
}

namespace {
const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
    static const std::unordered_map<std::string_view, TokenKind> table = {
        {"fn", TokenKind::KwFn},         {"let", TokenKind::KwLet},
        {"mut", TokenKind::KwMut},       {"if", TokenKind::KwIf},
        {"else", TokenKind::KwElse},     {"while", TokenKind::KwWhile},
        {"return", TokenKind::KwReturn}, {"unsafe", TokenKind::KwUnsafe},
        {"static", TokenKind::KwStatic}, {"as", TokenKind::KwAs},
        {"true", TokenKind::KwTrue},     {"false", TokenKind::KwFalse},
        {"const", TokenKind::KwConst},   {"become", TokenKind::KwBecome},
    };
    return table;
}
}  // namespace

Lexer::Lexer(std::string_view source, support::DiagnosticEngine& diagnostics)
    : source_(source), diagnostics_(diagnostics) {}

char Lexer::peek(std::size_t lookahead) const {
    const std::size_t index = position_ + lookahead;
    return index < source_.size() ? source_[index] : '\0';
}

char Lexer::advance() {
    const char c = source_[position_++];
    if (c == '\n') {
        ++line_;
        column_ = 1;
    } else {
        ++column_;
    }
    return c;
}

void Lexer::skip_trivia() {
    for (;;) {
        if (at_end()) return;
        const char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!at_end() && peek() != '\n') advance();
        } else if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
            if (!at_end()) {
                advance();
                advance();
            }
        } else {
            return;
        }
    }
}

support::SourceSpan Lexer::span_from(std::size_t start) const {
    support::SourceSpan span;
    span.begin = static_cast<std::uint32_t>(start);
    span.end = static_cast<std::uint32_t>(position_);
    span.line = token_line_;
    span.column = token_column_;
    return span;
}

Token Lexer::make_token(TokenKind kind, std::size_t start) {
    Token token;
    token.kind = kind;
    token.text = std::string(source_.substr(start, position_ - start));
    token.span = span_from(start);
    return token;
}

Token Lexer::lex_identifier_or_keyword() {
    const std::size_t start = position_;
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
        advance();
    }
    Token token = make_token(TokenKind::Identifier, start);
    const auto& table = keyword_table();
    if (auto it = table.find(token.text); it != table.end()) {
        token.kind = it->second;
    }
    return token;
}

Token Lexer::lex_number() {
    const std::size_t start = position_;
    std::uint64_t value = 0;
    bool overflow = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        bool any_digit = false;
        while (!at_end() && (std::isxdigit(static_cast<unsigned char>(peek())) ||
                             peek() == '_')) {
            const char c = advance();
            if (c == '_') continue;
            any_digit = true;
            const std::uint64_t digit =
                std::isdigit(static_cast<unsigned char>(c))
                    ? static_cast<std::uint64_t>(c - '0')
                    : static_cast<std::uint64_t>(std::tolower(c) - 'a' + 10);
            if (value > (~0ULL - digit) / 16) overflow = true;
            value = value * 16 + digit;
        }
        if (!any_digit) {
            diagnostics_.error("hex literal needs at least one digit", span_from(start));
        }
    } else {
        while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                             peek() == '_')) {
            const char c = advance();
            if (c == '_') continue;
            const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
            if (value > (~0ULL - digit) / 10) overflow = true;
            value = value * 10 + digit;
        }
    }
    Token token = make_token(TokenKind::IntLiteral, start);
    token.int_value = value;
    if (overflow) {
        diagnostics_.error("integer literal overflows u64", token.span);
    }
    return token;
}

Token Lexer::next_token() {
    skip_trivia();
    token_line_ = line_;
    token_column_ = column_;
    if (at_end()) {
        Token token;
        token.kind = TokenKind::EndOfFile;
        token.span = span_from(position_);
        return token;
    }
    const std::size_t start = position_;
    const char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        return lex_identifier_or_keyword();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
        return lex_number();
    }
    advance();
    switch (c) {
        case '(': return make_token(TokenKind::LParen, start);
        case ')': return make_token(TokenKind::RParen, start);
        case '{': return make_token(TokenKind::LBrace, start);
        case '}': return make_token(TokenKind::RBrace, start);
        case '[': return make_token(TokenKind::LBracket, start);
        case ']': return make_token(TokenKind::RBracket, start);
        case ',': return make_token(TokenKind::Comma, start);
        case ';': return make_token(TokenKind::Semicolon, start);
        case ':': return make_token(TokenKind::Colon, start);
        case '+': return make_token(TokenKind::Plus, start);
        case '%': return make_token(TokenKind::Percent, start);
        case '^': return make_token(TokenKind::Caret, start);
        case '/': return make_token(TokenKind::Slash, start);
        case '*': return make_token(TokenKind::Star, start);
        case '-':
            if (peek() == '>') {
                advance();
                return make_token(TokenKind::Arrow, start);
            }
            return make_token(TokenKind::Minus, start);
        case '=':
            if (peek() == '=') {
                advance();
                return make_token(TokenKind::EqEq, start);
            }
            return make_token(TokenKind::Eq, start);
        case '!':
            if (peek() == '=') {
                advance();
                return make_token(TokenKind::NotEq, start);
            }
            return make_token(TokenKind::Bang, start);
        case '<':
            if (peek() == '=') {
                advance();
                return make_token(TokenKind::Le, start);
            }
            if (peek() == '<') {
                advance();
                return make_token(TokenKind::Shl, start);
            }
            return make_token(TokenKind::Lt, start);
        case '>':
            if (peek() == '=') {
                advance();
                return make_token(TokenKind::Ge, start);
            }
            if (peek() == '>') {
                advance();
                return make_token(TokenKind::Shr, start);
            }
            return make_token(TokenKind::Gt, start);
        case '&':
            if (peek() == '&') {
                advance();
                return make_token(TokenKind::AmpAmp, start);
            }
            return make_token(TokenKind::Amp, start);
        case '|':
            if (peek() == '|') {
                advance();
                return make_token(TokenKind::PipePipe, start);
            }
            return make_token(TokenKind::Pipe, start);
        default: {
            Token token = make_token(TokenKind::Invalid, start);
            diagnostics_.error("unexpected character '" + std::string(1, c) + "'",
                               token.span);
            return token;
        }
    }
}

std::vector<Token> Lexer::tokenize() {
    std::vector<Token> tokens;
    for (;;) {
        Token token = next_token();
        const bool done = token.kind == TokenKind::EndOfFile;
        tokens.push_back(std::move(token));
        if (done) break;
    }
    return tokens;
}

}  // namespace rustbrain::lang
