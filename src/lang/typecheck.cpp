#include "lang/typecheck.hpp"

#include <algorithm>

namespace rustbrain::lang {

// ---------------------------------------------------------------------------
// Intrinsics
// ---------------------------------------------------------------------------

const std::vector<IntrinsicInfo>& intrinsic_table() {
    static const std::vector<IntrinsicInfo> table = {
        {"alloc", 2, false},        // alloc(size, align) -> *mut u8
        {"dealloc", 3, true},       // dealloc(ptr, size, align)
        {"offset", 2, true},        // offset(ptr, count) -> ptr
        {"print_int", 1, false},    // print_int(i64-convertible)
        {"print_bool", 1, false},   // print_bool(bool)
        {"input", 1, false},        // input(index) -> i64
        {"assert", 1, false},       // assert(bool)
        {"panic", 0, false},        // panic()
        {"spawn", 1, false},        // spawn(fn() ) -> i64 handle
        {"join", 1, false},         // join(handle)
        {"mutex_new", 0, false},    // mutex_new() -> i64
        {"mutex_lock", 1, false},   // mutex_lock(id)
        {"mutex_unlock", 1, false}, // mutex_unlock(id)
        {"atomic_load", 1, true},   // atomic_load(*const/mut i64) -> i64
        {"atomic_store", 2, true},  // atomic_store(*mut i64, i64)
        {"atomic_fetch_add", 2, true},  // atomic_fetch_add(*mut i64, i64) -> i64
    };
    return table;
}

bool is_intrinsic(const std::string& name) {
    const auto& table = intrinsic_table();
    return std::any_of(table.begin(), table.end(),
                       [&](const IntrinsicInfo& info) { return info.name == name; });
}

namespace {
const IntrinsicInfo* find_intrinsic(const std::string& name) {
    for (const auto& info : intrinsic_table()) {
        if (info.name == name) return &info;
    }
    return nullptr;
}
}  // namespace

// ---------------------------------------------------------------------------
// TypeChecker
// ---------------------------------------------------------------------------

TypeChecker::TypeChecker(support::DiagnosticEngine& diagnostics)
    : diagnostics_(diagnostics) {}

void TypeChecker::error(std::string message, support::SourceSpan span) {
    diagnostics_.error(std::move(message), span);
}

void TypeChecker::require_unsafe(const char* operation, support::SourceSpan span) {
    if (unsafe_depth_ == 0) {
        error(std::string(operation) + " requires an unsafe block or unsafe fn", span);
    }
}

bool TypeChecker::check(Program& program) {
    program_ = &program;
    const std::size_t errors_before = diagnostics_.error_count();

    // Duplicate-name detection.
    for (std::size_t i = 0; i < program.functions.size(); ++i) {
        for (std::size_t j = i + 1; j < program.functions.size(); ++j) {
            if (program.functions[i].name == program.functions[j].name) {
                error("duplicate function '" + program.functions[i].name + "'",
                      program.functions[j].span);
            }
        }
    }
    for (std::size_t i = 0; i < program.statics.size(); ++i) {
        for (std::size_t j = i + 1; j < program.statics.size(); ++j) {
            if (program.statics[i].name == program.statics[j].name) {
                error("duplicate static '" + program.statics[i].name + "'",
                      program.statics[j].span);
            }
        }
    }

    for (auto& item : program.statics) {
        check_static(item);
    }
    for (auto& fn : program.functions) {
        check_function(fn);
    }

    if (const FnItem* main_fn = program.find_function("main")) {
        if (!main_fn->params.empty()) {
            error("'main' must take no parameters", main_fn->span);
        }
        if (!main_fn->return_type.is_unit()) {
            error("'main' must return ()", main_fn->span);
        }
    } else {
        error("program has no 'main' function", {});
    }

    program_ = nullptr;
    return diagnostics_.error_count() == errors_before;
}

void TypeChecker::check_static(StaticItem& item) {
    if (!item.init) {
        error("static '" + item.name + "' lacks an initializer", item.span);
        return;
    }
    // Static initializers must be constant: int/bool literals or array
    // repeat/literal of literals (no calls, no references).
    const Expr& init = *item.init;
    const bool constant =
        init.kind == ExprKind::IntLit || init.kind == ExprKind::BoolLit ||
        init.kind == ExprKind::ArrayRepeat || init.kind == ExprKind::ArrayLit;
    if (!constant) {
        error("static initializer must be a literal or array of literals", item.span);
    }
    const Type inferred = check_expr(*item.init, item.type);
    if (!(inferred == item.type)) {
        error("static '" + item.name + "' declared " + item.type.to_string() +
                  " but initialized with " + inferred.to_string(),
              item.span);
    }
}

void TypeChecker::check_function(FnItem& fn) {
    current_fn_ = &fn;
    unsafe_depth_ = fn.is_unsafe ? 1 : 0;
    scopes_.clear();
    push_scope();
    for (const auto& param : fn.params) {
        // Parameters are immutable bindings (mini-Rust has no `mut x: T`).
        declare_local(param.name, param.type, /*is_mut=*/false);
    }
    check_block(fn.body, /*enters_scope=*/false);
    pop_scope();
    current_fn_ = nullptr;
}

void TypeChecker::declare_local(const std::string& name, Type type, bool is_mut) {
    // Shadowing is allowed (like Rust): later declarations win on lookup.
    scopes_.back().locals.push_back({name, std::move(type), is_mut});
}

const TypeChecker::LocalVar* TypeChecker::lookup_local(const std::string& name) const {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
        for (auto local = scope->locals.rbegin(); local != scope->locals.rend();
             ++local) {
            if (local->name == name) return &*local;
        }
    }
    return nullptr;
}

void TypeChecker::check_block(Block& block, bool enters_scope) {
    if (enters_scope) push_scope();
    for (auto& stmt : block.statements) {
        check_statement(*stmt);
    }
    if (enters_scope) pop_scope();
}

void TypeChecker::check_statement(Stmt& stmt) {
    switch (stmt.kind) {
        case StmtKind::Let: {
            auto& node = static_cast<LetStmt&>(stmt);
            Type init_type = check_expr(*node.init, node.declared_type);
            if (node.declared_type && !(init_type == *node.declared_type)) {
                error("let '" + node.name + "': declared " +
                          node.declared_type->to_string() + " but initializer has type " +
                          init_type.to_string(),
                      node.span);
            }
            const Type var_type = node.declared_type ? *node.declared_type : init_type;
            declare_local(node.name, var_type, node.is_mut);
            break;
        }
        case StmtKind::Assign: {
            auto& node = static_cast<AssignStmt&>(stmt);
            const Type place_type = check_expr(*node.place);
            require_place(*node.place, /*need_mut=*/true, "assignment target");
            const Type value_type = check_expr(*node.value, place_type);
            if (!(place_type == value_type)) {
                error("assignment type mismatch: place is " + place_type.to_string() +
                          ", value is " + value_type.to_string(),
                      node.span);
            }
            break;
        }
        case StmtKind::Expr: {
            auto& node = static_cast<ExprStmt&>(stmt);
            check_expr(*node.expr);
            break;
        }
        case StmtKind::If: {
            auto& node = static_cast<IfStmt&>(stmt);
            const Type cond = check_expr(*node.condition, Type::boolean());
            if (!cond.is_bool()) {
                error("if condition must be bool, found " + cond.to_string(), node.span);
            }
            check_block(node.then_block);
            if (node.else_block) check_block(*node.else_block);
            break;
        }
        case StmtKind::While: {
            auto& node = static_cast<WhileStmt&>(stmt);
            const Type cond = check_expr(*node.condition, Type::boolean());
            if (!cond.is_bool()) {
                error("while condition must be bool, found " + cond.to_string(),
                      node.span);
            }
            check_block(node.body);
            break;
        }
        case StmtKind::Return: {
            auto& node = static_cast<ReturnStmt&>(stmt);
            const Type expected = current_fn_ ? current_fn_->return_type : Type::unit();
            if (node.value) {
                const Type got = check_expr(*node.value, expected);
                if (!(got == expected)) {
                    error("return type mismatch: fn returns " + expected.to_string() +
                              ", found " + got.to_string(),
                          node.span);
                }
            } else if (!expected.is_unit()) {
                error("bare 'return' in fn returning " + expected.to_string(),
                      node.span);
            }
            break;
        }
        case StmtKind::Block:
            check_block(static_cast<BlockStmt&>(stmt).block);
            break;
        case StmtKind::Unsafe: {
            ++unsafe_depth_;
            check_block(static_cast<UnsafeStmt&>(stmt).block);
            --unsafe_depth_;
            break;
        }
        case StmtKind::Become: {
            auto& node = static_cast<BecomeStmt&>(stmt);
            const Type callee_type = check_expr(*node.callee);
            if (!callee_type.is_fn_ptr()) {
                error("become target must be a function, found " +
                          callee_type.to_string(),
                      node.span);
                break;
            }
            const auto& params = callee_type.fn_params();
            if (params.size() != node.args.size()) {
                error("become argument count mismatch", node.span);
                break;
            }
            for (std::size_t i = 0; i < node.args.size(); ++i) {
                const Type arg = check_expr(*node.args[i], params[i]);
                if (!(arg == params[i])) {
                    error("become argument " + std::to_string(i + 1) + " has type " +
                              arg.to_string() + ", expected " + params[i].to_string(),
                          node.span);
                }
            }
            // A guaranteed tail call must produce the caller's return type.
            const Type expected = current_fn_ ? current_fn_->return_type : Type::unit();
            if (!(callee_type.fn_return() == expected)) {
                error("become target returns " + callee_type.fn_return().to_string() +
                          " but the enclosing fn returns " + expected.to_string(),
                      node.span);
            }
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Places
// ---------------------------------------------------------------------------

bool TypeChecker::is_place(const Expr& expr, bool& is_mut_place) const {
    switch (expr.kind) {
        case ExprKind::VarRef: {
            const auto& node = static_cast<const VarRefExpr&>(expr);
            if (const LocalVar* local = lookup_local(node.name)) {
                is_mut_place = local->is_mut;
                return true;
            }
            if (program_ != nullptr) {
                if (const StaticItem* item = program_->find_static(node.name)) {
                    is_mut_place = item->is_mut;
                    return true;
                }
            }
            return false;
        }
        case ExprKind::Unary: {
            const auto& node = static_cast<const UnaryExpr&>(expr);
            if (node.op != UnaryOp::Deref) return false;
            const Type& pointee_holder = node.operand->type;
            if (pointee_holder.is_raw_ptr() || pointee_holder.is_ref()) {
                is_mut_place = pointee_holder.is_mut();
                return true;
            }
            return false;
        }
        case ExprKind::Index: {
            const auto& node = static_cast<const IndexExpr&>(expr);
            bool base_mut = false;
            // Indexing a reference-to-array dereferences: mutability follows
            // the reference; indexing an array place follows the place.
            if (node.base->type.is_ref()) {
                is_mut_place = node.base->type.is_mut();
                return true;
            }
            if (is_place(*node.base, base_mut)) {
                is_mut_place = base_mut;
                return true;
            }
            return false;
        }
        default:
            return false;
    }
}

void TypeChecker::require_place(const Expr& expr, bool need_mut, const char* what) {
    bool is_mut_place = false;
    if (!is_place(expr, is_mut_place)) {
        error(std::string(what) + " is not a place expression", expr.span);
        return;
    }
    if (need_mut && !is_mut_place) {
        error(std::string(what) + " is not mutable", expr.span);
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Type TypeChecker::check_expr(Expr& expr, const std::optional<Type>& expected) {
    Type result = Type::unit();
    switch (expr.kind) {
        case ExprKind::IntLit: {
            auto& node = static_cast<IntLitExpr&>(expr);
            if (node.suffix) {
                result = Type::scalar(*node.suffix);
            } else if (expected && expected->is_integer()) {
                result = *expected;
            } else {
                result = Type::i32();
            }
            break;
        }
        case ExprKind::BoolLit:
            result = Type::boolean();
            break;
        case ExprKind::VarRef: {
            auto& node = static_cast<VarRefExpr&>(expr);
            if (const LocalVar* local = lookup_local(node.name)) {
                result = local->type;
            } else if (const StaticItem* item =
                           program_ ? program_->find_static(node.name) : nullptr) {
                if (item->is_mut) {
                    require_unsafe("access to 'static mut'", node.span);
                }
                result = item->type;
            } else if (const FnItem* fn =
                           program_ ? program_->find_function(node.name) : nullptr) {
                result = fn->fn_type();
            } else {
                error("unknown name '" + node.name + "'", node.span);
                result = Type::unit();
            }
            break;
        }
        case ExprKind::Unary:
            result = check_unary(static_cast<UnaryExpr&>(expr), expected);
            break;
        case ExprKind::Binary:
            result = check_binary(static_cast<BinaryExpr&>(expr), expected);
            break;
        case ExprKind::Cast:
            result = check_cast(static_cast<CastExpr&>(expr));
            break;
        case ExprKind::Index:
            result = check_index(static_cast<IndexExpr&>(expr));
            break;
        case ExprKind::Call:
            result = check_call(static_cast<CallExpr&>(expr));
            break;
        case ExprKind::CallPtr:
            result = check_call_ptr(static_cast<CallPtrExpr&>(expr));
            break;
        case ExprKind::ArrayLit: {
            auto& node = static_cast<ArrayLitExpr&>(expr);
            std::optional<Type> element_expected;
            if (expected && expected->is_array()) {
                element_expected = expected->element();
            }
            Type element_type = Type::unit();
            for (std::size_t i = 0; i < node.elements.size(); ++i) {
                const Type t = check_expr(*node.elements[i], element_expected);
                if (i == 0) {
                    element_type = t;
                    if (!element_expected) element_expected = t;
                } else if (!(t == element_type)) {
                    error("array literal elements have mixed types", node.span);
                }
            }
            result = Type::array(element_type, node.elements.size());
            break;
        }
        case ExprKind::ArrayRepeat: {
            auto& node = static_cast<ArrayRepeatExpr&>(expr);
            std::optional<Type> element_expected;
            if (expected && expected->is_array()) {
                element_expected = expected->element();
            }
            const Type element_type = check_expr(*node.element, element_expected);
            result = Type::array(element_type, node.count);
            break;
        }
    }
    expr.type = result;
    return result;
}

Type TypeChecker::check_unary(UnaryExpr& expr, const std::optional<Type>& expected) {
    switch (expr.op) {
        case UnaryOp::Neg: {
            const Type operand = check_expr(*expr.operand, expected);
            if (!operand.is_signed_integer()) {
                error("unary '-' needs a signed integer, found " + operand.to_string(),
                      expr.span);
            }
            return operand;
        }
        case UnaryOp::Not: {
            const Type operand = check_expr(*expr.operand, expected);
            if (!operand.is_bool() && !operand.is_integer()) {
                error("unary '!' needs bool or integer, found " + operand.to_string(),
                      expr.span);
            }
            return operand;
        }
        case UnaryOp::Deref: {
            const Type operand = check_expr(*expr.operand);
            if (operand.is_raw_ptr()) {
                require_unsafe("raw pointer dereference", expr.span);
                return operand.element();
            }
            if (operand.is_ref()) {
                return operand.element();
            }
            error("cannot dereference " + operand.to_string(), expr.span);
            return Type::unit();
        }
        case UnaryOp::AddrOf:
        case UnaryOp::AddrOfMut: {
            const Type operand = check_expr(*expr.operand);
            const bool want_mut = expr.op == UnaryOp::AddrOfMut;
            require_place(*expr.operand, want_mut,
                          want_mut ? "'&mut' operand" : "'&' operand");
            return Type::reference(operand, want_mut);
        }
    }
    return Type::unit();
}

Type TypeChecker::check_binary(BinaryExpr& expr, const std::optional<Type>& expected) {
    auto is_untyped_literal = [](const Expr& e) {
        return e.kind == ExprKind::IntLit &&
               !static_cast<const IntLitExpr&>(e).suffix.has_value();
    };

    switch (expr.op) {
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul:
        case BinaryOp::Div:
        case BinaryOp::Rem:
        case BinaryOp::BitAnd:
        case BinaryOp::BitOr:
        case BinaryOp::BitXor: {
            // Infer the non-literal side first so literals adopt its type.
            Type lhs;
            Type rhs;
            if (is_untyped_literal(*expr.lhs) && !is_untyped_literal(*expr.rhs)) {
                rhs = check_expr(*expr.rhs, expected);
                lhs = check_expr(*expr.lhs, rhs);
            } else {
                lhs = check_expr(*expr.lhs, expected);
                rhs = check_expr(*expr.rhs, lhs);
            }
            if (!lhs.is_integer() || !rhs.is_integer()) {
                error(std::string("binary '") + binary_op_name(expr.op) +
                          "' needs integers, found " + lhs.to_string() + " and " +
                          rhs.to_string(),
                      expr.span);
            } else if (!(lhs == rhs)) {
                error(std::string("binary '") + binary_op_name(expr.op) +
                          "' type mismatch: " + lhs.to_string() + " vs " +
                          rhs.to_string(),
                      expr.span);
            }
            return lhs;
        }
        case BinaryOp::Shl:
        case BinaryOp::Shr: {
            const Type lhs = check_expr(*expr.lhs, expected);
            const Type rhs = check_expr(*expr.rhs, Type::usize());
            if (!lhs.is_integer() || !rhs.is_integer()) {
                error("shift needs integer operands", expr.span);
            }
            return lhs;
        }
        case BinaryOp::Eq:
        case BinaryOp::Ne:
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge: {
            Type lhs;
            Type rhs;
            if (is_untyped_literal(*expr.lhs) && !is_untyped_literal(*expr.rhs)) {
                rhs = check_expr(*expr.rhs);
                lhs = check_expr(*expr.lhs, rhs);
            } else {
                lhs = check_expr(*expr.lhs);
                rhs = check_expr(*expr.rhs, lhs);
            }
            const bool comparable =
                (lhs.is_integer() && rhs == lhs) || (lhs.is_bool() && rhs.is_bool()) ||
                (lhs.is_raw_ptr() && rhs.is_raw_ptr());
            if (!comparable) {
                error(std::string("cannot compare ") + lhs.to_string() + " with " +
                          rhs.to_string(),
                      expr.span);
            }
            return Type::boolean();
        }
        case BinaryOp::And:
        case BinaryOp::Or: {
            const Type lhs = check_expr(*expr.lhs, Type::boolean());
            const Type rhs = check_expr(*expr.rhs, Type::boolean());
            if (!lhs.is_bool() || !rhs.is_bool()) {
                error("logical operator needs bool operands", expr.span);
            }
            return Type::boolean();
        }
    }
    return Type::unit();
}

Type TypeChecker::check_cast(CastExpr& expr) {
    const Type source = check_expr(*expr.operand);
    const Type& target = expr.target;

    auto ok = [&]() { return target; };

    // int -> int, bool -> int
    if ((source.is_integer() || source.is_bool()) && target.is_integer()) return ok();
    // int -> raw pointer
    if (source.is_integer() && target.is_raw_ptr()) return ok();
    // raw pointer -> int
    if (source.is_raw_ptr() && target.is_integer()) return ok();
    // raw pointer -> raw pointer (any pointee / mutability)
    if (source.is_raw_ptr() && target.is_raw_ptr()) return ok();
    // reference -> raw pointer: same pointee, or array-to-element decay;
    // &T only casts to *const T unless the ref is mut.
    if (source.is_ref() && target.is_raw_ptr()) {
        if (target.is_mut() && !source.is_mut()) {
            error("cannot cast '&' to '*mut' (shared reference is read-only)",
                  expr.span);
            return ok();
        }
        const Type& pointee = source.element();
        if (pointee == target.element()) return ok();
        if (pointee.is_array() && pointee.element() == target.element()) {
            return ok();  // &[T; N] as *const T — mini-Rust decay extension
        }
        error("reference cast changes pointee type: " + source.to_string() + " as " +
                  target.to_string(),
              expr.span);
        return ok();
    }
    // fn pointer -> int
    if (source.is_fn_ptr() && target.is_integer()) return ok();
    // int -> fn pointer: this is how transmuted fn pointers are written.
    if (source.is_integer() && target.is_fn_ptr()) {
        require_unsafe("casting an integer to a function pointer", expr.span);
        return ok();
    }
    // fn pointer -> fn pointer (signature transmute) — unsafe.
    if (source.is_fn_ptr() && target.is_fn_ptr()) {
        if (!(source == target)) {
            require_unsafe("casting between function pointer types", expr.span);
        }
        return ok();
    }

    error("invalid cast from " + source.to_string() + " to " + target.to_string(),
          expr.span);
    return ok();
}

Type TypeChecker::check_index(IndexExpr& expr) {
    const Type base = check_expr(*expr.base);
    const Type index = check_expr(*expr.index, Type::usize());
    if (!index.is_integer()) {
        error("array index must be an integer", expr.span);
    }
    if (base.is_array()) {
        return base.element();
    }
    if (base.is_ref() && base.element().is_array()) {
        return base.element().element();
    }
    error("cannot index into " + base.to_string() +
              " (raw pointers use offset() + deref)",
          expr.span);
    return Type::unit();
}

Type TypeChecker::check_call(CallExpr& expr) {
    if (is_intrinsic(expr.callee)) {
        return check_intrinsic(expr);
    }
    const FnItem* fn = program_ ? program_->find_function(expr.callee) : nullptr;
    if (fn == nullptr) {
        // Calling through a local fn-pointer variable spelled `f(x)` —
        // resolve as an indirect call if a local with that name exists.
        if (const LocalVar* local = lookup_local(expr.callee);
            local != nullptr && local->type.is_fn_ptr()) {
            const auto& params = local->type.fn_params();
            if (params.size() != expr.args.size()) {
                error("call argument count mismatch for '" + expr.callee + "'",
                      expr.span);
                return local->type.fn_return();
            }
            for (std::size_t i = 0; i < expr.args.size(); ++i) {
                const Type arg = check_expr(*expr.args[i], params[i]);
                if (!(arg == params[i])) {
                    error("argument " + std::to_string(i + 1) + " to '" + expr.callee +
                              "' has type " + arg.to_string() + ", expected " +
                              params[i].to_string(),
                          expr.span);
                }
            }
            return local->type.fn_return();
        }
        error("call to unknown function '" + expr.callee + "'", expr.span);
        for (auto& arg : expr.args) check_expr(*arg);
        return Type::unit();
    }
    if (fn->is_unsafe) {
        require_unsafe(("call to unsafe fn '" + expr.callee + "'").c_str(), expr.span);
    }
    if (fn->params.size() != expr.args.size()) {
        error("call to '" + expr.callee + "' expects " +
                  std::to_string(fn->params.size()) + " arguments, found " +
                  std::to_string(expr.args.size()),
              expr.span);
        for (auto& arg : expr.args) check_expr(*arg);
        return fn->return_type;
    }
    for (std::size_t i = 0; i < expr.args.size(); ++i) {
        const Type arg = check_expr(*expr.args[i], fn->params[i].type);
        if (!(arg == fn->params[i].type)) {
            error("argument " + std::to_string(i + 1) + " to '" + expr.callee +
                      "' has type " + arg.to_string() + ", expected " +
                      fn->params[i].type.to_string(),
                  expr.span);
        }
    }
    return fn->return_type;
}

Type TypeChecker::check_call_ptr(CallPtrExpr& expr) {
    const Type callee = check_expr(*expr.callee);
    if (!callee.is_fn_ptr()) {
        error("indirect call target is not a function pointer: " + callee.to_string(),
              expr.span);
        for (auto& arg : expr.args) check_expr(*arg);
        return Type::unit();
    }
    const auto& params = callee.fn_params();
    if (params.size() != expr.args.size()) {
        error("indirect call argument count mismatch", expr.span);
        for (auto& arg : expr.args) check_expr(*arg);
        return callee.fn_return();
    }
    for (std::size_t i = 0; i < expr.args.size(); ++i) {
        const Type arg = check_expr(*expr.args[i], params[i]);
        if (!(arg == params[i])) {
            error("indirect call argument " + std::to_string(i + 1) + " has type " +
                      arg.to_string() + ", expected " + params[i].to_string(),
                  expr.span);
        }
    }
    return callee.fn_return();
}

Type TypeChecker::check_intrinsic(CallExpr& expr) {
    const IntrinsicInfo* info = find_intrinsic(expr.callee);
    if (info->requires_unsafe) {
        require_unsafe(("call to '" + expr.callee + "'").c_str(), expr.span);
    }
    if (expr.args.size() != info->arity) {
        error("'" + expr.callee + "' expects " + std::to_string(info->arity) +
                  " arguments, found " + std::to_string(expr.args.size()),
              expr.span);
        for (auto& arg : expr.args) check_expr(*arg);
        // Fall through with a best-effort return type below.
    }

    auto arg_type = [&](std::size_t i, const std::optional<Type>& expected) {
        return i < expr.args.size() ? check_expr(*expr.args[i], expected) : Type::unit();
    };

    const std::string& name = expr.callee;
    if (name == "alloc") {
        const Type size = arg_type(0, Type::usize());
        const Type align = arg_type(1, Type::usize());
        if (!size.is_integer() || !align.is_integer()) {
            error("alloc(size, align) takes integers", expr.span);
        }
        return Type::raw_ptr(Type::u8(), /*is_mut=*/true);
    }
    if (name == "dealloc") {
        const Type ptr = arg_type(0, std::nullopt);
        const Type size = arg_type(1, Type::usize());
        const Type align = arg_type(2, Type::usize());
        if (!ptr.is_raw_ptr()) {
            error("dealloc's first argument must be a raw pointer", expr.span);
        }
        if (!size.is_integer() || !align.is_integer()) {
            error("dealloc(ptr, size, align) takes integer size/align", expr.span);
        }
        return Type::unit();
    }
    if (name == "offset") {
        const Type ptr = arg_type(0, std::nullopt);
        const Type count = arg_type(1, Type::scalar(ScalarKind::Isize));
        if (!ptr.is_raw_ptr()) {
            error("offset's first argument must be a raw pointer", expr.span);
            return Type::raw_ptr(Type::u8(), false);
        }
        if (!count.is_integer()) {
            error("offset's count must be an integer", expr.span);
        }
        return ptr;
    }
    if (name == "print_int") {
        const Type value = arg_type(0, Type::i64());
        if (!value.is_integer()) {
            error("print_int takes an integer", expr.span);
        }
        return Type::unit();
    }
    if (name == "print_bool") {
        const Type value = arg_type(0, Type::boolean());
        if (!value.is_bool()) {
            error("print_bool takes a bool", expr.span);
        }
        return Type::unit();
    }
    if (name == "input") {
        const Type index = arg_type(0, Type::usize());
        if (!index.is_integer()) {
            error("input takes an integer index", expr.span);
        }
        return Type::i64();
    }
    if (name == "assert") {
        const Type cond = arg_type(0, Type::boolean());
        if (!cond.is_bool()) {
            error("assert takes a bool", expr.span);
        }
        return Type::unit();
    }
    if (name == "panic") {
        return Type::unit();
    }
    if (name == "spawn") {
        const Type f = arg_type(0, std::nullopt);
        if (!f.is_fn_ptr() || !f.fn_params().empty() || !f.fn_return().is_unit()) {
            error("spawn takes a fn() with no parameters and unit return", expr.span);
        }
        return Type::i64();
    }
    if (name == "join" || name == "mutex_lock" || name == "mutex_unlock") {
        const Type handle = arg_type(0, Type::i64());
        if (!handle.is_integer()) {
            error("'" + name + "' takes an integer handle", expr.span);
        }
        return Type::unit();
    }
    if (name == "mutex_new") {
        return Type::i64();
    }
    if (name == "atomic_load") {
        const Type ptr = arg_type(0, std::nullopt);
        if (!ptr.is_raw_ptr() || !(ptr.element() == Type::i64())) {
            error("atomic_load takes *const/mut i64", expr.span);
        }
        return Type::i64();
    }
    if (name == "atomic_store" || name == "atomic_fetch_add") {
        const Type ptr = arg_type(0, std::nullopt);
        const Type value = arg_type(1, Type::i64());
        if (!ptr.is_raw_ptr() || !ptr.is_mut() || !(ptr.element() == Type::i64())) {
            error("'" + name + "' takes *mut i64", expr.span);
        }
        if (!(value == Type::i64())) {
            error("'" + name + "' takes an i64 value", expr.span);
        }
        return name == "atomic_fetch_add" ? Type::i64() : Type::unit();
    }
    error("unhandled intrinsic '" + name + "'", expr.span);
    return Type::unit();
}

bool type_check(Program& program, std::string* error_out) {
    support::DiagnosticEngine diagnostics;
    TypeChecker checker(diagnostics);
    const bool ok = checker.check(program);
    if (!ok && error_out != nullptr) {
        *error_out = diagnostics.summary();
    }
    return ok;
}

}  // namespace rustbrain::lang
