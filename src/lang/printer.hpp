// AST -> mini-Rust source. print_program(parse(print_program(p))) round-trips
// structurally (property-tested); the repair pipeline uses it to render
// patched programs back into the "code" section of LLM prompts and reports.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace rustbrain::lang {

std::string print_program(const Program& program);
std::string print_function(const FnItem& fn);
std::string print_block(const Block& block, int indent_level);
std::string print_statement(const Stmt& stmt, int indent_level);
std::string print_expression(const Expr& expr);

}  // namespace rustbrain::lang
