#include "lang/ast.hpp"

namespace rustbrain::lang {

namespace {

template <typename T>
std::unique_ptr<T> clone_base(const T& node) {
    auto out = std::make_unique<T>();
    out->id = node.id;
    out->span = node.span;
    return out;
}

ExprPtr clone_expr(const ExprPtr& expr) {
    return expr ? expr->clone() : nullptr;
}

std::vector<ExprPtr> clone_exprs(const std::vector<ExprPtr>& exprs) {
    std::vector<ExprPtr> out;
    out.reserve(exprs.size());
    for (const auto& expr : exprs) {
        out.push_back(expr->clone());
    }
    return out;
}

}  // namespace

// --------------------------------------------------------------------------
// clone()
// --------------------------------------------------------------------------

ExprPtr IntLitExpr::clone() const {
    auto out = clone_base(*this);
    out->type = type;
    out->value = value;
    out->suffix = suffix;
    return out;
}

ExprPtr BoolLitExpr::clone() const {
    auto out = clone_base(*this);
    out->type = type;
    out->value = value;
    return out;
}

ExprPtr VarRefExpr::clone() const {
    auto out = clone_base(*this);
    out->type = type;
    out->name = name;
    return out;
}

ExprPtr UnaryExpr::clone() const {
    auto out = clone_base(*this);
    out->type = type;
    out->op = op;
    out->operand = clone_expr(operand);
    return out;
}

ExprPtr BinaryExpr::clone() const {
    auto out = clone_base(*this);
    out->type = type;
    out->op = op;
    out->lhs = clone_expr(lhs);
    out->rhs = clone_expr(rhs);
    return out;
}

ExprPtr CastExpr::clone() const {
    auto out = clone_base(*this);
    out->type = type;
    out->operand = clone_expr(operand);
    out->target = target;
    return out;
}

ExprPtr IndexExpr::clone() const {
    auto out = clone_base(*this);
    out->type = type;
    out->base = clone_expr(base);
    out->index = clone_expr(index);
    return out;
}

ExprPtr CallExpr::clone() const {
    auto out = clone_base(*this);
    out->type = type;
    out->callee = callee;
    out->args = clone_exprs(args);
    return out;
}

ExprPtr CallPtrExpr::clone() const {
    auto out = clone_base(*this);
    out->type = type;
    out->callee = clone_expr(callee);
    out->args = clone_exprs(args);
    return out;
}

ExprPtr ArrayLitExpr::clone() const {
    auto out = clone_base(*this);
    out->type = type;
    out->elements = clone_exprs(elements);
    return out;
}

ExprPtr ArrayRepeatExpr::clone() const {
    auto out = clone_base(*this);
    out->type = type;
    out->element = clone_expr(element);
    out->count = count;
    return out;
}

Block Block::clone() const {
    Block out;
    out.statements.reserve(statements.size());
    for (const auto& stmt : statements) {
        out.statements.push_back(stmt->clone());
    }
    return out;
}

StmtPtr LetStmt::clone() const {
    auto out = clone_base(*this);
    out->name = name;
    out->is_mut = is_mut;
    out->declared_type = declared_type;
    out->init = clone_expr(init);
    return out;
}

StmtPtr AssignStmt::clone() const {
    auto out = clone_base(*this);
    out->place = clone_expr(place);
    out->value = clone_expr(value);
    return out;
}

StmtPtr ExprStmt::clone() const {
    auto out = clone_base(*this);
    out->expr = clone_expr(expr);
    return out;
}

StmtPtr IfStmt::clone() const {
    auto out = clone_base(*this);
    out->condition = clone_expr(condition);
    out->then_block = then_block.clone();
    if (else_block) {
        out->else_block = else_block->clone();
    }
    return out;
}

StmtPtr WhileStmt::clone() const {
    auto out = clone_base(*this);
    out->condition = clone_expr(condition);
    out->body = body.clone();
    return out;
}

StmtPtr ReturnStmt::clone() const {
    auto out = clone_base(*this);
    out->value = clone_expr(value);
    return out;
}

StmtPtr BlockStmt::clone() const {
    auto out = clone_base(*this);
    out->block = block.clone();
    return out;
}

StmtPtr UnsafeStmt::clone() const {
    auto out = clone_base(*this);
    out->block = block.clone();
    return out;
}

StmtPtr BecomeStmt::clone() const {
    auto out = clone_base(*this);
    out->callee = clone_expr(callee);
    out->args = clone_exprs(args);
    return out;
}

FnItem FnItem::clone() const {
    FnItem out;
    out.name = name;
    out.is_unsafe = is_unsafe;
    out.params = params;
    out.return_type = return_type;
    out.body = body.clone();
    out.id = id;
    out.span = span;
    return out;
}

Type FnItem::fn_type() const {
    std::vector<Type> param_types;
    param_types.reserve(params.size());
    for (const auto& param : params) {
        param_types.push_back(param.type);
    }
    return Type::fn_ptr(std::move(param_types), return_type);
}

StaticItem StaticItem::clone() const {
    StaticItem out;
    out.name = name;
    out.is_mut = is_mut;
    out.type = type;
    out.init = init ? init->clone() : nullptr;
    out.id = id;
    out.span = span;
    return out;
}

Program Program::clone() const {
    Program out;
    out.functions.reserve(functions.size());
    for (const auto& fn : functions) {
        out.functions.push_back(fn.clone());
    }
    out.statics.reserve(statics.size());
    for (const auto& item : statics) {
        out.statics.push_back(item.clone());
    }
    return out;
}

const FnItem* Program::find_function(const std::string& name) const {
    for (const auto& fn : functions) {
        if (fn.name == name) return &fn;
    }
    return nullptr;
}

FnItem* Program::find_function(const std::string& name) {
    for (auto& fn : functions) {
        if (fn.name == name) return &fn;
    }
    return nullptr;
}

const StaticItem* Program::find_static(const std::string& name) const {
    for (const auto& item : statics) {
        if (item.name == name) return &item;
    }
    return nullptr;
}

// --------------------------------------------------------------------------
// Renumbering / node counting
// --------------------------------------------------------------------------

namespace {

class Renumberer {
  public:
    explicit Renumberer(NodeId start) : next_(start) {}

    void visit(Expr& expr) {
        expr.id = next_++;
        switch (expr.kind) {
            case ExprKind::IntLit:
            case ExprKind::BoolLit:
            case ExprKind::VarRef:
                break;
            case ExprKind::Unary:
                visit(*static_cast<UnaryExpr&>(expr).operand);
                break;
            case ExprKind::Binary: {
                auto& node = static_cast<BinaryExpr&>(expr);
                visit(*node.lhs);
                visit(*node.rhs);
                break;
            }
            case ExprKind::Cast:
                visit(*static_cast<CastExpr&>(expr).operand);
                break;
            case ExprKind::Index: {
                auto& node = static_cast<IndexExpr&>(expr);
                visit(*node.base);
                visit(*node.index);
                break;
            }
            case ExprKind::Call:
                for (auto& arg : static_cast<CallExpr&>(expr).args) visit(*arg);
                break;
            case ExprKind::CallPtr: {
                auto& node = static_cast<CallPtrExpr&>(expr);
                visit(*node.callee);
                for (auto& arg : node.args) visit(*arg);
                break;
            }
            case ExprKind::ArrayLit:
                for (auto& element : static_cast<ArrayLitExpr&>(expr).elements) {
                    visit(*element);
                }
                break;
            case ExprKind::ArrayRepeat:
                visit(*static_cast<ArrayRepeatExpr&>(expr).element);
                break;
        }
    }

    void visit(Stmt& stmt) {
        stmt.id = next_++;
        switch (stmt.kind) {
            case StmtKind::Let:
                visit(*static_cast<LetStmt&>(stmt).init);
                break;
            case StmtKind::Assign: {
                auto& node = static_cast<AssignStmt&>(stmt);
                visit(*node.place);
                visit(*node.value);
                break;
            }
            case StmtKind::Expr:
                visit(*static_cast<ExprStmt&>(stmt).expr);
                break;
            case StmtKind::If: {
                auto& node = static_cast<IfStmt&>(stmt);
                visit(*node.condition);
                visit(node.then_block);
                if (node.else_block) visit(*node.else_block);
                break;
            }
            case StmtKind::While: {
                auto& node = static_cast<WhileStmt&>(stmt);
                visit(*node.condition);
                visit(node.body);
                break;
            }
            case StmtKind::Return: {
                auto& node = static_cast<ReturnStmt&>(stmt);
                if (node.value) visit(*node.value);
                break;
            }
            case StmtKind::Block:
                visit(static_cast<BlockStmt&>(stmt).block);
                break;
            case StmtKind::Unsafe:
                visit(static_cast<UnsafeStmt&>(stmt).block);
                break;
            case StmtKind::Become: {
                auto& node = static_cast<BecomeStmt&>(stmt);
                visit(*node.callee);
                for (auto& arg : node.args) visit(*arg);
                break;
            }
        }
    }

    void visit(Block& block) {
        for (auto& stmt : block.statements) {
            visit(*stmt);
        }
    }

    [[nodiscard]] NodeId next() const { return next_; }

  private:
    NodeId next_;
};

}  // namespace

std::uint32_t Program::renumber() {
    NodeId next = 1;
    for (auto& item : statics) {
        item.id = next++;
        if (item.init) {
            Renumberer expr_pass(next);
            expr_pass.visit(*item.init);
            next = expr_pass.next();
        }
    }
    for (auto& fn : functions) {
        fn.id = next++;
        Renumberer fn_pass(next);
        fn_pass.visit(fn.body);
        next = fn_pass.next();
    }
    return next - 1;
}

namespace {

class NodeCounter {
  public:
    std::uint32_t count = 0;

    void visit(const Expr& expr) {
        ++count;
        switch (expr.kind) {
            case ExprKind::IntLit:
            case ExprKind::BoolLit:
            case ExprKind::VarRef:
                break;
            case ExprKind::Unary:
                visit(*static_cast<const UnaryExpr&>(expr).operand);
                break;
            case ExprKind::Binary: {
                const auto& node = static_cast<const BinaryExpr&>(expr);
                visit(*node.lhs);
                visit(*node.rhs);
                break;
            }
            case ExprKind::Cast:
                visit(*static_cast<const CastExpr&>(expr).operand);
                break;
            case ExprKind::Index: {
                const auto& node = static_cast<const IndexExpr&>(expr);
                visit(*node.base);
                visit(*node.index);
                break;
            }
            case ExprKind::Call:
                for (const auto& arg : static_cast<const CallExpr&>(expr).args) {
                    visit(*arg);
                }
                break;
            case ExprKind::CallPtr: {
                const auto& node = static_cast<const CallPtrExpr&>(expr);
                visit(*node.callee);
                for (const auto& arg : node.args) visit(*arg);
                break;
            }
            case ExprKind::ArrayLit:
                for (const auto& element :
                     static_cast<const ArrayLitExpr&>(expr).elements) {
                    visit(*element);
                }
                break;
            case ExprKind::ArrayRepeat:
                visit(*static_cast<const ArrayRepeatExpr&>(expr).element);
                break;
        }
    }

    void visit(const Stmt& stmt) {
        ++count;
        switch (stmt.kind) {
            case StmtKind::Let:
                visit(*static_cast<const LetStmt&>(stmt).init);
                break;
            case StmtKind::Assign: {
                const auto& node = static_cast<const AssignStmt&>(stmt);
                visit(*node.place);
                visit(*node.value);
                break;
            }
            case StmtKind::Expr:
                visit(*static_cast<const ExprStmt&>(stmt).expr);
                break;
            case StmtKind::If: {
                const auto& node = static_cast<const IfStmt&>(stmt);
                visit(*node.condition);
                visit(node.then_block);
                if (node.else_block) visit(*node.else_block);
                break;
            }
            case StmtKind::While: {
                const auto& node = static_cast<const WhileStmt&>(stmt);
                visit(*node.condition);
                visit(node.body);
                break;
            }
            case StmtKind::Return: {
                const auto& node = static_cast<const ReturnStmt&>(stmt);
                if (node.value) visit(*node.value);
                break;
            }
            case StmtKind::Block:
                visit(static_cast<const BlockStmt&>(stmt).block);
                break;
            case StmtKind::Unsafe:
                visit(static_cast<const UnsafeStmt&>(stmt).block);
                break;
            case StmtKind::Become: {
                const auto& node = static_cast<const BecomeStmt&>(stmt);
                visit(*node.callee);
                for (const auto& arg : node.args) visit(*arg);
                break;
            }
        }
    }

    void visit(const Block& block) {
        for (const auto& stmt : block.statements) {
            visit(*stmt);
        }
    }
};

}  // namespace

std::uint32_t Program::node_count() const {
    NodeCounter counter;
    for (const auto& item : statics) {
        ++counter.count;
        if (item.init) counter.visit(*item.init);
    }
    for (const auto& fn : functions) {
        ++counter.count;
        counter.visit(fn.body);
    }
    return counter.count;
}

// --------------------------------------------------------------------------
// Structural equality
// --------------------------------------------------------------------------

bool equals(const Block& a, const Block& b) {
    if (a.statements.size() != b.statements.size()) return false;
    for (std::size_t i = 0; i < a.statements.size(); ++i) {
        if (!equals(*a.statements[i], *b.statements[i])) return false;
    }
    return true;
}

bool equals(const Expr& a, const Expr& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
        case ExprKind::IntLit: {
            const auto& x = static_cast<const IntLitExpr&>(a);
            const auto& y = static_cast<const IntLitExpr&>(b);
            return x.value == y.value && x.suffix == y.suffix;
        }
        case ExprKind::BoolLit:
            return static_cast<const BoolLitExpr&>(a).value ==
                   static_cast<const BoolLitExpr&>(b).value;
        case ExprKind::VarRef:
            return static_cast<const VarRefExpr&>(a).name ==
                   static_cast<const VarRefExpr&>(b).name;
        case ExprKind::Unary: {
            const auto& x = static_cast<const UnaryExpr&>(a);
            const auto& y = static_cast<const UnaryExpr&>(b);
            return x.op == y.op && equals(*x.operand, *y.operand);
        }
        case ExprKind::Binary: {
            const auto& x = static_cast<const BinaryExpr&>(a);
            const auto& y = static_cast<const BinaryExpr&>(b);
            return x.op == y.op && equals(*x.lhs, *y.lhs) && equals(*x.rhs, *y.rhs);
        }
        case ExprKind::Cast: {
            const auto& x = static_cast<const CastExpr&>(a);
            const auto& y = static_cast<const CastExpr&>(b);
            return x.target == y.target && equals(*x.operand, *y.operand);
        }
        case ExprKind::Index: {
            const auto& x = static_cast<const IndexExpr&>(a);
            const auto& y = static_cast<const IndexExpr&>(b);
            return equals(*x.base, *y.base) && equals(*x.index, *y.index);
        }
        case ExprKind::Call: {
            const auto& x = static_cast<const CallExpr&>(a);
            const auto& y = static_cast<const CallExpr&>(b);
            if (x.callee != y.callee || x.args.size() != y.args.size()) return false;
            for (std::size_t i = 0; i < x.args.size(); ++i) {
                if (!equals(*x.args[i], *y.args[i])) return false;
            }
            return true;
        }
        case ExprKind::CallPtr: {
            const auto& x = static_cast<const CallPtrExpr&>(a);
            const auto& y = static_cast<const CallPtrExpr&>(b);
            if (!equals(*x.callee, *y.callee) || x.args.size() != y.args.size()) {
                return false;
            }
            for (std::size_t i = 0; i < x.args.size(); ++i) {
                if (!equals(*x.args[i], *y.args[i])) return false;
            }
            return true;
        }
        case ExprKind::ArrayLit: {
            const auto& x = static_cast<const ArrayLitExpr&>(a);
            const auto& y = static_cast<const ArrayLitExpr&>(b);
            if (x.elements.size() != y.elements.size()) return false;
            for (std::size_t i = 0; i < x.elements.size(); ++i) {
                if (!equals(*x.elements[i], *y.elements[i])) return false;
            }
            return true;
        }
        case ExprKind::ArrayRepeat: {
            const auto& x = static_cast<const ArrayRepeatExpr&>(a);
            const auto& y = static_cast<const ArrayRepeatExpr&>(b);
            return x.count == y.count && equals(*x.element, *y.element);
        }
    }
    return false;
}

bool equals(const Stmt& a, const Stmt& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
        case StmtKind::Let: {
            const auto& x = static_cast<const LetStmt&>(a);
            const auto& y = static_cast<const LetStmt&>(b);
            return x.name == y.name && x.is_mut == y.is_mut &&
                   x.declared_type == y.declared_type && equals(*x.init, *y.init);
        }
        case StmtKind::Assign: {
            const auto& x = static_cast<const AssignStmt&>(a);
            const auto& y = static_cast<const AssignStmt&>(b);
            return equals(*x.place, *y.place) && equals(*x.value, *y.value);
        }
        case StmtKind::Expr:
            return equals(*static_cast<const ExprStmt&>(a).expr,
                          *static_cast<const ExprStmt&>(b).expr);
        case StmtKind::If: {
            const auto& x = static_cast<const IfStmt&>(a);
            const auto& y = static_cast<const IfStmt&>(b);
            if (!equals(*x.condition, *y.condition)) return false;
            if (!equals(x.then_block, y.then_block)) return false;
            if (x.else_block.has_value() != y.else_block.has_value()) return false;
            return !x.else_block || equals(*x.else_block, *y.else_block);
        }
        case StmtKind::While: {
            const auto& x = static_cast<const WhileStmt&>(a);
            const auto& y = static_cast<const WhileStmt&>(b);
            return equals(*x.condition, *y.condition) && equals(x.body, y.body);
        }
        case StmtKind::Return: {
            const auto& x = static_cast<const ReturnStmt&>(a);
            const auto& y = static_cast<const ReturnStmt&>(b);
            if ((x.value == nullptr) != (y.value == nullptr)) return false;
            return !x.value || equals(*x.value, *y.value);
        }
        case StmtKind::Block:
            return equals(static_cast<const BlockStmt&>(a).block,
                          static_cast<const BlockStmt&>(b).block);
        case StmtKind::Unsafe:
            return equals(static_cast<const UnsafeStmt&>(a).block,
                          static_cast<const UnsafeStmt&>(b).block);
        case StmtKind::Become: {
            const auto& x = static_cast<const BecomeStmt&>(a);
            const auto& y = static_cast<const BecomeStmt&>(b);
            if (!equals(*x.callee, *y.callee) || x.args.size() != y.args.size()) {
                return false;
            }
            for (std::size_t i = 0; i < x.args.size(); ++i) {
                if (!equals(*x.args[i], *y.args[i])) return false;
            }
            return true;
        }
    }
    return false;
}

bool equals(const Program& a, const Program& b) {
    if (a.functions.size() != b.functions.size()) return false;
    if (a.statics.size() != b.statics.size()) return false;
    for (std::size_t i = 0; i < a.statics.size(); ++i) {
        const auto& x = a.statics[i];
        const auto& y = b.statics[i];
        if (x.name != y.name || x.is_mut != y.is_mut || !(x.type == y.type)) {
            return false;
        }
        if ((x.init == nullptr) != (y.init == nullptr)) return false;
        if (x.init && !equals(*x.init, *y.init)) return false;
    }
    for (std::size_t i = 0; i < a.functions.size(); ++i) {
        const auto& x = a.functions[i];
        const auto& y = b.functions[i];
        if (x.name != y.name || x.is_unsafe != y.is_unsafe) return false;
        if (x.params.size() != y.params.size()) return false;
        for (std::size_t j = 0; j < x.params.size(); ++j) {
            if (x.params[j].name != y.params[j].name ||
                !(x.params[j].type == y.params[j].type)) {
                return false;
            }
        }
        if (!(x.return_type == y.return_type)) return false;
        if (!equals(x.body, y.body)) return false;
    }
    return true;
}

// --------------------------------------------------------------------------
// Names
// --------------------------------------------------------------------------

const char* expr_kind_name(ExprKind kind) {
    switch (kind) {
        case ExprKind::IntLit: return "IntLit";
        case ExprKind::BoolLit: return "BoolLit";
        case ExprKind::VarRef: return "VarRef";
        case ExprKind::Unary: return "Unary";
        case ExprKind::Binary: return "Binary";
        case ExprKind::Cast: return "Cast";
        case ExprKind::Index: return "Index";
        case ExprKind::Call: return "Call";
        case ExprKind::CallPtr: return "CallPtr";
        case ExprKind::ArrayLit: return "ArrayLit";
        case ExprKind::ArrayRepeat: return "ArrayRepeat";
    }
    return "?";
}

const char* stmt_kind_name(StmtKind kind) {
    switch (kind) {
        case StmtKind::Let: return "Let";
        case StmtKind::Assign: return "Assign";
        case StmtKind::Expr: return "Expr";
        case StmtKind::If: return "If";
        case StmtKind::While: return "While";
        case StmtKind::Return: return "Return";
        case StmtKind::Block: return "Block";
        case StmtKind::Unsafe: return "Unsafe";
        case StmtKind::Become: return "Become";
    }
    return "?";
}

const char* unary_op_name(UnaryOp op) {
    switch (op) {
        case UnaryOp::Neg: return "-";
        case UnaryOp::Not: return "!";
        case UnaryOp::Deref: return "*";
        case UnaryOp::AddrOf: return "&";
        case UnaryOp::AddrOfMut: return "&mut ";
    }
    return "?";
}

const char* binary_op_name(BinaryOp op) {
    switch (op) {
        case BinaryOp::Add: return "+";
        case BinaryOp::Sub: return "-";
        case BinaryOp::Mul: return "*";
        case BinaryOp::Div: return "/";
        case BinaryOp::Rem: return "%";
        case BinaryOp::Eq: return "==";
        case BinaryOp::Ne: return "!=";
        case BinaryOp::Lt: return "<";
        case BinaryOp::Le: return "<=";
        case BinaryOp::Gt: return ">";
        case BinaryOp::Ge: return ">=";
        case BinaryOp::And: return "&&";
        case BinaryOp::Or: return "||";
        case BinaryOp::BitAnd: return "&";
        case BinaryOp::BitOr: return "|";
        case BinaryOp::BitXor: return "^";
        case BinaryOp::Shl: return "<<";
        case BinaryOp::Shr: return ">>";
    }
    return "?";
}

}  // namespace rustbrain::lang
