// Recursive-descent parser for mini-Rust.
//
// Grammar sketch (see DESIGN.md §3):
//   program   := item*
//   item      := fn_item | static_item
//   fn_item   := "unsafe"? "fn" IDENT "(" params ")" ("->" type)? block
//   static    := "static" "mut"? IDENT ":" type "=" const_expr ";"
//   stmt      := let | assign | expr ";" | if | while | return | block
//              | "unsafe" block | "become" call ";"
//   expr      := precedence-climbing over Rust's operator table, with
//                postfix calls/indexing and `as` casts binding above binary.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "lang/ast.hpp"
#include "lang/token.hpp"
#include "support/diagnostics.hpp"

namespace rustbrain::lang {

class Parser {
  public:
    Parser(std::vector<Token> tokens, support::DiagnosticEngine& diagnostics);

    /// Parse a whole program. On any error the diagnostics engine carries the
    /// details and the returned (partial) program must not be used.
    Program parse_program();

  private:
    // Token stream ---------------------------------------------------------
    [[nodiscard]] const Token& peek(std::size_t lookahead = 0) const;
    const Token& advance();
    [[nodiscard]] bool check(TokenKind kind) const { return peek().is(kind); }
    bool match(TokenKind kind);
    const Token& expect(TokenKind kind, std::string_view context);
    void synchronize_to_item();

    // Items ------------------------------------------------------------
    FnItem parse_fn(bool is_unsafe);
    StaticItem parse_static();

    // Types --------------------------------------------------------------
    Type parse_type();

    // Statements -----------------------------------------------------------
    Block parse_block();
    StmtPtr parse_statement();
    StmtPtr parse_let();
    StmtPtr parse_if();
    StmtPtr parse_while();
    StmtPtr parse_return();
    StmtPtr parse_become();
    StmtPtr parse_expr_or_assign();

    // Expressions ------------------------------------------------------
    ExprPtr parse_expression();
    ExprPtr parse_binary(int min_precedence);
    ExprPtr parse_cast();
    ExprPtr parse_unary();
    ExprPtr parse_postfix();
    ExprPtr parse_primary();
    std::vector<ExprPtr> parse_call_args();

    std::vector<Token> tokens_;
    std::size_t position_ = 0;
    support::DiagnosticEngine& diagnostics_;
};

/// Convenience wrapper: lex + parse. Program is only meaningful if
/// diagnostics has no errors afterwards.
Program parse_source(std::string_view source, support::DiagnosticEngine& diagnostics);

/// Lex, parse and renumber; returns std::nullopt and fills `error` on
/// failure. This is the entry point used by the repair pipeline to validate
/// LLM-produced code.
std::optional<Program> try_parse(std::string_view source, std::string* error = nullptr);

}  // namespace rustbrain::lang
