// mini-Rust abstract syntax tree.
//
// Nodes are a polymorphic hierarchy owned through unique_ptr. Every node can
// deep-clone itself (repair agents patch clones, the rollback agent snapshots
// whole programs) and supports structural equality (used by tests and by the
// knowledge base to deduplicate exemplars). Node ids are assigned by
// Program::renumber() and are stable for a given tree shape, which the
// pruning algorithm and patch rules use to address nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/type.hpp"
#include "support/source_span.hpp"

namespace rustbrain::lang {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNodeId = 0;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
    IntLit,
    BoolLit,
    VarRef,
    Unary,
    Binary,
    Cast,
    Index,
    Call,       // direct call: named function or intrinsic
    CallPtr,    // indirect call through a fn-pointer value
    ArrayLit,
    ArrayRepeat,
};

enum class UnaryOp { Neg, Not, Deref, AddrOf, AddrOfMut };

enum class BinaryOp {
    Add, Sub, Mul, Div, Rem,
    Eq, Ne, Lt, Le, Gt, Ge,
    And, Or,             // short-circuit logical
    BitAnd, BitOr, BitXor,
    Shl, Shr,
};

struct Expr {
    explicit Expr(ExprKind k) : kind(k) {}
    virtual ~Expr() = default;
    Expr(const Expr&) = delete;
    Expr& operator=(const Expr&) = delete;

    [[nodiscard]] virtual std::unique_ptr<Expr> clone() const = 0;

    ExprKind kind;
    NodeId id = kInvalidNodeId;
    support::SourceSpan span;
    /// Filled by the type checker.
    Type type;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr final : Expr {
    IntLitExpr() : Expr(ExprKind::IntLit) {}
    [[nodiscard]] ExprPtr clone() const override;

    std::uint64_t value = 0;
    /// Optional explicit suffix type, e.g. `5usize`; None means "infer".
    std::optional<ScalarKind> suffix;
};

struct BoolLitExpr final : Expr {
    BoolLitExpr() : Expr(ExprKind::BoolLit) {}
    [[nodiscard]] ExprPtr clone() const override;

    bool value = false;
};

struct VarRefExpr final : Expr {
    VarRefExpr() : Expr(ExprKind::VarRef) {}
    [[nodiscard]] ExprPtr clone() const override;

    std::string name;
};

struct UnaryExpr final : Expr {
    UnaryExpr() : Expr(ExprKind::Unary) {}
    [[nodiscard]] ExprPtr clone() const override;

    UnaryOp op = UnaryOp::Neg;
    ExprPtr operand;
};

struct BinaryExpr final : Expr {
    BinaryExpr() : Expr(ExprKind::Binary) {}
    [[nodiscard]] ExprPtr clone() const override;

    BinaryOp op = BinaryOp::Add;
    ExprPtr lhs;
    ExprPtr rhs;
};

struct CastExpr final : Expr {
    CastExpr() : Expr(ExprKind::Cast) {}
    [[nodiscard]] ExprPtr clone() const override;

    ExprPtr operand;
    Type target;
};

struct IndexExpr final : Expr {
    IndexExpr() : Expr(ExprKind::Index) {}
    [[nodiscard]] ExprPtr clone() const override;

    ExprPtr base;
    ExprPtr index;
};

struct CallExpr final : Expr {
    CallExpr() : Expr(ExprKind::Call) {}
    [[nodiscard]] ExprPtr clone() const override;

    std::string callee;
    std::vector<ExprPtr> args;
};

struct CallPtrExpr final : Expr {
    CallPtrExpr() : Expr(ExprKind::CallPtr) {}
    [[nodiscard]] ExprPtr clone() const override;

    ExprPtr callee;
    std::vector<ExprPtr> args;
};

struct ArrayLitExpr final : Expr {
    ArrayLitExpr() : Expr(ExprKind::ArrayLit) {}
    [[nodiscard]] ExprPtr clone() const override;

    std::vector<ExprPtr> elements;
};

struct ArrayRepeatExpr final : Expr {
    ArrayRepeatExpr() : Expr(ExprKind::ArrayRepeat) {}
    [[nodiscard]] ExprPtr clone() const override;

    ExprPtr element;
    std::uint64_t count = 0;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
    Let,
    Assign,
    Expr,
    If,
    While,
    Return,
    Block,
    Unsafe,
    Become,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// A brace-delimited sequence of statements introducing a scope.
struct Block {
    std::vector<StmtPtr> statements;

    [[nodiscard]] Block clone() const;
};

struct Stmt {
    explicit Stmt(StmtKind k) : kind(k) {}
    virtual ~Stmt() = default;
    Stmt(const Stmt&) = delete;
    Stmt& operator=(const Stmt&) = delete;

    [[nodiscard]] virtual StmtPtr clone() const = 0;

    StmtKind kind;
    NodeId id = kInvalidNodeId;
    support::SourceSpan span;
};

struct LetStmt final : Stmt {
    LetStmt() : Stmt(StmtKind::Let) {}
    [[nodiscard]] StmtPtr clone() const override;

    std::string name;
    bool is_mut = false;
    std::optional<Type> declared_type;
    ExprPtr init;  // always present (mini-Rust requires initialization)
};

struct AssignStmt final : Stmt {
    AssignStmt() : Stmt(StmtKind::Assign) {}
    [[nodiscard]] StmtPtr clone() const override;

    ExprPtr place;
    ExprPtr value;
};

struct ExprStmt final : Stmt {
    ExprStmt() : Stmt(StmtKind::Expr) {}
    [[nodiscard]] StmtPtr clone() const override;

    ExprPtr expr;
};

struct IfStmt final : Stmt {
    IfStmt() : Stmt(StmtKind::If) {}
    [[nodiscard]] StmtPtr clone() const override;

    ExprPtr condition;
    Block then_block;
    std::optional<Block> else_block;
};

struct WhileStmt final : Stmt {
    WhileStmt() : Stmt(StmtKind::While) {}
    [[nodiscard]] StmtPtr clone() const override;

    ExprPtr condition;
    Block body;
};

struct ReturnStmt final : Stmt {
    ReturnStmt() : Stmt(StmtKind::Return) {}
    [[nodiscard]] StmtPtr clone() const override;

    ExprPtr value;  // null for `return;`
};

struct BlockStmt final : Stmt {
    BlockStmt() : Stmt(StmtKind::Block) {}
    [[nodiscard]] StmtPtr clone() const override;

    Block block;
};

struct UnsafeStmt final : Stmt {
    UnsafeStmt() : Stmt(StmtKind::Unsafe) {}
    [[nodiscard]] StmtPtr clone() const override;

    Block block;
};

/// `become f(args);` — guaranteed tail call (the paper's `tailcall` UB
/// category exercises signature mismatches through fn pointers here).
struct BecomeStmt final : Stmt {
    BecomeStmt() : Stmt(StmtKind::Become) {}
    [[nodiscard]] StmtPtr clone() const override;

    ExprPtr callee;  // VarRef to a function or a fn-pointer-typed expression
    std::vector<ExprPtr> args;
};

// ---------------------------------------------------------------------------
// Items & program
// ---------------------------------------------------------------------------

struct Param {
    std::string name;
    Type type;
};

struct FnItem {
    std::string name;
    bool is_unsafe = false;
    std::vector<Param> params;
    Type return_type = Type::unit();
    Block body;
    NodeId id = kInvalidNodeId;
    support::SourceSpan span;

    [[nodiscard]] FnItem clone() const;
    [[nodiscard]] Type fn_type() const;
};

struct StaticItem {
    std::string name;
    bool is_mut = false;
    Type type;
    ExprPtr init;  // restricted to literal / array-repeat by the parser
    NodeId id = kInvalidNodeId;
    support::SourceSpan span;

    [[nodiscard]] StaticItem clone() const;
};

class Program {
  public:
    std::vector<FnItem> functions;
    std::vector<StaticItem> statics;

    [[nodiscard]] Program clone() const;

    [[nodiscard]] const FnItem* find_function(const std::string& name) const;
    [[nodiscard]] FnItem* find_function(const std::string& name);
    [[nodiscard]] const StaticItem* find_static(const std::string& name) const;

    /// Reassign node ids in deterministic pre-order, starting at 1.
    /// Returns the number of nodes.
    std::uint32_t renumber();

    /// Total AST node count (statements + expressions).
    [[nodiscard]] std::uint32_t node_count() const;
};

// Structural equality (ignores spans and node ids; compares types only where
// they are part of syntax, e.g. cast targets and let annotations).
bool equals(const Expr& a, const Expr& b);
bool equals(const Stmt& a, const Stmt& b);
bool equals(const Block& a, const Block& b);
bool equals(const Program& a, const Program& b);

const char* expr_kind_name(ExprKind kind);
const char* stmt_kind_name(StmtKind kind);
const char* unary_op_name(UnaryOp op);    // surface syntax, e.g. "&mut "
const char* binary_op_name(BinaryOp op);  // surface syntax, e.g. "+"

}  // namespace rustbrain::lang
