#include "lang/type.hpp"

#include <stdexcept>

namespace rustbrain::lang {

Type Type::scalar(ScalarKind kind) {
    Type t;
    t.kind_ = Kind::Scalar;
    t.scalar_ = kind;
    return t;
}

Type Type::raw_ptr(Type pointee, bool is_mut) {
    Type t;
    t.kind_ = Kind::RawPtr;
    t.mutable_ = is_mut;
    t.element_ = std::make_shared<const Type>(std::move(pointee));
    return t;
}

Type Type::reference(Type pointee, bool is_mut) {
    Type t;
    t.kind_ = Kind::Ref;
    t.mutable_ = is_mut;
    t.element_ = std::make_shared<const Type>(std::move(pointee));
    return t;
}

Type Type::array(Type element, std::uint64_t length) {
    Type t;
    t.kind_ = Kind::Array;
    t.array_len_ = length;
    t.element_ = std::make_shared<const Type>(std::move(element));
    return t;
}

Type Type::fn_ptr(std::vector<Type> params, Type ret) {
    Type t;
    t.kind_ = Kind::FnPtr;
    t.params_ = std::make_shared<const std::vector<Type>>(std::move(params));
    t.ret_ = std::make_shared<const Type>(std::move(ret));
    return t;
}

const Type& Type::element() const {
    if (!element_) {
        throw std::logic_error("Type::element on type without element: " + to_string());
    }
    return *element_;
}

const std::vector<Type>& Type::fn_params() const {
    if (!params_) {
        throw std::logic_error("Type::fn_params on non-fn type");
    }
    return *params_;
}

const Type& Type::fn_return() const {
    if (!ret_) {
        throw std::logic_error("Type::fn_return on non-fn type");
    }
    return *ret_;
}

const char* scalar_kind_name(ScalarKind kind) {
    switch (kind) {
        case ScalarKind::I8: return "i8";
        case ScalarKind::I16: return "i16";
        case ScalarKind::I32: return "i32";
        case ScalarKind::I64: return "i64";
        case ScalarKind::U8: return "u8";
        case ScalarKind::U16: return "u16";
        case ScalarKind::U32: return "u32";
        case ScalarKind::U64: return "u64";
        case ScalarKind::Isize: return "isize";
        case ScalarKind::Usize: return "usize";
        case ScalarKind::Bool: return "bool";
        case ScalarKind::Unit: return "()";
    }
    return "?";
}

bool scalar_kind_from_name(const std::string& name, ScalarKind& out) {
    static const struct {
        const char* name;
        ScalarKind kind;
    } table[] = {
        {"i8", ScalarKind::I8},       {"i16", ScalarKind::I16},
        {"i32", ScalarKind::I32},     {"i64", ScalarKind::I64},
        {"u8", ScalarKind::U8},       {"u16", ScalarKind::U16},
        {"u32", ScalarKind::U32},     {"u64", ScalarKind::U64},
        {"isize", ScalarKind::Isize}, {"usize", ScalarKind::Usize},
        {"bool", ScalarKind::Bool},
    };
    for (const auto& entry : table) {
        if (name == entry.name) {
            out = entry.kind;
            return true;
        }
    }
    return false;
}

std::string Type::to_string() const {
    switch (kind_) {
        case Kind::Scalar:
            return scalar_kind_name(scalar_);
        case Kind::RawPtr:
            return std::string("*") + (mutable_ ? "mut " : "const ") +
                   element().to_string();
        case Kind::Ref:
            return std::string("&") + (mutable_ ? "mut " : "") + element().to_string();
        case Kind::Array:
            return "[" + element().to_string() + "; " + std::to_string(array_len_) + "]";
        case Kind::FnPtr: {
            std::string out = "fn(";
            const auto& params = fn_params();
            for (std::size_t i = 0; i < params.size(); ++i) {
                if (i != 0) out += ", ";
                out += params[i].to_string();
            }
            out += ")";
            if (!fn_return().is_unit()) {
                out += " -> " + fn_return().to_string();
            }
            return out;
        }
    }
    return "?";
}

bool Type::operator==(const Type& other) const {
    if (kind_ != other.kind_) return false;
    switch (kind_) {
        case Kind::Scalar:
            return scalar_ == other.scalar_;
        case Kind::RawPtr:
        case Kind::Ref:
            return mutable_ == other.mutable_ && element() == other.element();
        case Kind::Array:
            return array_len_ == other.array_len_ && element() == other.element();
        case Kind::FnPtr: {
            if (fn_params().size() != other.fn_params().size()) return false;
            for (std::size_t i = 0; i < fn_params().size(); ++i) {
                if (!(fn_params()[i] == other.fn_params()[i])) return false;
            }
            return fn_return() == other.fn_return();
        }
    }
    return false;
}

}  // namespace rustbrain::lang
