// mini-Rust type system. Types are values with shared immutable sub-terms,
// so they can be copied freely and compared structurally.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rustbrain::lang {

enum class ScalarKind {
    I8, I16, I32, I64,
    U8, U16, U32, U64,
    Isize, Usize,
    Bool,
    Unit,
};

inline std::uint64_t scalar_size_bytes(ScalarKind kind) {
    switch (kind) {
        case ScalarKind::I8:
        case ScalarKind::U8:
        case ScalarKind::Bool:
            return 1;
        case ScalarKind::I16:
        case ScalarKind::U16:
            return 2;
        case ScalarKind::I32:
        case ScalarKind::U32:
            return 4;
        case ScalarKind::I64:
        case ScalarKind::U64:
        case ScalarKind::Isize:
        case ScalarKind::Usize:
            return 8;
        case ScalarKind::Unit:
            return 0;
    }
    return 0;
}

class Type {
  public:
    enum class Kind { Scalar, RawPtr, Ref, Array, FnPtr };

    Type() : kind_(Kind::Scalar), scalar_(ScalarKind::Unit) {}

    // Factories -----------------------------------------------------------
    static Type scalar(ScalarKind kind);
    static Type unit() { return scalar(ScalarKind::Unit); }
    static Type boolean() { return scalar(ScalarKind::Bool); }
    static Type i32() { return scalar(ScalarKind::I32); }
    static Type i64() { return scalar(ScalarKind::I64); }
    static Type u8() { return scalar(ScalarKind::U8); }
    static Type usize() { return scalar(ScalarKind::Usize); }
    static Type raw_ptr(Type pointee, bool is_mut);
    static Type reference(Type pointee, bool is_mut);
    static Type array(Type element, std::uint64_t length);
    static Type fn_ptr(std::vector<Type> params, Type ret);

    // Inspectors ----------------------------------------------------------
    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool is_scalar() const { return kind_ == Kind::Scalar; }
    [[nodiscard]] bool is_unit() const {
        return is_scalar() && scalar_ == ScalarKind::Unit;
    }
    [[nodiscard]] bool is_bool() const {
        return is_scalar() && scalar_ == ScalarKind::Bool;
    }
    [[nodiscard]] bool is_integer() const {
        return is_scalar() && scalar_ != ScalarKind::Bool &&
               scalar_ != ScalarKind::Unit;
    }
    [[nodiscard]] bool is_signed_integer() const {
        if (!is_scalar()) return false;
        switch (scalar_) {
            case ScalarKind::I8:
            case ScalarKind::I16:
            case ScalarKind::I32:
            case ScalarKind::I64:
            case ScalarKind::Isize:
                return true;
            default:
                return false;
        }
    }
    [[nodiscard]] bool is_raw_ptr() const { return kind_ == Kind::RawPtr; }
    [[nodiscard]] bool is_ref() const { return kind_ == Kind::Ref; }
    [[nodiscard]] bool is_any_pointer() const { return is_raw_ptr() || is_ref(); }
    [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
    [[nodiscard]] bool is_fn_ptr() const { return kind_ == Kind::FnPtr; }

    [[nodiscard]] ScalarKind scalar_kind() const { return scalar_; }
    /// Pointee of a pointer/reference, element of an array.
    [[nodiscard]] const Type& element() const;
    [[nodiscard]] bool is_mut() const { return mutable_; }
    [[nodiscard]] std::uint64_t array_length() const { return array_len_; }
    [[nodiscard]] const std::vector<Type>& fn_params() const;
    [[nodiscard]] const Type& fn_return() const;

    /// Byte size (unit = 0; pointers = 8).
    [[nodiscard]] std::uint64_t size_bytes() const {
        switch (kind_) {
            case Kind::Scalar:
                return scalar_size_bytes(scalar_);
            case Kind::RawPtr:
            case Kind::Ref:
            case Kind::FnPtr:
                return 8;
            case Kind::Array:
                return array_len_ * element_->size_bytes();
        }
        return 0;
    }
    /// Alignment requirement in bytes (>= 1 even for unit).
    [[nodiscard]] std::uint64_t align_bytes() const {
        switch (kind_) {
            case Kind::Scalar: {
                const std::uint64_t size = scalar_size_bytes(scalar_);
                return size == 0 ? 1 : size;
            }
            case Kind::RawPtr:
            case Kind::Ref:
            case Kind::FnPtr:
                return 8;
            case Kind::Array:
                return element_->align_bytes();
        }
        return 1;
    }

    [[nodiscard]] std::string to_string() const;

    bool operator==(const Type& other) const;
    bool operator!=(const Type& other) const { return !(*this == other); }

  private:
    Kind kind_;
    ScalarKind scalar_ = ScalarKind::Unit;  // valid when Kind::Scalar
    bool mutable_ = false;                  // RawPtr / Ref mutability
    std::shared_ptr<const Type> element_;   // pointee / array element
    std::uint64_t array_len_ = 0;           // Kind::Array
    std::shared_ptr<const std::vector<Type>> params_;  // Kind::FnPtr
    std::shared_ptr<const Type> ret_;                  // Kind::FnPtr
};

const char* scalar_kind_name(ScalarKind kind);
/// Parse "i32" etc.; returns false if the name is not a scalar type.
bool scalar_kind_from_name(const std::string& name, ScalarKind& out);

}  // namespace rustbrain::lang
