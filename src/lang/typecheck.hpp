// Static semantic checker for mini-Rust.
//
// Mirrors rustc's split of responsibilities: the checker rejects ill-typed
// programs and enforces the *static* unsafety rules (raw-pointer deref,
// unsafe-fn calls, `static mut` access and int->fn-pointer casts are only
// legal inside `unsafe`), while MiriLite finds the *dynamic* UB. It also
// annotates every expression with its type, which the interpreter relies on
// for typed loads/stores and cast semantics.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "support/diagnostics.hpp"

namespace rustbrain::lang {

struct IntrinsicInfo {
    std::string name;
    std::size_t arity;
    bool requires_unsafe;
};

/// True if `name` is one of the built-in intrinsics (alloc, dealloc, offset,
/// print_int, ...).
bool is_intrinsic(const std::string& name);
const std::vector<IntrinsicInfo>& intrinsic_table();

class TypeChecker {
  public:
    explicit TypeChecker(support::DiagnosticEngine& diagnostics);

    /// Check the whole program (annotating expression types in place).
    /// Returns true when no errors were emitted.
    bool check(Program& program);

  private:
    struct LocalVar {
        std::string name;
        Type type;
        bool is_mut = false;
    };

    struct Scope {
        std::vector<LocalVar> locals;
    };

    // Environment ----------------------------------------------------------
    void push_scope() { scopes_.emplace_back(); }
    void pop_scope() { scopes_.pop_back(); }
    void declare_local(const std::string& name, Type type, bool is_mut);
    [[nodiscard]] const LocalVar* lookup_local(const std::string& name) const;

    // Items ------------------------------------------------------------
    void check_function(FnItem& fn);
    void check_static(StaticItem& item);

    // Statements ------------------------------------------------------------
    void check_block(Block& block, bool enters_scope = true);
    void check_statement(Stmt& stmt);

    // Expressions ------------------------------------------------------
    /// Infer/check an expression. `expected` guides integer-literal typing.
    Type check_expr(Expr& expr, const std::optional<Type>& expected = std::nullopt);
    Type check_unary(UnaryExpr& expr, const std::optional<Type>& expected);
    Type check_binary(BinaryExpr& expr, const std::optional<Type>& expected);
    Type check_cast(CastExpr& expr);
    Type check_index(IndexExpr& expr);
    Type check_call(CallExpr& expr);
    Type check_call_ptr(CallPtrExpr& expr);
    Type check_intrinsic(CallExpr& expr);

    // Places -----------------------------------------------------------
    /// True if expr denotes a memory place; fills `is_mut_place`.
    bool is_place(const Expr& expr, bool& is_mut_place) const;
    void require_place(const Expr& expr, bool need_mut, const char* what);

    void require_unsafe(const char* operation, support::SourceSpan span);
    void error(std::string message, support::SourceSpan span);

    support::DiagnosticEngine& diagnostics_;
    Program* program_ = nullptr;
    const FnItem* current_fn_ = nullptr;
    std::vector<Scope> scopes_;
    int unsafe_depth_ = 0;
};

/// Convenience: run the checker; returns false and fills `error` on failure.
bool type_check(Program& program, std::string* error = nullptr);

}  // namespace rustbrain::lang
