// Corpus serialization — a versioned, line-oriented text format that
// round-trips any Corpus (standard, forged, hand-assembled) byte-exactly.
//
//   rustbrain-corpus v1
//   cases <N>
//
//   case <id>
//   category <label>            e.g. danglingpointer, func.call
//   strategy <name>             safe-alternative | assertion-guard | ...
//   difficulty <1..3>
//   inputs <k>
//   input <len> <v0> <v1> ...   (k lines)
//   buggy <bytes>               followed by exactly <bytes> raw source bytes
//   <raw bytes>                 and one terminating newline
//   fix <bytes>
//   <raw bytes>
//   end
//
// Sources are stored with explicit byte counts, never escaped, so any
// program text round-trips exactly and save(load(x)) == x byte-for-byte.
// Loading validates structure eagerly and throws std::runtime_error with a
// message naming the offending case/field; duplicate ids are rejected by
// the Corpus constructor.
#pragma once

#include <string>

#include "dataset/corpus.hpp"

namespace rustbrain::gen {

constexpr int kCorpusFormatVersion = 1;

/// Render a corpus in the versioned text format (deterministic: depends
/// only on the corpus contents).
std::string corpus_to_string(const dataset::Corpus& corpus);

/// Parse the text format. Throws std::runtime_error on malformed input and
/// std::invalid_argument on duplicate case ids.
dataset::Corpus corpus_from_string(const std::string& text);

/// File wrappers; both throw std::runtime_error when the file cannot be
/// opened (and load on any format error).
void save_corpus(const dataset::Corpus& corpus, const std::string& path);
dataset::Corpus load_corpus(const std::string& path);

}  // namespace rustbrain::gen
