// Generators: bothborrow, stackborrow, validity, unaligned.
#include <string>
#include <vector>

#include "gen/generators.hpp"

namespace rustbrain::gen {

namespace {

using detail::fill_template;
using detail::pick;

const std::vector<std::string> kVarNames = {"x",    "count", "cell",
                                            "slot", "score", "level"};

std::string num(std::int64_t value) { return std::to_string(value); }

// ---------------------------------------------------------------------------
// bothborrow
// ---------------------------------------------------------------------------

class BothBorrowGenerator final : public CaseGenerator {
  public:
    explicit BothBorrowGenerator(MutationKnobs knobs)
        : CaseGenerator("bothborrow", miri::UbCategory::BothBorrow, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string var = pick(rng, kVarNames);
        const std::int64_t first = rng.next_range(1, 899);
        const std::int64_t second = first + rng.next_range(1, 99);
        const std::vector<std::string> args = {var, num(first), num(second)};
        switch (rng.next_below(3)) {
            case 0: {  // shared ref used after a &mut was created
                out.shape = "shared_then_mut";
                out.difficulty = 2;
                out.buggy = fill_template(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    let exclusive = &mut $0;
    *exclusive = $2;
    print_int(*shared as i64);
    print_int($0 as i64);
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    print_int(*shared as i64);
    let exclusive = &mut $0;
    *exclusive = $2;
    print_int($0 as i64);
}
)",
                                        args);
                break;
            }
            case 1: {  // direct write while a shared ref is live
                out.shape = "write_under_shared";
                out.difficulty = 1;
                out.buggy = fill_template(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    $0 = $2;
    print_int(*shared as i64);
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    print_int(*shared as i64);
    $0 = $2;
}
)",
                                        args);
                break;
            }
            default: {  // read-modify-write juggling both borrows
                out.shape = "juggle";
                out.difficulty = 3;
                out.buggy = fill_template(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    let snapshot = *shared;
    let exclusive = &mut $0;
    *exclusive = snapshot + 1;
    print_int(*shared as i64);
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    let snapshot = *shared;
    let exclusive = &mut $0;
    *exclusive = snapshot + 1;
    print_int($0 as i64);
}
)",
                                        args);
                break;
            }
        }
        out.inputs = {{}};
        return out;
    }
};

// ---------------------------------------------------------------------------
// stackborrow
// ---------------------------------------------------------------------------

class StackBorrowGenerator final : public CaseGenerator {
  public:
    explicit StackBorrowGenerator(MutationKnobs knobs)
        : CaseGenerator("stackborrow", miri::UbCategory::StackBorrow, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string var = pick(rng, kVarNames);
        const std::int64_t first = rng.next_range(1, 899);
        const std::int64_t second = first + rng.next_range(1, 99);
        const std::vector<std::string> args = {var, num(first), num(second)};
        switch (rng.next_below(3)) {
            case 0: {  // raw pointer invalidated by a fresh &mut
                out.shape = "raw_invalidated";
                out.difficulty = 2;
                out.buggy = fill_template(R"(fn main() {
    let mut $0 = $1;
    let raw = &mut $0 as *mut i32;
    let fresh = &mut $0;
    *fresh = $2;
    unsafe {
        *raw = $1;
    }
    print_int($0 as i64);
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let mut $0 = $1;
    let raw = &mut $0 as *mut i32;
    unsafe {
        *raw = $1;
    }
    let fresh = &mut $0;
    *fresh = $2;
    print_int($0 as i64);
}
)",
                                        args);
                break;
            }
            case 1: {  // raw read after the place was reassigned
                out.shape = "raw_after_write";
                out.difficulty = 2;
                out.buggy = fill_template(R"(fn main() {
    let mut $0 = $1;
    let raw = &mut $0 as *mut i32;
    $0 = $2;
    unsafe {
        print_int(*raw as i64);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let mut $0 = $1;
    let raw = &mut $0 as *mut i32;
    unsafe {
        print_int(*raw as i64);
    }
    $0 = $2;
}
)",
                                        args);
                break;
            }
            default: {  // write through a shared-ref-derived raw pointer
                out.shape = "readonly_write";
                out.strategy = dataset::FixStrategy::SafeAlternative;
                out.difficulty = 3;
                out.buggy = fill_template(R"(fn main() {
    let mut $0 = $1;
    let shared = &$0;
    let raw = shared as *const i32 as *mut i32;
    unsafe {
        *raw = $2;
    }
    print_int($0 as i64);
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let mut $0 = $1;
    let raw = &mut $0 as *mut i32;
    unsafe {
        *raw = $2;
    }
    print_int($0 as i64);
}
)",
                                        args);
                break;
            }
        }
        out.inputs = {{}};
        return out;
    }
};

// ---------------------------------------------------------------------------
// validity
// ---------------------------------------------------------------------------

class ValidityGenerator final : public CaseGenerator {
  public:
    explicit ValidityGenerator(MutationKnobs knobs)
        : CaseGenerator("validity", miri::UbCategory::Validity, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        out.strategy = dataset::FixStrategy::SafeAlternative;
        const std::string var = pick(rng, kVarNames);
        // Any byte outside {0, 1} is an invalid bool.
        const std::int64_t bad_byte = rng.next_range(2, 255);
        const std::vector<std::string> args = {var, num(bad_byte)};
        switch (rng.next_below(3)) {
            case 0: {  // stack byte punned to bool
                out.shape = "bool_pun";
                out.difficulty = 2;
                out.buggy = fill_template(R"(fn main() {
    let $0: [u8; 2] = [$1, 1];
    let first = &$0 as *const u8 as *const bool;
    unsafe {
        print_bool(*first);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let $0: [u8; 2] = [$1, 1];
    print_bool($0[0] != 0);
}
)",
                                        args);
                out.inputs = {{}};
                break;
            }
            case 1: {  // heap byte out of bool range
                out.shape = "heap_bool";
                out.difficulty = 2;
                out.buggy = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc(1, 1);
        *$0 = $1;
        let flag = $0 as *const bool;
        print_bool(*flag);
        dealloc($0, 1, 1);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc(1, 1);
        *$0 = $1;
        print_bool(*$0 != 0);
        dealloc($0, 1, 1);
    }
}
)",
                                        args);
                out.inputs = {{}};
                break;
            }
            default: {  // input-dependent byte punned to bool
                out.shape = "input_bool";
                out.difficulty = 3;
                out.buggy = fill_template(R"(fn main() {
    let mut $0: [u8; 1] = [0];
    $0[0] = input(0) as u8;
    let p = &$0 as *const u8 as *const bool;
    unsafe {
        print_bool(*p);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let mut $0: [u8; 1] = [0];
    $0[0] = input(0) as u8;
    print_bool($0[0] != 0);
}
)",
                                        args);
                out.inputs = {{0}, {1}, {rng.next_range(2, 200)}};
                break;
            }
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// unaligned
// ---------------------------------------------------------------------------

class UnalignedGenerator final : public CaseGenerator {
  public:
    explicit UnalignedGenerator(MutationKnobs knobs)
        : CaseGenerator("unaligned", miri::UbCategory::Unaligned, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string var = pick(rng, kVarNames);
        const std::int64_t count = rng.next_range(3, 6);
        const std::vector<std::string> args = {var, num(count)};
        switch (rng.next_below(3)) {
            case 0: {  // element index used as a byte offset
                out.shape = "byte_confusion";
                out.difficulty = 2;
                out.buggy = fill_template(R"(fn main() {
    let $0: [u32; $1] = [11; $1];
    unsafe {
        let bytes = &$0 as *const u32 as *const u8;
        let second = offset(bytes, 1) as *const u32;
        print_int(*second as i64);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let $0: [u32; $1] = [11; $1];
    unsafe {
        let elems = &$0 as *const u32;
        let second = offset(elems, 1);
        print_int(*second as i64);
    }
}
)",
                                        args);
                break;
            }
            case 1: {  // wide store at a misaligned heap offset
                out.shape = "wide_store";
                out.difficulty = 2;
                // Any byte offset that is not 8-aligned misaligns an i64.
                const std::int64_t skew = rng.next_range(1, 7);
                const std::int64_t stored = rng.next_range(1, 899);
                const std::vector<std::string> wide_args = {var, num(skew),
                                                            num(stored)};
                out.buggy = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc(16, 8);
        let word = offset($0, $1) as *mut i64;
        *word = $2;
        print_int(*word);
        dealloc($0, 16, 8);
    }
}
)",
                                          wide_args);
                out.fix = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc(16, 8);
        let word = offset($0, 8) as *mut i64;
        *word = $2;
        print_int(*word);
        dealloc($0, 16, 8);
    }
}
)",
                                        wide_args);
                break;
            }
            default: {  // u16 read at an odd address
                out.shape = "odd_u16";
                out.difficulty = 1;
                out.buggy = fill_template(R"(fn main() {
    let $0: [u16; $1] = [9; $1];
    unsafe {
        let bytes = &$0 as *const u16 as *const u8;
        let entry = offset(bytes, 1) as *const u16;
        print_int(*entry as i64);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let $0: [u16; $1] = [9; $1];
    unsafe {
        let elems = &$0 as *const u16;
        let entry = offset(elems, 1);
        print_int(*entry as i64);
    }
}
)",
                                        args);
                break;
            }
        }
        out.inputs = {{}};
        return out;
    }
};

}  // namespace

std::unique_ptr<CaseGenerator> make_bothborrow_generator(MutationKnobs knobs) {
    return std::make_unique<BothBorrowGenerator>(knobs);
}

std::unique_ptr<CaseGenerator> make_stackborrow_generator(MutationKnobs knobs) {
    return std::make_unique<StackBorrowGenerator>(knobs);
}

std::unique_ptr<CaseGenerator> make_validity_generator(MutationKnobs knobs) {
    return std::make_unique<ValidityGenerator>(knobs);
}

std::unique_ptr<CaseGenerator> make_unaligned_generator(MutationKnobs knobs) {
    return std::make_unique<UnalignedGenerator>(knobs);
}

}  // namespace rustbrain::gen
