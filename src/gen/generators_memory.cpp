// Generators: alloc, danglingpointer, uninit, provenance.
#include <string>
#include <vector>

#include "gen/generators.hpp"

namespace rustbrain::gen {

namespace {

using detail::fill_template;
using detail::pick;

const std::vector<std::string> kPtrNames = {"p",     "buf",   "mem",    "blk",
                                            "chunk", "region", "arena", "slab"};
const std::vector<std::string> kValNames = {"x",    "value", "data",
                                            "item", "cur",   "sample"};

std::string num(std::int64_t value) { return std::to_string(value); }

/// A heap slot size: always a positive multiple of 8.
std::int64_t sample_size(support::Rng& rng) { return 8 * rng.next_range(1, 6); }

// ---------------------------------------------------------------------------
// alloc
// ---------------------------------------------------------------------------

class AllocGenerator final : public CaseGenerator {
  public:
    explicit AllocGenerator(MutationKnobs knobs)
        : CaseGenerator("alloc", miri::UbCategory::Alloc, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string ptr = pick(rng, kPtrNames);
        const std::int64_t size = sample_size(rng);
        const std::int64_t seed_const = rng.next_range(1, 8999);
        switch (rng.next_below(3)) {
            case 0: {  // double free
                out.shape = "double_free";
                out.difficulty = 1;
                const std::vector<std::string> args = {ptr, num(size),
                                                       num(seed_const)};
                out.buggy = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = $2;
        print_int(*slot);
        dealloc($0, $1, 8);
        dealloc($0, $1, 8);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = $2;
        print_int(*slot);
        dealloc($0, $1, 8);
    }
}
)",
                                        args);
                out.inputs = {{}};
                break;
            }
            case 1: {  // dealloc with the wrong layout
                out.shape = "wrong_layout";
                out.difficulty = 1;
                std::int64_t wrong = 8 * rng.next_range(1, 6);
                if (wrong == size) wrong += 8;
                const std::vector<std::string> args = {ptr, num(size),
                                                       num(seed_const),
                                                       num(wrong)};
                out.buggy = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = $2;
        print_int(*slot);
        dealloc($0, $3, 8);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = $2;
        print_int(*slot);
        dealloc($0, $1, 8);
    }
}
)",
                                        args);
                out.inputs = {{}};
                break;
            }
            default: {  // leak
                out.shape = "leak";
                out.difficulty = 2;
                const std::vector<std::string> args = {ptr, num(size),
                                                       num(seed_const)};
                out.buggy = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = input(0) + $2;
        print_int(*slot);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = input(0) + $2;
        print_int(*slot);
        dealloc($0, $1, 8);
    }
}
)",
                                        args);
                out.inputs = {{rng.next_range(1, 99)}, {rng.next_range(100, 999)}};
                break;
            }
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// danglingpointer
// ---------------------------------------------------------------------------

class DanglingGenerator final : public CaseGenerator {
  public:
    explicit DanglingGenerator(MutationKnobs knobs)
        : CaseGenerator("danglingpointer", miri::UbCategory::DanglingPointer,
                        knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string ptr = pick(rng, kPtrNames);
        const std::string val = pick(rng, kValNames);
        const std::int64_t size = sample_size(rng);
        const std::int64_t seed_const = rng.next_range(1, 8999);
        switch (rng.next_below(3)) {
            case 0: {  // heap use-after-free
                out.shape = "use_after_free";
                out.difficulty = 1;
                const std::vector<std::string> args = {ptr, num(size),
                                                       num(seed_const)};
                out.buggy = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = $2;
        dealloc($0, $1, 8);
        print_int(*slot);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1, 8);
        let slot = $0 as *mut i64;
        *slot = $2;
        print_int(*slot);
        dealloc($0, $1, 8);
    }
}
)",
                                        args);
                out.inputs = {{}};
                break;
            }
            case 1: {  // local escaping its scope
                out.shape = "scope_escape";
                out.difficulty = 2;
                const std::vector<std::string> args = {ptr, num(seed_const), val};
                out.buggy = fill_template(R"(fn main() {
    let mut $0 = 0 as *const i32;
    {
        let $2 = $1;
        $0 = &$2 as *const i32;
    }
    unsafe {
        print_int(*$0 as i64);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let $2 = $1;
    let mut $0 = 0 as *const i32;
    {
        $0 = &$2 as *const i32;
    }
    unsafe {
        print_int(*$0 as i64);
    }
}
)",
                                        args);
                out.inputs = {{}};
                break;
            }
            default: {  // conditional null dereference
                out.shape = "null_deref";
                out.strategy = dataset::FixStrategy::AssertionGuard;
                out.difficulty = 2;
                const std::vector<std::string> args = {ptr, num(seed_const), val};
                out.buggy = fill_template(R"(fn main() {
    let $2 = $1;
    let mut $0 = 0 as *const i32;
    if input(0) > 0 {
        $0 = &$2 as *const i32;
    }
    unsafe {
        print_int(*$0 as i64);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let $2 = $1;
    let mut $0 = 0 as *const i32;
    if input(0) > 0 {
        $0 = &$2 as *const i32;
    }
    if $0 as usize != 0 {
        unsafe {
            print_int(*$0 as i64);
        }
    } else {
        print_int(0 - 1);
    }
}
)",
                                        args);
                out.inputs = {{0}, {rng.next_range(1, 9)}};
                break;
            }
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// uninit
// ---------------------------------------------------------------------------

class UninitGenerator final : public CaseGenerator {
  public:
    explicit UninitGenerator(MutationKnobs knobs)
        : CaseGenerator("uninit", miri::UbCategory::Uninit, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string ptr = pick(rng, kPtrNames);
        const std::int64_t seed_const = rng.next_range(1, 899);
        switch (rng.next_below(3)) {
            case 0: {  // read of freshly allocated memory
                out.shape = "fresh_read";
                out.difficulty = 1;
                const std::vector<std::string> args = {ptr, num(seed_const)};
                out.buggy = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc(8, 8);
        let slot = $0 as *mut i64;
        print_int(*slot + $1);
        dealloc($0, 8, 8);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc(8, 8);
        let slot = $0 as *mut i64;
        *slot = 0;
        print_int(*slot + $1);
        dealloc($0, 8, 8);
    }
}
)",
                                        args);
                out.inputs = {{}};
                break;
            }
            case 1: {  // off-by-one initialization loop
                out.shape = "partial_init";
                out.difficulty = 2;
                const std::int64_t count = rng.next_range(3, 9);
                const std::int64_t stride = rng.next_range(1, 5);
                const std::vector<std::string> args = {ptr, num(count),
                                                       num(stride)};
                out.buggy = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1 * 8, 8);
        let base = $0 as *mut i64;
        let mut i: i64 = 0;
        while i < $1 - 1 {
            *offset(base, i as isize) = i * $2;
            i = i + 1;
        }
        let mut total: i64 = 0;
        i = 0;
        while i < $1 {
            total = total + *offset(base, i as isize);
            i = i + 1;
        }
        print_int(total);
        dealloc($0, $1 * 8, 8);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1 * 8, 8);
        let base = $0 as *mut i64;
        let mut i: i64 = 0;
        while i < $1 {
            *offset(base, i as isize) = i * $2;
            i = i + 1;
        }
        let mut total: i64 = 0;
        i = 0;
        while i < $1 {
            total = total + *offset(base, i as isize);
            i = i + 1;
        }
        print_int(total);
        dealloc($0, $1 * 8, 8);
    }
}
)",
                                        args);
                out.inputs = {{}};
                break;
            }
            default: {  // missing else branch
                out.shape = "conditional_init";
                out.difficulty = 2;
                const std::vector<std::string> args = {ptr, num(seed_const)};
                out.buggy = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc(8, 8);
        let slot = $0 as *mut i64;
        if input(0) > 0 {
            *slot = input(0) * $1;
        }
        print_int(*slot);
        dealloc($0, 8, 8);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc(8, 8);
        let slot = $0 as *mut i64;
        if input(0) > 0 {
            *slot = input(0) * $1;
        } else {
            *slot = 0;
        }
        print_int(*slot);
        dealloc($0, 8, 8);
    }
}
)",
                                        args);
                out.inputs = {{0}, {rng.next_range(1, 9)}};
                break;
            }
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// provenance
// ---------------------------------------------------------------------------

class ProvenanceGenerator final : public CaseGenerator {
  public:
    explicit ProvenanceGenerator(MutationKnobs knobs)
        : CaseGenerator("provenance", miri::UbCategory::Provenance, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string ptr = pick(rng, kPtrNames);
        const std::string val = pick(rng, kValNames);
        const std::int64_t len = rng.next_range(3, 8);
        const std::int64_t seed_const = rng.next_range(1, 899);
        switch (rng.next_below(3)) {
            case 0: {  // int round trip loses provenance
                out.shape = "int_roundtrip";
                out.strategy = dataset::FixStrategy::SafeAlternative;
                out.difficulty = 2;
                const std::vector<std::string> args = {ptr, val, num(seed_const)};
                out.buggy = fill_template(R"(fn main() {
    let $1 = $2;
    let addr = &$1 as *const i32 as usize;
    let $0 = addr as *const i32;
    unsafe {
        print_int(*$0 as i64);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let $1 = $2;
    let $0 = &$1 as *const i32;
    unsafe {
        print_int(*$0 as i64);
    }
}
)",
                                        args);
                out.inputs = {{}};
                break;
            }
            case 1: {  // loop walks one element past the end
                out.shape = "loop_overrun";
                out.difficulty = 1;
                const std::vector<std::string> args = {ptr, num(len)};
                out.buggy = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1 * 8, 8);
        let base = $0 as *mut i64;
        let mut i: i64 = 0;
        while i <= $1 {
            *offset(base, i as isize) = i;
            i = i + 1;
        }
        print_int(*offset(base, 1));
        dealloc($0, $1 * 8, 8);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1 * 8, 8);
        let base = $0 as *mut i64;
        let mut i: i64 = 0;
        while i < $1 {
            *offset(base, i as isize) = i;
            i = i + 1;
        }
        print_int(*offset(base, 1));
        dealloc($0, $1 * 8, 8);
    }
}
)",
                                        args);
                out.inputs = {{}};
                break;
            }
            default: {  // input-controlled wild offset
                out.shape = "wild_offset";
                out.strategy = dataset::FixStrategy::AssertionGuard;
                out.difficulty = 2;
                const std::int64_t scale = rng.next_range(2, 20);
                const std::vector<std::string> args = {ptr, num(len), num(scale)};
                out.buggy = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1 * 8, 8);
        let base = $0 as *mut i64;
        let mut i: i64 = 0;
        while i < $1 {
            *offset(base, i as isize) = i * $2;
            i = i + 1;
        }
        let pick = input(0);
        print_int(*offset(base, pick as isize));
        dealloc($0, $1 * 8, 8);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    unsafe {
        let $0 = alloc($1 * 8, 8);
        let base = $0 as *mut i64;
        let mut i: i64 = 0;
        while i < $1 {
            *offset(base, i as isize) = i * $2;
            i = i + 1;
        }
        let pick = input(0);
        if pick >= 0 && pick < $1 {
            print_int(*offset(base, pick as isize));
        } else {
            print_int(0 - 1);
        }
        dealloc($0, $1 * 8, 8);
    }
}
)",
                                        args);
                out.inputs = {{rng.next_range(0, len - 1)},
                              {len + rng.next_range(1, 99)}};
                break;
            }
        }
        return out;
    }
};

}  // namespace

std::unique_ptr<CaseGenerator> make_alloc_generator(MutationKnobs knobs) {
    return std::make_unique<AllocGenerator>(knobs);
}

std::unique_ptr<CaseGenerator> make_dangling_generator(MutationKnobs knobs) {
    return std::make_unique<DanglingGenerator>(knobs);
}

std::unique_ptr<CaseGenerator> make_uninit_generator(MutationKnobs knobs) {
    return std::make_unique<UninitGenerator>(knobs);
}

std::unique_ptr<CaseGenerator> make_provenance_generator(MutationKnobs knobs) {
    return std::make_unique<ProvenanceGenerator>(knobs);
}

}  // namespace rustbrain::gen
