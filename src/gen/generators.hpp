// The built-in generator library: one CaseGenerator per UB category plus
// cross-category compositions. Each factory configures a generator with the
// given mutation knobs; GeneratorRegistry::builtin() wires them to string
// ids. Every generator drafts several distinct bug shapes (randomly chosen
// per case) over randomized identifier/constant/size pools, so a forged
// corpus covers a far wider surface than the hand-written dataset builders.
#pragma once

#include <memory>

#include "gen/generator.hpp"

namespace rustbrain::gen {

// Memory categories.
std::unique_ptr<CaseGenerator> make_alloc_generator(MutationKnobs knobs);
std::unique_ptr<CaseGenerator> make_dangling_generator(MutationKnobs knobs);
std::unique_ptr<CaseGenerator> make_uninit_generator(MutationKnobs knobs);
std::unique_ptr<CaseGenerator> make_provenance_generator(MutationKnobs knobs);

// Borrow/value categories.
std::unique_ptr<CaseGenerator> make_bothborrow_generator(MutationKnobs knobs);
std::unique_ptr<CaseGenerator> make_stackborrow_generator(MutationKnobs knobs);
std::unique_ptr<CaseGenerator> make_validity_generator(MutationKnobs knobs);
std::unique_ptr<CaseGenerator> make_unaligned_generator(MutationKnobs knobs);

// Control-flow/execution categories.
std::unique_ptr<CaseGenerator> make_panic_generator(MutationKnobs knobs);
std::unique_ptr<CaseGenerator> make_funccall_generator(MutationKnobs knobs);
std::unique_ptr<CaseGenerator> make_funcpointer_generator(MutationKnobs knobs);
std::unique_ptr<CaseGenerator> make_tailcall_generator(MutationKnobs knobs);

// Thread categories.
std::unique_ptr<CaseGenerator> make_datarace_generator(MutationKnobs knobs);
std::unique_ptr<CaseGenerator> make_concurrency_generator(MutationKnobs knobs);

// Cross-category compositions.
std::unique_ptr<CaseGenerator> make_panic_in_borrow_generator(MutationKnobs knobs);
std::unique_ptr<CaseGenerator> make_race_on_dangling_generator(MutationKnobs knobs);

}  // namespace rustbrain::gen
