// Generators: datarace, concurrency.
#include <string>
#include <vector>

#include "gen/generators.hpp"

namespace rustbrain::gen {

namespace {

using detail::fill_template;
using detail::pick;

const std::vector<std::string> kGlobalNames = {"COUNTER", "TOTAL", "HITS",
                                               "TICKS",   "EVENTS"};
const std::vector<std::string> kWorkerNames = {"worker", "tally", "bump",
                                               "drain",  "pump"};

std::string num(std::int64_t value) { return std::to_string(value); }

// ---------------------------------------------------------------------------
// datarace
// ---------------------------------------------------------------------------

class DataRaceGenerator final : public CaseGenerator {
  public:
    explicit DataRaceGenerator(MutationKnobs knobs)
        : CaseGenerator("datarace", miri::UbCategory::DataRace, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string global = pick(rng, kGlobalNames);
        const std::string worker = pick(rng, kWorkerNames);
        const std::int64_t step = rng.next_range(1, 99);
        const std::vector<std::string> args = {global, worker, num(step)};
        switch (rng.next_below(3)) {
            case 0: {  // two workers increment a static mut without sync
                out.shape = "counter";
                out.strategy = dataset::FixStrategy::SafeAlternative;
                out.difficulty = 2;
                out.buggy = fill_template(R"(static mut $0: i64 = 0;
fn $1() {
    unsafe {
        $0 = $0 + $2;
    }
}
fn main() {
    let first = spawn($1);
    let second = spawn($1);
    join(first);
    join(second);
    unsafe {
        print_int($0);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(static mut $0: i64 = 0;
fn $1() {
    unsafe {
        let cell = &mut $0 as *mut i64;
        let old = atomic_fetch_add(cell, $2);
    }
}
fn main() {
    let first = spawn($1);
    let second = spawn($1);
    join(first);
    join(second);
    unsafe {
        let cell = &mut $0 as *mut i64;
        print_int(atomic_load(cell as *const i64));
    }
}
)",
                                        args);
                break;
            }
            case 1: {  // writer/reader pair on a shared flag
                out.shape = "flag";
                out.strategy = dataset::FixStrategy::SafeAlternative;
                out.difficulty = 2;
                out.buggy = fill_template(R"(static mut $0: i64 = 0;
fn set_flag() {
    unsafe {
        $0 = $2;
    }
}
fn read_flag() {
    unsafe {
        print_int($0);
    }
}
fn main() {
    let writer = spawn(set_flag);
    let reader = spawn(read_flag);
    join(writer);
    join(reader);
}
)",
                                          args);
                out.fix = fill_template(R"(static mut $0: i64 = 0;
fn set_flag() {
    unsafe {
        let cell = &mut $0 as *mut i64;
        atomic_store(cell, $2);
    }
}
fn read_flag() {
    unsafe {
        let cell = &mut $0 as *mut i64;
        print_int(atomic_load(cell as *const i64));
    }
}
fn main() {
    let writer = spawn(set_flag);
    let reader = spawn(read_flag);
    join(writer);
    join(reader);
}
)",
                                        args);
                break;
            }
            default: {  // main races with a worker it joins too late
                out.shape = "late_join";
                out.difficulty = 3;
                out.buggy = fill_template(R"(static mut $0: i64 = 0;
fn $1() {
    unsafe {
        $0 = $0 + $2;
    }
}
fn main() {
    let handle = spawn($1);
    unsafe {
        $0 = $0 + 1;
    }
    join(handle);
    unsafe {
        print_int($0);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(static mut $0: i64 = 0;
fn $1() {
    unsafe {
        $0 = $0 + $2;
    }
}
fn main() {
    let handle = spawn($1);
    join(handle);
    unsafe {
        $0 = $0 + 1;
    }
    unsafe {
        print_int($0);
    }
}
)",
                                        args);
                break;
            }
        }
        out.inputs = {{}};
        return out;
    }
};

// ---------------------------------------------------------------------------
// concurrency
// ---------------------------------------------------------------------------

class ConcurrencyGenerator final : public CaseGenerator {
  public:
    explicit ConcurrencyGenerator(MutationKnobs knobs)
        : CaseGenerator("concurrency", miri::UbCategory::Concurrency, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string global = pick(rng, kGlobalNames);
        const std::string worker = pick(rng, kWorkerNames);
        const std::int64_t step = rng.next_range(1, 99);
        const std::vector<std::string> args = {global, worker, num(step)};
        switch (rng.next_below(3)) {
            case 0: {  // spawned thread never joined
                out.shape = "thread_leak";
                out.difficulty = 1;
                out.buggy = fill_template(R"(fn $1() {
    print_int($2);
}
fn main() {
    let handle = spawn($1);
    print_int(0);
}
)",
                                          args);
                out.fix = fill_template(R"(fn $1() {
    print_int($2);
}
fn main() {
    let handle = spawn($1);
    join(handle);
    print_int(0);
}
)",
                                        args);
                break;
            }
            case 1: {  // joining the same handle twice
                out.shape = "double_join";
                out.difficulty = 1;
                out.buggy = fill_template(R"(fn $1() {
    print_int($2);
}
fn main() {
    let handle = spawn($1);
    join(handle);
    join(handle);
}
)",
                                          args);
                out.fix = fill_template(R"(fn $1() {
    print_int($2);
}
fn main() {
    let handle = spawn($1);
    join(handle);
}
)",
                                        args);
                break;
            }
            default: {  // re-locking a held mutex
                out.shape = "relock";
                out.difficulty = 2;
                out.buggy = fill_template(R"(static mut LOCK: i64 = 0;
static mut $0: i64 = 0;
fn main() {
    unsafe {
        LOCK = mutex_new();
        mutex_lock(LOCK);
        $0 = $0 + $2;
        mutex_lock(LOCK);
        print_int($0);
        mutex_unlock(LOCK);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(static mut LOCK: i64 = 0;
static mut $0: i64 = 0;
fn main() {
    unsafe {
        LOCK = mutex_new();
        mutex_lock(LOCK);
        $0 = $0 + $2;
        mutex_unlock(LOCK);
        mutex_lock(LOCK);
        print_int($0);
        mutex_unlock(LOCK);
    }
}
)",
                                        args);
                break;
            }
        }
        out.inputs = {{}};
        return out;
    }
};

}  // namespace

std::unique_ptr<CaseGenerator> make_datarace_generator(MutationKnobs knobs) {
    return std::make_unique<DataRaceGenerator>(knobs);
}

std::unique_ptr<CaseGenerator> make_concurrency_generator(MutationKnobs knobs) {
    return std::make_unique<ConcurrencyGenerator>(knobs);
}

}  // namespace rustbrain::gen
