#include "gen/registry.hpp"

#include <stdexcept>
#include <utility>

#include "gen/generators.hpp"

namespace rustbrain::gen {

void GeneratorRegistry::add(Entry entry) {
    if (entries_.count(entry.id) != 0) {
        throw std::invalid_argument("duplicate generator id: " + entry.id);
    }
    entries_.emplace(entry.id, std::move(entry));
}

bool GeneratorRegistry::contains(const std::string& id) const {
    return entries_.count(id) != 0;
}

const GeneratorRegistry::Entry* GeneratorRegistry::find(
    const std::string& id) const {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> GeneratorRegistry::ids() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) out.push_back(id);
    return out;
}

std::string GeneratorRegistry::help() const {
    std::string out;
    for (const auto& [id, entry] : entries_) {
        out += "  " + id + " — " + entry.description + "\n";
    }
    return out;
}

std::unique_ptr<CaseGenerator> GeneratorRegistry::build(
    const std::string& id, const support::OptionMap& options) const {
    const Entry* entry = find(id);
    if (entry == nullptr) {
        std::string message = "unknown generator id '" + id + "'; available:";
        for (const std::string& known : ids()) message += ' ' + known;
        throw std::invalid_argument(message);
    }
    return entry->build(options);
}

MutationKnobs resolve_knobs(const support::OptionMap& options) {
    options.check_known({"depth", "padding", "helpers"});
    MutationKnobs knobs;
    knobs.max_nesting = options.get_int("depth", knobs.max_nesting);
    knobs.max_padding = options.get_int("padding", knobs.max_padding);
    knobs.helpers = options.get_bool("helpers", knobs.helpers);
    if (knobs.max_nesting < 0 || knobs.max_nesting > 16) {
        throw std::invalid_argument("option depth must be in [0, 16]");
    }
    if (knobs.max_padding < 0 || knobs.max_padding > 16) {
        throw std::invalid_argument("option padding must be in [0, 16]");
    }
    return knobs;
}

namespace {

using Factory = std::unique_ptr<CaseGenerator> (*)(MutationKnobs);

GeneratorRegistry::Builder knob_builder(Factory factory) {
    return [factory](const support::OptionMap& options) {
        return factory(resolve_knobs(options));
    };
}

}  // namespace

const GeneratorRegistry& GeneratorRegistry::builtin() {
    static const GeneratorRegistry registry = [] {
        GeneratorRegistry r;
        r.add({"alloc", "double free / wrong layout / leak",
               knob_builder(make_alloc_generator)});
        r.add({"danglingpointer",
               "use-after-free / scope escape / conditional null deref",
               knob_builder(make_dangling_generator)});
        r.add({"uninit",
               "fresh read / off-by-one init loop / missing else init",
               knob_builder(make_uninit_generator)});
        r.add({"provenance",
               "int round trip / loop overrun / input-controlled wild offset",
               knob_builder(make_provenance_generator)});
        r.add({"bothborrow",
               "shared-then-mut / write under shared / borrow juggling",
               knob_builder(make_bothborrow_generator)});
        r.add({"stackborrow",
               "raw invalidated by &mut / raw after write / readonly write",
               knob_builder(make_stackborrow_generator)});
        r.add({"validity", "out-of-range bytes punned to bool",
               knob_builder(make_validity_generator)});
        r.add({"unaligned",
               "byte/element offset confusion and misaligned wide accesses",
               knob_builder(make_unaligned_generator)});
        r.add({"panic", "unchecked index / div by zero / i32 overflow",
               knob_builder(make_panic_generator)});
        r.add({"func.call",
               "bogus / corrupted / data addresses called as code",
               knob_builder(make_funccall_generator)});
        r.add({"func.pointer", "fn pointers transmuted to wrong signatures",
               knob_builder(make_funcpointer_generator)});
        r.add({"tailcall",
               "become through wrong signatures, bogus targets, escapes",
               knob_builder(make_tailcall_generator)});
        r.add({"datarace",
               "unsynchronized static mut access across threads",
               knob_builder(make_datarace_generator)});
        r.add({"concurrency", "thread leak / double join / mutex relock",
               knob_builder(make_concurrency_generator)});
        r.add({"panic-in-borrow",
               "composition: unchecked index inside a correct borrow dance",
               knob_builder(make_panic_in_borrow_generator)});
        r.add({"race-on-dangling",
               "composition: use-after-free while a worker thread runs",
               knob_builder(make_race_on_dangling_generator)});
        return r;
    }();
    return registry;
}

}  // namespace rustbrain::gen
