#include "gen/corpus_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "miri/finding.hpp"

namespace rustbrain::gen {

namespace {

const char* kMagic = "rustbrain-corpus";

bool category_from_label(const std::string& label, miri::UbCategory& out) {
    for (miri::UbCategory category : miri::all_ub_categories()) {
        if (label == miri::ub_category_label(category)) {
            out = category;
            return true;
        }
    }
    // CompileError is not part of all_ub_categories' figure order but is a
    // legal case category nonetheless.
    if (label == miri::ub_category_label(miri::UbCategory::CompileError)) {
        out = miri::UbCategory::CompileError;
        return true;
    }
    return false;
}

bool strategy_from_name(const std::string& name, dataset::FixStrategy& out) {
    using dataset::FixStrategy;
    for (FixStrategy strategy :
         {FixStrategy::SafeAlternative, FixStrategy::AssertionGuard,
          FixStrategy::SemanticModification}) {
        if (name == dataset::fix_strategy_name(strategy)) {
            out = strategy;
            return true;
        }
    }
    return false;
}

/// Cursor over the serialized text with line-accurate error reporting.
class Reader {
  public:
    explicit Reader(const std::string& text) : text_(text) {}

    [[noreturn]] void fail(const std::string& message) const {
        throw std::runtime_error("corpus format error (line " +
                                 std::to_string(line_) + "): " + message);
    }

    [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }

    /// Next line without its trailing '\n'. line_ names the line being
    /// read, so errors raised while processing it point at it.
    std::string read_line() {
        ++line_;
        if (at_end()) fail("unexpected end of input");
        const std::size_t newline = text_.find('\n', pos_);
        if (newline == std::string::npos) {
            fail("missing final newline");
        }
        std::string line = text_.substr(pos_, newline - pos_);
        pos_ = newline + 1;
        return line;
    }

    /// A line of the exact form "<key> <payload>"; returns the payload.
    std::string read_field(const std::string& key) {
        const std::string line = read_line();
        if (line == key) return "";
        if (line.rfind(key + " ", 0) != 0) {
            fail("expected '" + key + " ...' but found '" + line + "'");
        }
        return line.substr(key.size() + 1);
    }

    std::uint64_t parse_u64(const std::string& text, const char* what) {
        try {
            std::size_t consumed = 0;
            const unsigned long long value = std::stoull(text, &consumed);
            if (consumed == text.size() && !text.empty() && text[0] != '-') {
                return value;
            }
        } catch (...) {
        }
        fail(std::string(what) + " is not an unsigned integer: '" + text + "'");
    }

    /// Exactly `bytes` raw bytes followed by one '\n'.
    std::string read_block(std::uint64_t bytes) {
        // Overflow-safe form of pos_ + bytes + 1 > size(): a corrupt byte
        // count near UINT64_MAX must fail here, not wrap and "fit".
        const std::uint64_t remaining = text_.size() - pos_;
        if (remaining == 0 || bytes >= remaining) {
            fail("source block runs past end of input");
        }
        std::string block = text_.substr(pos_, bytes);
        pos_ += bytes;
        if (text_[pos_] != '\n') {
            fail("source block is not terminated by a newline "
                 "(byte count is wrong)");
        }
        ++pos_;
        for (char c : block) {
            if (c == '\n') ++line_;
        }
        ++line_;
        return block;
    }

  private:
    const std::string& text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 0;  // the line currently being processed (1-based)
};

}  // namespace

std::string corpus_to_string(const dataset::Corpus& corpus) {
    std::ostringstream out;
    out << kMagic << " v" << kCorpusFormatVersion << "\n";
    out << "cases " << corpus.size() << "\n";
    for (const dataset::UbCase& c : corpus.cases()) {
        // Refuse to write what load_corpus would refuse to read — a save
        // that cannot round-trip is data loss deferred to load time.
        if (c.id.empty() || c.id.find('\n') != std::string::npos) {
            throw std::invalid_argument(
                "cannot serialize corpus: case id is empty or contains a "
                "newline: '" + c.id + "'");
        }
        if (c.difficulty < 1 || c.difficulty > 3) {
            throw std::invalid_argument(
                "cannot serialize corpus: case " + c.id +
                " has difficulty outside [1, 3]");
        }
        out << "\ncase " << c.id << "\n";
        out << "category " << miri::ub_category_label(c.category) << "\n";
        out << "strategy " << dataset::fix_strategy_name(c.intended_strategy)
            << "\n";
        out << "difficulty " << c.difficulty << "\n";
        out << "inputs " << c.inputs.size() << "\n";
        for (const std::vector<std::int64_t>& input : c.inputs) {
            out << "input " << input.size();
            for (std::int64_t value : input) out << ' ' << value;
            out << "\n";
        }
        out << "buggy " << c.buggy_source.size() << "\n"
            << c.buggy_source << "\n";
        out << "fix " << c.reference_fix.size() << "\n"
            << c.reference_fix << "\n";
        out << "end\n";
    }
    return out.str();
}

dataset::Corpus corpus_from_string(const std::string& text) {
    Reader reader(text);

    const std::string header = reader.read_line();
    const std::string expected_header =
        std::string(kMagic) + " v" + std::to_string(kCorpusFormatVersion);
    if (header != expected_header) {
        if (header.rfind(kMagic, 0) != 0) {
            reader.fail("not a rustbrain corpus file (bad magic '" + header +
                        "')");
        }
        reader.fail("unsupported corpus format version '" + header +
                    "' (this build reads '" + expected_header + "')");
    }
    const std::uint64_t declared_cases =
        reader.parse_u64(reader.read_field("cases"), "case count");
    // Every case occupies well over one byte, so a count beyond the input
    // size is certainly corrupt — reject it here rather than letting an
    // untrusted header size a giant reservation.
    if (declared_cases > text.size()) {
        reader.fail("declared case count " + std::to_string(declared_cases) +
                    " exceeds the input size");
    }

    std::vector<dataset::UbCase> cases;
    cases.reserve(declared_cases);
    for (std::uint64_t index = 0; index < declared_cases; ++index) {
        // Blank separator line between cases.
        if (!reader.read_line().empty()) {
            reader.fail("expected a blank line before case " +
                        std::to_string(index));
        }
        dataset::UbCase c;
        c.id = reader.read_field("case");
        if (c.id.empty()) reader.fail("case id must not be empty");

        const std::string label = reader.read_field("category");
        if (!category_from_label(label, c.category)) {
            reader.fail("unknown category '" + label + "' in case " + c.id);
        }
        const std::string strategy = reader.read_field("strategy");
        if (!strategy_from_name(strategy, c.intended_strategy)) {
            reader.fail("unknown strategy '" + strategy + "' in case " + c.id);
        }
        c.difficulty = static_cast<int>(
            reader.parse_u64(reader.read_field("difficulty"), "difficulty"));
        if (c.difficulty < 1 || c.difficulty > 3) {
            reader.fail("difficulty out of range in case " + c.id);
        }

        const std::uint64_t input_count =
            reader.parse_u64(reader.read_field("inputs"), "input count");
        for (std::uint64_t i = 0; i < input_count; ++i) {
            std::istringstream line(reader.read_field("input"));
            std::uint64_t length = 0;
            if (!(line >> length)) {
                reader.fail("malformed input vector in case " + c.id);
            }
            std::vector<std::int64_t> values;
            values.reserve(length);
            for (std::uint64_t v = 0; v < length; ++v) {
                std::int64_t value = 0;
                if (!(line >> value)) {
                    reader.fail("input vector shorter than declared in case " +
                                c.id);
                }
                values.push_back(value);
            }
            std::string trailing;
            if (line >> trailing) {
                reader.fail("input vector longer than declared in case " +
                            c.id);
            }
            c.inputs.push_back(std::move(values));
        }

        c.buggy_source = reader.read_block(
            reader.parse_u64(reader.read_field("buggy"), "buggy byte count"));
        c.reference_fix = reader.read_block(
            reader.parse_u64(reader.read_field("fix"), "fix byte count"));
        if (reader.read_line() != "end") {
            reader.fail("expected 'end' after case " + c.id);
        }
        cases.push_back(std::move(c));
    }
    if (!reader.at_end()) {
        reader.fail("trailing content after the declared " +
                    std::to_string(declared_cases) + " cases");
    }
    return dataset::Corpus(std::move(cases));
}

void save_corpus(const dataset::Corpus& corpus, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        throw std::runtime_error("cannot open corpus file for writing: " +
                                 path);
    }
    const std::string text = corpus_to_string(corpus);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    if (!out) {
        throw std::runtime_error("failed writing corpus file: " + path);
    }
}

dataset::Corpus load_corpus(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot open corpus file: " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        throw std::runtime_error("failed reading corpus file: " + path);
    }
    try {
        return corpus_from_string(buffer.str());
    } catch (const std::runtime_error& error) {
        throw std::runtime_error(path + ": " + error.what());
    }
}

}  // namespace rustbrain::gen
