// Corpus Forge — procedural UB case generation.
//
// A CaseGenerator synthesizes corpus entries for one UB category (or one
// cross-category composition): it drafts a buggy program, its reference fix
// and trigger inputs from seeded RNG streams, then pushes BOTH programs
// through the lang/ front end — parse, structural AST mutation (nested block
// wrapping, dead-code padding, never-called helper functions), print — so
// every emitted case is a genuine mini-Rust program the rest of the system
// (MiriLite, pruning, vectorization, the engines) can chew on, not a string
// template. The same mutation plan is applied to the buggy program and the
// fix, which preserves the semantic-benchmark trace relationship between
// the two.
//
// Generation is deterministic: a generator is a pure function of (its
// configuration, the Rng handed to generate()). The forge derives that Rng
// from (corpus seed, generator id, case serial, attempt), so a whole
// generated corpus is a pure function of its ForgeOptions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataset/case.hpp"
#include "support/rng.hpp"

namespace rustbrain::gen {

/// Structural mutation knobs shared by every generator; resolved from a
/// generator option map by GeneratorRegistry ("depth=3,padding=4,helpers=off").
struct MutationKnobs {
    /// Max extra block-nesting levels wrapped around fn main's body
    /// (sampled uniformly in [0, max_nesting] per case).
    int max_nesting = 2;
    /// Max dead-code statements added to fn main (sampled in [0, max_padding]).
    int max_padding = 3;
    /// Allow appending a never-called helper function.
    bool helpers = true;
};

class CaseGenerator {
  public:
    CaseGenerator(std::string id, miri::UbCategory category, MutationKnobs knobs);
    virtual ~CaseGenerator() = default;
    CaseGenerator(const CaseGenerator&) = delete;
    CaseGenerator& operator=(const CaseGenerator&) = delete;

    [[nodiscard]] const std::string& id() const { return id_; }
    [[nodiscard]] miri::UbCategory category() const { return category_; }
    [[nodiscard]] const MutationKnobs& knobs() const { return knobs_; }

    /// Synthesize one candidate case from `rng`. The returned case's id is
    /// the shape name only (e.g. "double_free"); the forge composes the
    /// final corpus-unique id. The candidate is NOT yet validated — the
    /// forge's rejection sampler owns that.
    [[nodiscard]] dataset::UbCase generate(support::Rng& rng) const;

  protected:
    /// One drafted scenario before structural mutation.
    struct Draft {
        std::string shape;  // e.g. "double_free"
        std::string buggy;  // source text (template-filled)
        std::string fix;
        std::vector<std::vector<std::int64_t>> inputs;
        dataset::FixStrategy strategy =
            dataset::FixStrategy::SemanticModification;
        int difficulty = 1;
    };

    /// Produce one draft; must consume rng deterministically.
    [[nodiscard]] virtual Draft draft(support::Rng& rng) const = 0;

  private:
    std::string id_;
    miri::UbCategory category_;
    MutationKnobs knobs_;
};

namespace detail {

/// Replace `$0`..`$9` placeholders with the given fragments (the same
/// convention the hand-written dataset builders use).
std::string fill_template(std::string templ,
                          const std::vector<std::string>& args);

/// Pick one entry of a pool uniformly.
template <typename T>
const T& pick(support::Rng& rng, const std::vector<T>& pool) {
    return pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
}

}  // namespace detail

}  // namespace rustbrain::gen
