// forge_corpus — deterministic rejection-sampled corpus generation.
//
// Cases are drawn round-robin from the selected generators. Every candidate
// must earn its place: it is accepted only if both programs parse and
// typecheck, the buggy program fails MiriLite with the generator's declared
// UbCategory, and the reference fix passes (dataset::validate_case — the
// exact contract the hand-written corpus is held to). Rejected candidates
// are resampled from a fresh attempt-indexed RNG stream, so the output is a
// pure function of ForgeOptions: same seed + options => byte-identical
// corpus, on any machine, at any parallelism.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dataset/corpus.hpp"
#include "support/options.hpp"

namespace rustbrain::verify {
class Oracle;
}  // namespace rustbrain::verify

namespace rustbrain::gen {

struct ForgeOptions {
    std::uint64_t seed = 42;
    std::size_t count = 100;
    /// Generator ids to draw from; empty => every builtin generator.
    std::vector<std::string> generators;
    /// Forwarded to every selected generator (mutation knobs).
    support::OptionMap generator_options;
    /// Rejection-sampling budget per corpus slot; exceeding it throws
    /// (it means a generator is systematically producing invalid cases).
    int max_attempts_per_case = 64;
    /// Verification oracle for the acceptance checks; null =>
    /// verify::Oracle::shared_default(). Candidates compile once and that
    /// compile is shared with validate_case's runs (and with any later
    /// sweep over the forged corpus in the same process). The corpus
    /// produced is byte-identical whichever oracle (cached or not) is used.
    const verify::Oracle* oracle = nullptr;
};

struct ForgeStats {
    std::size_t attempts = 0;
    std::size_t rejected_parse = 0;
    std::size_t rejected_typecheck = 0;
    std::size_t rejected_validation = 0;
    std::map<std::string, std::size_t> accepted_by_generator;

    [[nodiscard]] std::size_t accepted() const {
        std::size_t total = 0;
        for (const auto& [id, n] : accepted_by_generator) total += n;
        return total;
    }
};

/// Generate `options.count` validated cases. Throws std::invalid_argument on
/// unknown generator ids/options and std::runtime_error when a generator
/// exhausts its attempt budget.
dataset::Corpus forge_corpus(const ForgeOptions& options,
                             ForgeStats* stats = nullptr);

}  // namespace rustbrain::gen
