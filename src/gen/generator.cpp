#include "gen/generator.hpp"

#include <algorithm>
#include <utility>

#include "lang/ast.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"

namespace rustbrain::gen {

namespace detail {

std::string fill_template(std::string templ,
                          const std::vector<std::string>& args) {
    std::string out;
    out.reserve(templ.size());
    for (std::size_t i = 0; i < templ.size(); ++i) {
        if (templ[i] == '$' && i + 1 < templ.size() && templ[i + 1] >= '0' &&
            templ[i + 1] <= '9') {
            const std::size_t index = static_cast<std::size_t>(templ[i + 1] - '0');
            if (index < args.size()) {
                out += args[index];
                ++i;
                continue;
            }
        }
        out += templ[i];
    }
    return out;
}

}  // namespace detail

namespace {

// One dead-code padding statement. Values are kept small so padding can
// never overflow or otherwise perturb the program it decorates.
struct PadSpec {
    int kind = 0;  // 0: const let, 1: arithmetic let, 2: counting loop
    std::string name;
    std::int64_t a = 0;
    std::int64_t b = 0;
};

/// The structural mutations of one case, sampled once and applied to both
/// the buggy program and the reference fix so their traces stay related.
struct MutationPlan {
    int nesting = 0;
    std::vector<PadSpec> front_pads;
    std::vector<PadSpec> back_pads;
    bool helper = false;
    std::string helper_name;
    std::int64_t helper_mul = 1;
    std::int64_t helper_add = 0;
};

MutationPlan sample_plan(support::Rng& rng, const MutationKnobs& knobs) {
    MutationPlan plan;
    if (knobs.max_nesting > 0) {
        plan.nesting = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(knobs.max_nesting) + 1));
    }
    int pads = 0;
    if (knobs.max_padding > 0) {
        pads = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(knobs.max_padding) + 1));
    }
    static const std::vector<std::string> kPadNames = {
        "pad_idle", "pad_scratch", "pad_spare", "pad_stash", "pad_slack"};
    for (int i = 0; i < pads; ++i) {
        PadSpec pad;
        pad.kind = static_cast<int>(rng.next_below(3));
        pad.name =
            detail::pick(rng, kPadNames) + "_" + std::to_string(i);
        pad.a = rng.next_range(1, 90);
        pad.b = rng.next_range(1, 9);
        if (rng.chance(0.5)) {
            plan.front_pads.push_back(std::move(pad));
        } else {
            plan.back_pads.push_back(std::move(pad));
        }
    }
    if (knobs.helpers && rng.chance(0.4)) {
        static const std::vector<std::string> kHelperNames = {
            "unused_route", "unused_blend", "unused_probe", "unused_tally"};
        plan.helper = true;
        plan.helper_name = detail::pick(rng, kHelperNames);
        plan.helper_mul = rng.next_range(2, 9);
        plan.helper_add = rng.next_range(0, 99);
    }
    return plan;
}

lang::ExprPtr make_int(std::int64_t value) {
    auto lit = std::make_unique<lang::IntLitExpr>();
    lit->value = static_cast<std::uint64_t>(value);
    return lit;
}

lang::ExprPtr make_var(const std::string& name) {
    auto ref = std::make_unique<lang::VarRefExpr>();
    ref->name = name;
    return ref;
}

lang::ExprPtr make_binary(lang::BinaryOp op, lang::ExprPtr lhs,
                          lang::ExprPtr rhs) {
    auto expr = std::make_unique<lang::BinaryExpr>();
    expr->op = op;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    return expr;
}

lang::StmtPtr make_let(const std::string& name, bool is_mut,
                       lang::ExprPtr init) {
    auto let = std::make_unique<lang::LetStmt>();
    let->name = name;
    let->is_mut = is_mut;
    let->declared_type = lang::Type::i64();
    let->init = std::move(init);
    return let;
}

/// Render one pad spec into statements (1 or 2 of them).
std::vector<lang::StmtPtr> make_pad(const PadSpec& pad) {
    std::vector<lang::StmtPtr> stmts;
    switch (pad.kind) {
        case 0:
            stmts.push_back(make_let(pad.name, false, make_int(pad.a)));
            break;
        case 1:
            stmts.push_back(make_let(
                pad.name, false,
                make_binary(lang::BinaryOp::Add,
                            make_binary(lang::BinaryOp::Mul, make_int(pad.a),
                                        make_int(pad.b)),
                            make_int(pad.b))));
            break;
        default: {
            stmts.push_back(make_let(pad.name, true, make_int(0)));
            auto loop = std::make_unique<lang::WhileStmt>();
            loop->condition = make_binary(lang::BinaryOp::Lt,
                                          make_var(pad.name), make_int(pad.b));
            auto step = std::make_unique<lang::AssignStmt>();
            step->place = make_var(pad.name);
            step->value = make_binary(lang::BinaryOp::Add, make_var(pad.name),
                                      make_int(1));
            loop->body.statements.push_back(std::move(step));
            stmts.push_back(std::move(loop));
            break;
        }
    }
    return stmts;
}

void apply_plan(lang::Program& program, const MutationPlan& plan) {
    lang::FnItem* main_fn = program.find_function("main");
    if (main_fn != nullptr) {
        // Wrap the existing body in `nesting` plain blocks. Everything the
        // body declares stays in scope for the whole (wrapped) body, so this
        // is behavior-preserving for any program that only runs `main` once.
        for (int level = 0; level < plan.nesting; ++level) {
            auto wrapper = std::make_unique<lang::BlockStmt>();
            wrapper->block.statements = std::move(main_fn->body.statements);
            main_fn->body.statements.clear();
            main_fn->body.statements.push_back(std::move(wrapper));
        }
        // Dead-code padding around the wrapped body. Pads never print, never
        // touch existing locals and never overflow, so the observable trace
        // is untouched.
        std::vector<lang::StmtPtr> body = std::move(main_fn->body.statements);
        main_fn->body.statements.clear();
        for (const PadSpec& pad : plan.front_pads) {
            for (auto& stmt : make_pad(pad)) {
                main_fn->body.statements.push_back(std::move(stmt));
            }
        }
        for (auto& stmt : body) {
            main_fn->body.statements.push_back(std::move(stmt));
        }
        for (const PadSpec& pad : plan.back_pads) {
            for (auto& stmt : make_pad(pad)) {
                main_fn->body.statements.push_back(std::move(stmt));
            }
        }
    }
    if (plan.helper && program.find_function(plan.helper_name) == nullptr) {
        lang::FnItem helper;
        helper.name = plan.helper_name;
        helper.params.push_back({"x", lang::Type::i64()});
        helper.return_type = lang::Type::i64();
        auto ret = std::make_unique<lang::ReturnStmt>();
        ret->value = make_binary(
            lang::BinaryOp::Add,
            make_binary(lang::BinaryOp::Mul, make_var("x"),
                        make_int(plan.helper_mul)),
            make_int(plan.helper_add));
        helper.body.statements.push_back(std::move(ret));
        program.functions.push_back(std::move(helper));
    }
    program.renumber();
}

/// Parse -> mutate -> print. If the draft source unexpectedly fails to
/// parse, it is returned unmodified and left for the forge's rejection
/// sampler to throw out.
std::string mutate_source(const std::string& source, const MutationPlan& plan) {
    auto program = lang::try_parse(source);
    if (!program) return source;
    apply_plan(*program, plan);
    return lang::print_program(*program);
}

}  // namespace

CaseGenerator::CaseGenerator(std::string id, miri::UbCategory category,
                             MutationKnobs knobs)
    : id_(std::move(id)), category_(category), knobs_(knobs) {}

dataset::UbCase CaseGenerator::generate(support::Rng& rng) const {
    Draft drafted = draft(rng);
    const MutationPlan plan = sample_plan(rng, knobs_);

    dataset::UbCase out;
    out.id = drafted.shape;
    out.category = category_;
    out.intended_strategy = drafted.strategy;
    out.inputs = std::move(drafted.inputs);
    out.difficulty = drafted.difficulty;
    out.buggy_source = mutate_source(drafted.buggy, plan);
    out.reference_fix = mutate_source(drafted.fix, plan);
    // Mutations that add real structure make the program harder to read —
    // reflect that in the difficulty the expert-time model and SimLLM see.
    if (plan.nesting >= 2 ||
        plan.front_pads.size() + plan.back_pads.size() >= 3) {
        out.difficulty = std::min(3, out.difficulty + 1);
    }
    return out;
}

}  // namespace rustbrain::gen
