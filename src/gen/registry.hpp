// GeneratorRegistry — build any case generator from a string id + option
// map, mirroring core::EngineRegistry: "alloc" / "panic" / ... /
// "race-on-dangling" plus options like "depth=3,padding=4,helpers=off".
// Unknown ids and unknown option keys both throw std::invalid_argument with
// a message listing what IS available, so a typo in a forge config fails
// loudly instead of silently generating the default mix.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gen/generator.hpp"
#include "support/options.hpp"

namespace rustbrain::gen {

class GeneratorRegistry {
  public:
    using Builder = std::function<std::unique_ptr<CaseGenerator>(
        const support::OptionMap& options)>;

    struct Entry {
        std::string id;
        std::string description;
        Builder build;
    };

    /// Register a generator; throws std::invalid_argument on a duplicate id.
    void add(Entry entry);

    [[nodiscard]] bool contains(const std::string& id) const;
    [[nodiscard]] const Entry* find(const std::string& id) const;
    [[nodiscard]] std::vector<std::string> ids() const;  // sorted
    /// "id — description" lines, one per generator (for --generators usage).
    [[nodiscard]] std::string help() const;

    /// Build a generator by id. Throws std::invalid_argument listing the
    /// available ids when `id` is unknown, or naming the offending key when
    /// `options` contains one the generator does not understand.
    [[nodiscard]] std::unique_ptr<CaseGenerator> build(
        const std::string& id, const support::OptionMap& options = {}) const;

    /// Every category generator plus the cross-category compositions.
    static const GeneratorRegistry& builtin();

  private:
    std::map<std::string, Entry> entries_;
};

/// The option keys every built-in generator understands, resolved into
/// MutationKnobs ("depth" = max nesting, "padding" = max dead-code
/// statements, "helpers" = allow never-called helper functions).
MutationKnobs resolve_knobs(const support::OptionMap& options);

}  // namespace rustbrain::gen
