// Generators: panic, func.call, func.pointer, tailcall.
#include <string>
#include <vector>

#include "gen/generators.hpp"

namespace rustbrain::gen {

namespace {

using detail::fill_template;
using detail::pick;

const std::vector<std::string> kArrNames = {"table", "values", "samples",
                                            "grid",  "ranks",  "bins"};
const std::vector<std::string> kFnNames = {"compute", "transform", "score",
                                           "fold",    "measure",   "shade"};

std::string num(std::int64_t value) { return std::to_string(value); }

// ---------------------------------------------------------------------------
// panic
// ---------------------------------------------------------------------------

class PanicGenerator final : public CaseGenerator {
  public:
    explicit PanicGenerator(MutationKnobs knobs)
        : CaseGenerator("panic", miri::UbCategory::Panic, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string arr = pick(rng, kArrNames);
        switch (rng.next_below(3)) {
            case 0: {  // unchecked index from input
                out.shape = "oob_index";
                out.strategy = dataset::FixStrategy::AssertionGuard;
                out.difficulty = 1;
                const std::int64_t len = rng.next_range(2, 9);
                const std::int64_t element = rng.next_range(1, 99);
                const std::vector<std::string> args = {arr, num(len),
                                                       num(element)};
                out.buggy = fill_template(R"(fn main() {
    let $0: [i64; $1] = [$2; $1];
    let pick = input(0) as usize;
    print_int($0[pick]);
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let $0: [i64; $1] = [$2; $1];
    let pick = input(0) as usize;
    if pick < $1 {
        print_int($0[pick]);
    } else {
        print_int(0 - 1);
    }
}
)",
                                        args);
                out.inputs = {{rng.next_range(0, len - 1)},
                              {len + rng.next_range(0, 9)}};
                break;
            }
            case 1: {  // division by an input that can be zero
                out.shape = "div_zero";
                out.strategy = dataset::FixStrategy::AssertionGuard;
                out.difficulty = 1;
                const std::int64_t total = rng.next_range(10, 9999);
                const std::vector<std::string> args = {num(total)};
                out.buggy = fill_template(R"(fn main() {
    let total: i64 = $0;
    let parts = input(0);
    print_int(total / parts);
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let total: i64 = $0;
    let parts = input(0);
    if parts != 0 {
        print_int(total / parts);
    } else {
        print_int(0 - 1);
    }
}
)",
                                        args);
                out.inputs = {{rng.next_range(1, 9)}, {0}};
                break;
            }
            default: {  // i32 accumulator overflow; fix widens to i64
                out.shape = "overflow";
                out.strategy = dataset::FixStrategy::SafeAlternative;
                out.difficulty = 2;
                const std::int64_t base = 2147481000 + rng.next_range(0, 2600);
                const std::int64_t headroom = 2147483647 - base;
                const std::vector<std::string> args = {num(base)};
                out.buggy = fill_template(R"(fn main() {
    let base: i32 = $0;
    let extra = input(0) as i32;
    print_int((base + extra) as i64);
}
)",
                                          args);
                out.fix = fill_template(R"(fn main() {
    let base: i64 = $0;
    let extra = input(0);
    print_int(base + extra);
}
)",
                                        args);
                out.inputs = {{rng.next_range(1, 40)},
                              {headroom + rng.next_range(1, 999)}};
                break;
            }
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// func.call
// ---------------------------------------------------------------------------

class FuncCallGenerator final : public CaseGenerator {
  public:
    explicit FuncCallGenerator(MutationKnobs knobs)
        : CaseGenerator("func.call", miri::UbCategory::FuncCall, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string fn = pick(rng, kFnNames);
        const std::int64_t printed = rng.next_range(1, 99);
        switch (rng.next_below(3)) {
            case 0: {  // call through a constant bogus address
                out.shape = "bogus_address";
                out.difficulty = 2;
                const std::int64_t bogus = 4096 * rng.next_range(1, 32);
                const std::vector<std::string> args = {fn, num(bogus),
                                                       num(printed)};
                out.buggy = fill_template(R"(fn $0() {
    print_int($2);
}
fn main() {
    unsafe {
        let handler = $1 as fn();
        handler();
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn $0() {
    print_int($2);
}
fn main() {
    $0();
}
)",
                                        args);
                break;
            }
            case 1: {  // address arithmetic corrupts a real address
                out.shape = "corrupted_address";
                out.difficulty = 3;
                const std::int64_t skew = 4 * rng.next_range(1, 16);
                const std::vector<std::string> args = {fn, num(skew),
                                                       num(printed)};
                out.buggy = fill_template(R"(fn $0() {
    print_int($2);
}
fn main() {
    unsafe {
        let addr = $0 as usize + $1;
        let handler = addr as fn();
        handler();
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn $0() {
    print_int($2);
}
fn main() {
    unsafe {
        let addr = $0 as usize;
        let handler = addr as fn();
        handler();
    }
}
)",
                                        args);
                break;
            }
            default: {  // data pointer treated as code
                out.shape = "data_as_code";
                out.difficulty = 2;
                const std::vector<std::string> args = {fn, num(printed)};
                out.buggy = fill_template(R"(fn $0() {
    print_int($1);
}
fn main() {
    let slot = 1;
    unsafe {
        let addr = &slot as *const i32 as usize;
        let handler = addr as fn();
        handler();
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn $0() {
    print_int($1);
}
fn main() {
    let slot = 1;
    $0();
}
)",
                                        args);
                break;
            }
        }
        out.inputs = {{}};
        return out;
    }
};

// ---------------------------------------------------------------------------
// func.pointer
// ---------------------------------------------------------------------------

class FuncPointerGenerator final : public CaseGenerator {
  public:
    explicit FuncPointerGenerator(MutationKnobs knobs)
        : CaseGenerator("func.pointer", miri::UbCategory::FuncPointer, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string fn = pick(rng, kFnNames);
        const std::int64_t factor = rng.next_range(2, 9);
        switch (rng.next_below(3)) {
            case 0: {  // i64 function transmuted to an i32 signature
                out.shape = "narrowed_sig";
                out.difficulty = 2;
                const std::vector<std::string> args = {fn, num(factor)};
                out.buggy = fill_template(R"(fn $0(x: i64) -> i64 {
    return x * $1;
}
fn main() {
    unsafe {
        let addr = $0 as usize;
        let f = addr as fn(i32) -> i32;
        print_int(f(10) as i64);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn $0(x: i64) -> i64 {
    return x * $1;
}
fn main() {
    unsafe {
        let addr = $0 as usize;
        let f = addr as fn(i64) -> i64;
        print_int(f(10) as i64);
    }
}
)",
                                        args);
                break;
            }
            case 1: {  // two-argument function behind a one-argument type
                out.shape = "wrong_arity";
                out.difficulty = 3;
                const std::vector<std::string> args = {fn, num(factor)};
                out.buggy = fill_template(R"(fn $0(a: i64, b: i64) -> i64 {
    return a * $1 + b;
}
fn main() {
    unsafe {
        let addr = $0 as usize;
        let f = addr as fn(i64) -> i64;
        print_int(f(10));
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn $0(a: i64, b: i64) -> i64 {
    return a * $1 + b;
}
fn main() {
    unsafe {
        let addr = $0 as usize;
        let f = addr as fn(i64, i64) -> i64;
        print_int(f(10, 0));
    }
}
)",
                                        args);
                break;
            }
            default: {  // fn-pointer-to-fn-pointer signature transmute
                out.shape = "sig_transmute";
                out.strategy = dataset::FixStrategy::SafeAlternative;
                out.difficulty = 2;
                const std::int64_t add = rng.next_range(1, 99);
                const std::vector<std::string> args = {fn, num(add)};
                out.buggy = fill_template(R"(fn $0(x: i64) -> i64 {
    return x + $1;
}
fn main() {
    let typed: fn(i64) -> i64 = $0;
    unsafe {
        let twisted = typed as fn(i32) -> i32;
        print_int(twisted(1) as i64);
    }
}
)",
                                          args);
                out.fix = fill_template(R"(fn $0(x: i64) -> i64 {
    return x + $1;
}
fn main() {
    let typed: fn(i64) -> i64 = $0;
    print_int(typed(1));
}
)",
                                        args);
                break;
            }
        }
        out.inputs = {{}};
        return out;
    }
};

// ---------------------------------------------------------------------------
// tailcall
// ---------------------------------------------------------------------------

class TailCallGenerator final : public CaseGenerator {
  public:
    explicit TailCallGenerator(MutationKnobs knobs)
        : CaseGenerator("tailcall", miri::UbCategory::TailCall, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        const std::string fn = pick(rng, kFnNames);
        const std::int64_t add = rng.next_range(1, 999);
        switch (rng.next_below(3)) {
            case 0: {  // become through a zero-arg transmute
                out.shape = "wrong_sig";
                out.difficulty = 3;
                const std::vector<std::string> args = {fn, num(add)};
                out.buggy = fill_template(R"(fn $0(x: i64) -> i64 {
    return x + $1;
}
fn dispatch(n: i64) -> i64 {
    unsafe {
        let addr = $0 as usize;
        let k = addr as fn() -> i64;
        become k();
    }
}
fn main() {
    print_int(dispatch(5));
}
)",
                                          args);
                out.fix = fill_template(R"(fn $0(x: i64) -> i64 {
    return x + $1;
}
fn dispatch(n: i64) -> i64 {
    return $0(n);
}
fn main() {
    print_int(dispatch(5));
}
)",
                                        args);
                break;
            }
            case 1: {  // become to a bogus address
                out.shape = "bogus_target";
                out.difficulty = 2;
                const std::int64_t bogus = 4096 * rng.next_range(1, 32);
                const std::vector<std::string> args = {fn, num(add), num(bogus)};
                out.buggy = fill_template(R"(fn $0() -> i64 {
    return $1;
}
fn trampoline() -> i64 {
    unsafe {
        let k = $2 as fn() -> i64;
        become k();
    }
}
fn main() {
    print_int(trampoline());
}
)",
                                          args);
                out.fix = fill_template(R"(fn $0() -> i64 {
    return $1;
}
fn trampoline() -> i64 {
    return $0();
}
fn main() {
    print_int(trampoline());
}
)",
                                        args);
                break;
            }
            default: {  // caller local escapes into the tail callee
                out.shape = "local_escape";
                out.difficulty = 3;
                const std::vector<std::string> args = {num(add)};
                out.buggy = fill_template(R"(fn read_slot(slot: *const i64) -> i64 {
    unsafe {
        return *slot;
    }
}
fn trampoline() -> i64 {
    let local: i64 = $0;
    become read_slot(&local as *const i64);
}
fn main() {
    print_int(trampoline());
}
)",
                                          args);
                out.fix = fill_template(R"(fn read_slot(slot: *const i64) -> i64 {
    unsafe {
        return *slot;
    }
}
fn trampoline() -> i64 {
    let local: i64 = $0;
    return read_slot(&local as *const i64);
}
fn main() {
    print_int(trampoline());
}
)",
                                        args);
                break;
            }
        }
        out.inputs = {{}};
        return out;
    }
};

}  // namespace

std::unique_ptr<CaseGenerator> make_panic_generator(MutationKnobs knobs) {
    return std::make_unique<PanicGenerator>(knobs);
}

std::unique_ptr<CaseGenerator> make_funccall_generator(MutationKnobs knobs) {
    return std::make_unique<FuncCallGenerator>(knobs);
}

std::unique_ptr<CaseGenerator> make_funcpointer_generator(MutationKnobs knobs) {
    return std::make_unique<FuncPointerGenerator>(knobs);
}

std::unique_ptr<CaseGenerator> make_tailcall_generator(MutationKnobs knobs) {
    return std::make_unique<TailCallGenerator>(knobs);
}

}  // namespace rustbrain::gen
