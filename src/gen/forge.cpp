#include "gen/forge.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "gen/registry.hpp"
#include "support/rng.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::gen {

namespace {

/// Both programs must make it through the lang/ front end before MiriLite
/// gets involved; the split keeps the rejection stats meaningful. The
/// compile is cached — validate_case's interpretation reuses it.
bool front_end_ok(const verify::Oracle& oracle, const std::string& source,
                  bool& parse_ok) {
    const auto compiled = oracle.compile(source);
    parse_ok =
        compiled->front_end != verify::CompiledProgram::FrontEnd::ParseError;
    return compiled->ok();
}

std::string serial_tag(std::size_t serial) {
    std::string digits = std::to_string(serial);
    while (digits.size() < 4) digits.insert(digits.begin(), '0');
    return digits;
}

}  // namespace

dataset::Corpus forge_corpus(const ForgeOptions& options, ForgeStats* stats) {
    if (options.max_attempts_per_case <= 0) {
        throw std::invalid_argument("max_attempts_per_case must be positive");
    }

    // Generator ids and options are validated unconditionally — a typo must
    // throw even for a count of zero.
    const GeneratorRegistry& registry = GeneratorRegistry::builtin();
    const std::vector<std::string> ids =
        options.generators.empty() ? registry.ids() : options.generators;
    std::vector<std::unique_ptr<CaseGenerator>> generators;
    generators.reserve(ids.size());
    for (const std::string& id : ids) {
        generators.push_back(registry.build(id, options.generator_options));
    }

    ForgeStats local_stats;
    ForgeStats& s = stats != nullptr ? *stats : local_stats;
    s = ForgeStats{};
    if (options.count == 0) {
        return dataset::Corpus(std::vector<dataset::UbCase>{});
    }

    const verify::Oracle& oracle = verify::resolve(options.oracle);
    std::vector<dataset::UbCase> cases;
    cases.reserve(options.count);
    for (std::size_t serial = 0; serial < options.count; ++serial) {
        const CaseGenerator& generator = *generators[serial % generators.size()];
        bool accepted = false;
        for (int attempt = 0; attempt < options.max_attempts_per_case;
             ++attempt) {
            support::Rng rng(support::derive_seed(
                options.seed, generator.id() + "/" + std::to_string(serial) +
                                  "/" + std::to_string(attempt)));
            dataset::UbCase candidate = generator.generate(rng);
            candidate.id = "gen/" + generator.id() + "/" + candidate.id + "_s" +
                           std::to_string(options.seed) + "_" +
                           serial_tag(serial);
            ++s.attempts;

            bool parse_ok = true;
            if (!front_end_ok(oracle, candidate.buggy_source, parse_ok) ||
                !front_end_ok(oracle, candidate.reference_fix, parse_ok)) {
                if (parse_ok) {
                    ++s.rejected_typecheck;
                } else {
                    ++s.rejected_parse;
                }
                continue;
            }
            if (!dataset::validate_case(candidate, oracle).ok()) {
                ++s.rejected_validation;
                continue;
            }
            ++s.accepted_by_generator[generator.id()];
            cases.push_back(std::move(candidate));
            accepted = true;
            break;
        }
        if (!accepted) {
            throw std::runtime_error(
                "corpus forge: generator '" + generator.id() +
                "' produced no valid case for slot " + std::to_string(serial) +
                " after " + std::to_string(options.max_attempts_per_case) +
                " attempts (seed " + std::to_string(options.seed) + ")");
        }
    }
    return dataset::Corpus(std::move(cases));
}

}  // namespace rustbrain::gen
