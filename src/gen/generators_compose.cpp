// Cross-category composition generators — the mutation knob the hand-written
// corpus cannot offer. Each composes structure from two UB families into one
// program whose *actual* UB belongs to a single declared category, so the
// detectors and engines must discriminate, not pattern-match on shape:
//
//   panic-in-borrow: a correct shared/exclusive borrow dance surrounds an
//     input-driven out-of-bounds index (declared: panic).
//   race-on-dangling: a spawned worker runs while main commits a heap
//     use-after-free (declared: danglingpointer).
#include <string>
#include <vector>

#include "gen/generators.hpp"

namespace rustbrain::gen {

namespace {

using detail::fill_template;
using detail::pick;

const std::vector<std::string> kVarNames = {"x", "count", "cell", "score"};
const std::vector<std::string> kArrNames = {"table", "values", "samples",
                                            "grid"};
const std::vector<std::string> kPtrNames = {"p", "buf", "mem", "chunk"};
const std::vector<std::string> kWorkerNames = {"worker", "tally", "bump",
                                               "pump"};

std::string num(std::int64_t value) { return std::to_string(value); }

class PanicInBorrowGenerator final : public CaseGenerator {
  public:
    explicit PanicInBorrowGenerator(MutationKnobs knobs)
        : CaseGenerator("panic-in-borrow", miri::UbCategory::Panic, knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        out.shape = "borrowed_oob";
        out.strategy = dataset::FixStrategy::AssertionGuard;
        out.difficulty = 3;
        const std::string var = pick(rng, kVarNames);
        const std::string arr = pick(rng, kArrNames);
        const std::int64_t len = rng.next_range(2, 8);
        const std::int64_t base = rng.next_range(1, 899);
        const std::int64_t element = rng.next_range(1, 99);
        const std::vector<std::string> args = {var, arr, num(len), num(base),
                                               num(element)};
        // The borrow choreography is CORRECT in both programs (the shared
        // ref's last use precedes the exclusive ref); the only UB is the
        // unchecked index between the two.
        out.buggy = fill_template(R"(fn main() {
    let mut $0: i64 = $3;
    let shared = &$0;
    let $1: [i64; $2] = [$4; $2];
    let pick = input(0) as usize;
    print_int($1[pick] + *shared);
    let exclusive = &mut $0;
    *exclusive = *exclusive + 1;
    print_int($0);
}
)",
                                  args);
        out.fix = fill_template(R"(fn main() {
    let mut $0: i64 = $3;
    let shared = &$0;
    let $1: [i64; $2] = [$4; $2];
    let pick = input(0) as usize;
    if pick < $2 {
        print_int($1[pick] + *shared);
    } else {
        print_int(0 - 1);
    }
    let exclusive = &mut $0;
    *exclusive = *exclusive + 1;
    print_int($0);
}
)",
                                args);
        out.inputs = {{rng.next_range(0, len - 1)}, {len + rng.next_range(0, 9)}};
        return out;
    }
};

class RaceOnDanglingGenerator final : public CaseGenerator {
  public:
    explicit RaceOnDanglingGenerator(MutationKnobs knobs)
        : CaseGenerator("race-on-dangling", miri::UbCategory::DanglingPointer,
                        knobs) {}

  protected:
    Draft draft(support::Rng& rng) const override {
        Draft out;
        out.shape = "threaded_uaf";
        out.difficulty = 3;
        const std::string ptr = pick(rng, kPtrNames);
        const std::string worker = pick(rng, kWorkerNames);
        const std::int64_t size = 8 * rng.next_range(1, 6);
        const std::int64_t worker_print = rng.next_range(1, 99);
        const std::int64_t stored = rng.next_range(100, 999);
        const std::vector<std::string> args = {ptr, worker, num(size),
                                               num(worker_print), num(stored)};
        // The thread lifecycle is CORRECT in both programs (spawned and
        // joined exactly once); the only UB is main's use-after-free while
        // the worker runs.
        out.buggy = fill_template(R"(fn $1() {
    print_int($3);
}
fn main() {
    let handle = spawn($1);
    unsafe {
        let $0 = alloc($2, 8);
        let slot = $0 as *mut i64;
        *slot = $4;
        dealloc($0, $2, 8);
        print_int(*slot);
    }
    join(handle);
}
)",
                                  args);
        out.fix = fill_template(R"(fn $1() {
    print_int($3);
}
fn main() {
    let handle = spawn($1);
    unsafe {
        let $0 = alloc($2, 8);
        let slot = $0 as *mut i64;
        *slot = $4;
        print_int(*slot);
        dealloc($0, $2, 8);
    }
    join(handle);
}
)",
                                args);
        out.inputs = {{}};
        return out;
    }
};

}  // namespace

std::unique_ptr<CaseGenerator> make_panic_in_borrow_generator(
    MutationKnobs knobs) {
    return std::make_unique<PanicInBorrowGenerator>(knobs);
}

std::unique_ptr<CaseGenerator> make_race_on_dangling_generator(
    MutationKnobs knobs) {
    return std::make_unique<RaceOnDanglingGenerator>(knobs);
}

}  // namespace rustbrain::gen
