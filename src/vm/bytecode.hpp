// Flat bytecode for MiriLite.
//
// vm::compile() takes a (type-checked, renumbered) program together with the
// LoweredProgram slot tables one step further than PR 4's slot lowering: each
// function body and each static initializer is flattened into a dense array
// of fixed-width instructions. Jump targets are instruction indices, so
// control flow is `pc = target` instead of recursive AST descent, and every
// operand the tree walk recomputed per visit (slot indices, statically known
// place types, truncated literals, overflow widths) is resolved once at
// compile time and stored inline.
//
// The contract is *byte-identity* with miri::Interpreter: the compiler emits
// one Step instruction (or folds one into the leading opcode) exactly where
// the tree walk calls step(), preserves its evaluation and allocation
// orders, and the VM reuses miri::MemoryModel unchanged — so findings,
// messages, spans, outputs, and step counts reproduce rule for rule. A
// VmProgram is a side structure like LoweredProgram: it borrows type and
// name storage from the exact Program it was compiled from and is only
// meaningful next to it (verify::Oracle owns such pairs immutably).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "miri/lower.hpp"

namespace rustbrain::vm {

enum class Op : std::uint8_t {
    // Bookkeeping -------------------------------------------------------
    Step,        // step(span): statement entry / while-iteration / expr entry
    Jump,        // pc = a
    JumpIfFalse, // pop cond; if !cond pc = a
    AndJump,     // if !top: pc = a (keep top) else pop   (short-circuit &&)
    OrJump,      // if top:  pc = a (keep top) else pop   (short-circuit ||)
    BoolNorm,    // top = boolean(top.as_bool())
    Pop,         // discard top (expression statements)

    // Pushes (leading step folded in) ----------------------------------
    PushUnit,    // no step: used for implicit unit results
    PushInt,     // step; push scalar(imm) — literal pre-truncated to type
    PushBool,    // step; push boolean(a)
    PushFn,      // step; push function(a)
    LoadLocal,   // step; slot a live ? push load : logic_error (name in aux)
    LoadStatic,  // step; static a live ? push load : fn fallback b / throw
    ThrowUnresolved, // step; throw logic_error("unresolved name '…'")

    // Places (no step; mirror eval_place) ------------------------------
    PlaceLocal,      // slot a live ? push base ptr : logic_error
    PlaceStatic,     // static a live ? push base ptr : logic_error
    PlaceUnresolved, // throw logic_error("eval_place: unresolved name '…'")
    AsPtr,           // top.as_ptr() — force the tree walk's conversion point
    IndexPlace,      // pop index, pop base; bounds-check (len=imm, elem=a)

    // Memory ------------------------------------------------------------
    LoadThrough, // pop ptr; push load(ptr, *type) at span
    StorePlace,  // pop place ptr, pop value; store at span
    RetagRef,    // pop place ptr; retag_ref(size=imm, is_mut=a); push
    DeclLocal,   // pop value; allocate+store slot a (let) — name aux, type
    DeclParam,   // declare slot a from caller arg b (or unit) at fn span
    DropArgs,    // shrink value stack to the frame's args_base
    KillSlot,    // scope exit: if slot a live, mem.kill + clear
    KillSlotTail,// become: kill_for_tail_call + clear

    // Arithmetic / casts -------------------------------------------------
    Neg,         // a unused; type = result, aux = operand Type*
    NotBool,
    NotBits,     // type = result
    Binary,      // a = lang::BinaryOp; type = result, aux = operand Type*
    Cast,        // a = CastKind (below)
    MakeArray,   // pop a elements; push array
    MakeRepeat,  // pop element; push array of imm copies

    // Calls --------------------------------------------------------------
    CallDirect,   // a = fn index, b = nargs
    CallLocalPtr, // a = slot, b = nargs, type = slot Type*, aux = name
    CallPtr,      // b = nargs; callee value sits below the args
    TailCall,     // b = nargs; become — frame reused in place
    CallUnknown,  // args evaluated, then the tree walk's logic_error
    Intrinsic,    // a = IntrinsicId, b = nargs
    Ret,          // pop frame; result stays on the value stack
    Halt,         // end of a static-initializer chunk
};

enum class CastKind : std::int32_t {
    IntFromInt,  // b = source signed, c = source size; type = target
    IntToRawPtr,
    PtrToInt,    // type = target
    RefToRaw,    // c = writable, imm = pointee size
    FnToInt,     // type = target
    IntToFn,
    Unsupported, // aux = prebuilt logic_error message
};

enum class IntrinsicId : std::int32_t {
    Alloc,
    Dealloc,
    Offset,     // c = count-arg size, imm = element size
    PrintInt,   // c = signed, imm = arg size
    PrintBool,
    Input,
    Assert,
    Panic,
    Spawn,
    Join,
    MutexNew,
    MutexLock,
    MutexUnlock,
    AtomicLoad,
    AtomicStore,
    AtomicFetchAdd,
    Unknown,    // aux = name; throws the tree walk's logic_error
};

/// One fixed-width instruction. `type`/`aux` alias storage owned by the AST
/// (or by VmProgram::strings) — stable for the paired program's lifetime.
struct Instr {
    Op op = Op::Step;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;
    std::uint64_t imm = 0;
    const lang::Type* type = nullptr;
    const void* aux = nullptr;
    support::SourceSpan span;
};

struct VmFunction {
    std::int32_t entry = 0;
    std::uint32_t slot_count = 0;
    support::SourceSpan span;  // depth-check / param-declaration span
};

struct VmProgram {
    std::vector<Instr> code;
    std::vector<VmFunction> functions;
    /// Entry pc per static initializer chunk (each ends with Halt).
    std::vector<std::int32_t> static_entries;
    /// Index of `main`, -1 when absent (the VM then reports the same
    /// CompileError finding as the tree walk).
    std::int32_t main_fn = -1;
    /// Owns strings referenced by Instr::aux (deque: stable addresses).
    std::deque<std::string> strings;
};

/// Flatten a lowered program into bytecode. `program` must be the exact
/// (type-checked, renumbered) tree `lowering` was built from.
[[nodiscard]] VmProgram compile(const lang::Program& program,
                                const miri::LoweredProgram& lowering);

}  // namespace rustbrain::vm
