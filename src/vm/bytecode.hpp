// Flat bytecode for MiriLite.
//
// vm::compile() takes a (type-checked, renumbered) program together with the
// LoweredProgram slot tables one step further than PR 4's slot lowering: each
// function body and each static initializer is flattened into a dense array
// of fixed-width instructions. Jump targets are instruction indices, so
// control flow is `pc = target` instead of recursive AST descent, and every
// operand the tree walk recomputed per visit (slot indices, statically known
// place types, truncated literals, overflow widths) is resolved once at
// compile time and stored inline.
//
// The contract is *byte-identity* with miri::Interpreter: the compiler emits
// one Step instruction (or folds one into the leading opcode) exactly where
// the tree walk calls step(), preserves its evaluation and allocation
// orders, and the VM reuses miri::MemoryModel unchanged — so findings,
// messages, spans, outputs, and step counts reproduce rule for rule. A
// VmProgram is a side structure like LoweredProgram: it borrows type and
// name storage from the exact Program it was compiled from and is only
// meaningful next to it (verify::Oracle owns such pairs immutably).
//
// Instructions are packed to 32 bytes (half the original 56): spans, type
// pointers, and aux pointers are interned into side tables on the VmProgram
// and instructions carry 32-bit indices. Index 0 of each table is the
// "absent" entry ({} span / null pointer), so zero-initialized fields keep
// their old meaning.
//
// vm::optimize() (src/vm/peephole.cpp) derives a second, optimized program
// from a compiled one: superinstruction fusion (with the constituent Step
// bookkeeping folded in so step counts stay exact) and register promotion of
// provably unaliased scalar locals. The optimized program shares the input
// program's interned storage contract — keep the source VmProgram alive, or
// at least the Program/strings it borrows from. DESIGN.md §11 documents the
// legality argument.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "miri/lower.hpp"

namespace rustbrain::vm {

enum class Op : std::uint8_t {
    // Bookkeeping -------------------------------------------------------
    Step,        // step(span): statement entry / while-iteration / expr entry
    Jump,        // pc = a
    JumpIfFalse, // pop cond; if !cond pc = a
    AndJump,     // if !top: pc = a (keep top) else pop   (short-circuit &&)
    OrJump,      // if top:  pc = a (keep top) else pop   (short-circuit ||)
    BoolNorm,    // top = boolean(top.as_bool())
    Pop,         // discard top (expression statements)

    // Pushes (leading step folded in) ----------------------------------
    PushUnit,    // no step: used for implicit unit results
    PushInt,     // step; push scalar(imm) — literal pre-truncated to type
    PushBool,    // step; push boolean(a)
    PushFn,      // step; push function(a)
    LoadLocal,   // step; slot a live ? push load : logic_error (name in aux)
    LoadStatic,  // step; static a live ? push load : fn fallback b / throw
    ThrowUnresolved, // step; throw logic_error("unresolved name '…'")

    // Places (no step; mirror eval_place) ------------------------------
    PlaceLocal,      // slot a live ? push base ptr : logic_error
    PlaceStatic,     // static a live ? push base ptr : logic_error
    PlaceUnresolved, // throw logic_error("eval_place: unresolved name '…'")
    AsPtr,           // top.as_ptr() — force the tree walk's conversion point
    IndexPlace,      // pop index, pop base; bounds-check (len=imm, elem=a)

    // Memory ------------------------------------------------------------
    LoadThrough, // pop ptr; push load(ptr, *type) at span
    StorePlace,  // pop place ptr, pop value; store at span
    RetagRef,    // pop place ptr; retag_ref(size=imm, is_mut=a); push
    DeclLocal,   // pop value; allocate+store slot a (let) — name aux, type
    DeclParam,   // declare slot a from caller arg b (or unit) at fn span
    DropArgs,    // shrink value stack to the frame's args_base
    KillSlot,    // scope exit: if slot a live, mem.kill + clear
    KillSlotTail,// become: kill_for_tail_call + clear

    // Arithmetic / casts -------------------------------------------------
    Neg,         // a unused; type = result, aux = operand Type*
    NotBool,
    NotBits,     // type = result
    Binary,      // a = lang::BinaryOp; type = result, aux = operand Type*
    Cast,        // a = CastKind (below)
    MakeArray,   // pop a elements; push array
    MakeRepeat,  // pop element; push array of imm copies

    // Calls --------------------------------------------------------------
    CallDirect,   // a = fn index, b = nargs
    CallLocalPtr, // a = slot, b = nargs, type = slot Type*, aux = name
    CallPtr,      // b = nargs; callee value sits below the args
    TailCall,     // b = nargs; become — frame reused in place
    CallUnknown,  // args evaluated, then the tree walk's logic_error
    Intrinsic,    // a = IntrinsicId, b = nargs
    Ret,          // pop frame; result stays on the value stack
    Halt,         // end of a static-initializer chunk

    // Superinstructions (emitted only by vm::optimize) -------------------
    // Each is the *exact* expansion of the listed window: the handler
    // replays the constituent step() calls (at the original spans, in the
    // original interleaving with memory accesses), so step counts and any
    // mid-window panic/UB snapshot stay byte-identical.
    BinaryLocals,   // [Step, LoadLocal lhs, LoadLocal rhs, Binary]
                    //   small = binop, a/b = lhs/rhs slot, imm = fused index
    BinaryLocalImm, // [Step, LoadLocal lhs, PushInt, Binary]
                    //   small = binop, a = lhs slot, b = fused index,
                    //   imm = pre-truncated literal
    StoreLocal,     // [PlaceLocal, StorePlace] — a = slot, no steps
    CompareBranch,  // [Binary(cmp), JumpIfFalse] — small = binop, a = target

    // Second-stage superinstructions: fuse across first-stage output.
    // Nested expressions emit their entry Steps back to back (a chain of k
    // binary nodes puts k Steps in a row before the first operand), and
    // left-leaning accumulation chains leave [BinaryLocalImm, Binary]
    // pairs. Same exact-replay contract as above.
    StepN,          // a consecutive Steps — a = count, b = step_runs offset
    BinaryAccImm,   // [BinaryLocalImm, Binary]: pop stack lhs, combine with
                    //   (local `small` imm) via fused[b]'s outer operator
    BinaryStackImm, // [PushInt, Binary]: pop lhs, eval with literal imm —
                    //   small = binop, a = span index of the PushInt's step
    LocalsBranch,   // [BinaryLocals(cmp), JumpIfFalse] — loop heads; target
                    //   in fused[imm].branch_target (no inline field free)
    LocalImmBranch, // [BinaryLocalImm(cmp), JumpIfFalse] — target in
                    //   fused[b].branch_target
};

enum class CastKind : std::int32_t {
    IntFromInt,  // b = source signed, small = source size; type = target
    IntToRawPtr,
    PtrToInt,    // type = target
    RefToRaw,    // small = writable, imm = pointee size
    FnToInt,     // type = target
    IntToFn,
    Unsupported, // aux = prebuilt logic_error message
};

enum class IntrinsicId : std::int32_t {
    Alloc,
    Dealloc,
    Offset,     // small = count-arg size, imm = element size
    PrintInt,   // small = signed, imm = arg size
    PrintBool,
    Input,
    Assert,
    Panic,
    Spawn,
    Join,
    MutexNew,
    MutexLock,
    MutexUnlock,
    AtomicLoad,
    AtomicStore,
    AtomicFetchAdd,
    Unknown,    // aux = name; throws the tree walk's logic_error
};

/// One fixed-width instruction, packed to 32 bytes (a 56-byte layout with
/// inline span/type/aux cost one extra cache line per pair of instructions).
/// `span`/`type`/`aux` index the VmProgram side tables; index 0 is the
/// absent entry, so zero-init preserves the unpacked semantics.
struct Instr {
    Op op = Op::Step;
    std::uint8_t small = 0;   // narrow operand (old `c`): sizes ≤ 8, flags
    std::uint16_t ex = 0;     // register promotion: reg index + 1, 0 = none
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::uint32_t span = 0;   // index into VmProgram::spans
    std::uint32_t type = 0;   // index into VmProgram::types
    std::uint32_t aux = 0;    // index into VmProgram::auxes
    std::uint64_t imm = 0;
};
static_assert(sizeof(Instr) == 32, "Instr must stay one half cache line");

/// Cold per-superinstruction operands: the constituent spans (step replay +
/// access contexts) and names (dead-slot diagnostics), plus the promoted
/// register of each fused load (-1 = the slot stays memory-resident).
struct FusedDetail {
    std::uint32_t step_span = 0;  // leading Step's span
    std::uint32_t lhs_span = 0;   // lhs LoadLocal's span
    std::uint32_t rhs_span = 0;   // rhs LoadLocal's / PushInt's span
    std::uint32_t lhs_name = 0;   // aux index of the lhs slot's name
    std::uint32_t rhs_name = 0;   // aux index of the rhs slot's name
    std::int32_t lhs_reg = -1;
    std::int32_t rhs_reg = -1;
    /// BinaryAccImm only: the folded outer Binary (operator, result type,
    /// operand Type*, span) applied to [stack top, inner result].
    std::uint8_t outer_op = 0;
    std::uint32_t outer_span = 0;
    std::uint32_t outer_type = 0;
    std::uint32_t outer_aux = 0;
    /// LocalsBranch / LocalImmBranch only: the folded JumpIfFalse's target.
    std::int32_t branch_target = -1;
};

struct VmFunction {
    std::int32_t entry = 0;
    std::uint32_t slot_count = 0;
    /// Registers this frame needs for promoted locals (vm::optimize only;
    /// 0 straight out of vm::compile).
    std::uint32_t reg_count = 0;
    support::SourceSpan span;  // depth-check / param-declaration span
};

struct VmProgram {
    std::vector<Instr> code;
    std::vector<VmFunction> functions;
    /// Entry pc per static initializer chunk (each ends with Halt).
    std::vector<std::int32_t> static_entries;
    /// Index of `main`, -1 when absent (the VM then reports the same
    /// CompileError finding as the tree walk).
    std::int32_t main_fn = -1;

    /// Interned side tables ([0] is the absent entry). `types`/`auxes`
    /// alias storage owned by the AST or by `strings`.
    std::vector<support::SourceSpan> spans{support::SourceSpan{}};
    std::vector<const lang::Type*> types{nullptr};
    std::vector<const void*> auxes{nullptr};
    /// Cold operands of superinstructions (vm::optimize only).
    std::vector<FusedDetail> fused;
    /// Span indices replayed by StepN, one contiguous run per instruction
    /// (a = count, b = offset into this vector).
    std::vector<std::uint32_t> step_runs;

    /// Owns strings referenced through `auxes` (deque: stable addresses).
    std::deque<std::string> strings;
};

/// Flatten a lowered program into bytecode. `program` must be the exact
/// (type-checked, renumbered) tree `lowering` was built from.
[[nodiscard]] VmProgram compile(const lang::Program& program,
                                const miri::LoweredProgram& lowering);

/// Process-wide counters proving compilation laziness (the tree/slot tiers
/// must never pay for bytecode) and pass coverage. Monotonic; tests diff
/// before/after.
struct CompileStats {
    static std::atomic<std::uint64_t> bytecode_compiles;
    static std::atomic<std::uint64_t> optimize_passes;
};

}  // namespace rustbrain::vm
