// AST -> bytecode. The emission rules replicate the tree walk's step(),
// evaluation, and allocation orders exactly; see bytecode.hpp for the
// byte-identity contract and DESIGN.md §9 for the full instruction table.
//
// The packed 32-byte Instr stores spans/types/aux pointers as indices into
// interned side tables on the VmProgram; the helpers si()/ti()/ai() below
// are the only writers of those fields.
#include <array>
#include <map>
#include <stdexcept>

#include "miri/value.hpp"
#include "vm/bytecode.hpp"

namespace rustbrain::vm {

std::atomic<std::uint64_t> CompileStats::bytecode_compiles{0};
std::atomic<std::uint64_t> CompileStats::optimize_passes{0};

namespace {

using lang::Type;

IntrinsicId intrinsic_id(const std::string& name) {
    if (name == "alloc") return IntrinsicId::Alloc;
    if (name == "dealloc") return IntrinsicId::Dealloc;
    if (name == "offset") return IntrinsicId::Offset;
    if (name == "print_int") return IntrinsicId::PrintInt;
    if (name == "print_bool") return IntrinsicId::PrintBool;
    if (name == "input") return IntrinsicId::Input;
    if (name == "assert") return IntrinsicId::Assert;
    if (name == "panic") return IntrinsicId::Panic;
    if (name == "spawn") return IntrinsicId::Spawn;
    if (name == "join") return IntrinsicId::Join;
    if (name == "mutex_new") return IntrinsicId::MutexNew;
    if (name == "mutex_lock") return IntrinsicId::MutexLock;
    if (name == "mutex_unlock") return IntrinsicId::MutexUnlock;
    if (name == "atomic_load") return IntrinsicId::AtomicLoad;
    if (name == "atomic_store") return IntrinsicId::AtomicStore;
    if (name == "atomic_fetch_add") return IntrinsicId::AtomicFetchAdd;
    return IntrinsicId::Unknown;
}

class Compiler {
  public:
    Compiler(const lang::Program& program, const miri::LoweredProgram& lowering)
        : program_(program), lowering_(lowering) {}

    VmProgram compile() {
        out_.functions.resize(program_.functions.size());
        for (std::size_t i = 0; i < program_.functions.size(); ++i) {
            compile_function(static_cast<std::int32_t>(i));
        }
        for (const auto& item : program_.statics) {
            out_.static_entries.push_back(pc());
            compile_expr(*item.init);
            emit(Op::Halt);
        }
        if (const lang::FnItem* main_fn = program_.find_function("main")) {
            out_.main_fn =
                static_cast<std::int32_t>(main_fn - program_.functions.data());
        }
        CompileStats::bytecode_compiles.fetch_add(1, std::memory_order_relaxed);
        return std::move(out_);
    }

  private:
    // A lexical scope's declared slots, in declaration order — the static
    // kill list. Slots are unique per binding (lower.cpp hands shadowing a
    // fresh slot), so "kill slot if live" at runtime exactly reproduces the
    // tree walk's dynamic scope.locals contents at any exit point.
    struct ScopeInfo {
        std::vector<std::int32_t> slots;
    };

    [[nodiscard]] std::int32_t pc() const {
        return static_cast<std::int32_t>(out_.code.size());
    }

    // -- side-table interning -------------------------------------------

    std::uint32_t si(support::SourceSpan span) {
        if (!span.valid() && span.begin == 0 && span.end == 0 &&
            span.column == 0) {
            return 0;
        }
        const std::array<std::uint32_t, 4> key{span.begin, span.end, span.line,
                                              span.column};
        auto [it, inserted] =
            span_ids_.try_emplace(key, static_cast<std::uint32_t>(
                                           out_.spans.size()));
        if (inserted) out_.spans.push_back(span);
        return it->second;
    }

    std::uint32_t ti(const Type* type) {
        if (type == nullptr) return 0;
        auto [it, inserted] =
            type_ids_.try_emplace(type, static_cast<std::uint32_t>(
                                            out_.types.size()));
        if (inserted) out_.types.push_back(type);
        return it->second;
    }

    std::uint32_t ai(const void* aux) {
        if (aux == nullptr) return 0;
        auto [it, inserted] =
            aux_ids_.try_emplace(aux, static_cast<std::uint32_t>(
                                          out_.auxes.size()));
        if (inserted) out_.auxes.push_back(aux);
        return it->second;
    }

    Instr& emit(Op op) {
        out_.code.emplace_back();
        out_.code.back().op = op;
        return out_.code.back();
    }

    Instr& emit(Op op, support::SourceSpan span) {
        const std::uint32_t span_id = si(span);
        Instr& in = emit(op);
        in.span = span_id;
        return in;
    }

    /// Emit a forward jump; returns the index to patch.
    std::int32_t emit_jump(Op op, support::SourceSpan span = {}) {
        emit(op, span);
        return pc() - 1;
    }

    void patch(std::int32_t at, std::int32_t target) {
        out_.code[static_cast<std::size_t>(at)].a = target;
    }

    const std::string* intern(std::string text) {
        out_.strings.push_back(std::move(text));
        return &out_.strings.back();
    }

    // -- functions ------------------------------------------------------

    void compile_function(std::int32_t fn_index) {
        const lang::FnItem& fn =
            program_.functions[static_cast<std::size_t>(fn_index)];
        VmFunction& meta = out_.functions[static_cast<std::size_t>(fn_index)];
        meta.entry = pc();
        meta.slot_count =
            lowering_.fn_slot_counts[static_cast<std::size_t>(fn_index)];
        meta.span = fn.span;

        slot_types_.assign(meta.slot_count, nullptr);
        scopes_.clear();
        scopes_.emplace_back();  // parameter scope (call_function's scopes[0])
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
            const std::int32_t slot = static_cast<std::int32_t>(i);
            slot_types_[static_cast<std::size_t>(slot)] = &fn.params[i].type;
            scopes_.back().slots.push_back(slot);
            Instr& in = emit(Op::DeclParam, fn.span);
            in.a = slot;
            in.b = static_cast<std::int32_t>(i);
            in.type = ti(&fn.params[i].type);
            in.aux = ai(&fn.params[i].name);
        }
        emit(Op::DropArgs);
        compile_block(fn.body);
        // Falling off the end: exec_block killed the body scope; the frame
        // result is unit and kill_frame reaps the parameters.
        emit(Op::PushUnit);
        emit_scope_kills(scopes_.back(), Op::KillSlot);
        emit(Op::Ret);
        scopes_.pop_back();
    }

    void emit_scope_kills(const ScopeInfo& scope, Op op) {
        for (const std::int32_t slot : scope.slots) {
            emit(op).a = slot;
        }
    }

    void compile_block(const lang::Block& block) {
        scopes_.emplace_back();
        for (const auto& stmt : block.statements) {
            compile_stmt(*stmt);
        }
        emit_scope_kills(scopes_.back(), Op::KillSlot);
        scopes_.pop_back();
    }

    // -- statements -----------------------------------------------------

    void compile_stmt(const lang::Stmt& stmt) {
        emit(Op::Step, stmt.span);  // exec_statement's entry step
        switch (stmt.kind) {
            case lang::StmtKind::Let: {
                const auto& node = static_cast<const lang::LetStmt&>(stmt);
                compile_expr(*node.init);
                const Type& type = node.declared_type ? *node.declared_type
                                                      : node.init->type;
                const std::int32_t slot = lowering_.let_slots[node.id];
                slot_types_[static_cast<std::size_t>(slot)] = &type;
                scopes_.back().slots.push_back(slot);
                Instr& in = emit(Op::DeclLocal, node.span);
                in.a = slot;
                in.type = ti(&type);
                in.aux = ai(&node.name);
                return;
            }
            case lang::StmtKind::Assign: {
                const auto& node = static_cast<const lang::AssignStmt&>(stmt);
                compile_expr(*node.value);
                const Type* place_type = compile_place(*node.place);
                Instr& in = emit(Op::StorePlace, node.span);
                in.type = ti(place_type);
                return;
            }
            case lang::StmtKind::Expr: {
                compile_expr(*static_cast<const lang::ExprStmt&>(stmt).expr);
                emit(Op::Pop);
                return;
            }
            case lang::StmtKind::If: {
                const auto& node = static_cast<const lang::IfStmt&>(stmt);
                compile_expr(*node.condition);
                const std::int32_t to_else = emit_jump(Op::JumpIfFalse);
                compile_block(node.then_block);
                if (node.else_block) {
                    const std::int32_t to_end = emit_jump(Op::Jump);
                    patch(to_else, pc());
                    compile_block(*node.else_block);
                    patch(to_end, pc());
                } else {
                    patch(to_else, pc());
                }
                return;
            }
            case lang::StmtKind::While: {
                const auto& node = static_cast<const lang::WhileStmt&>(stmt);
                const std::int32_t loop_top = pc();
                compile_expr(*node.condition);
                const std::int32_t to_end = emit_jump(Op::JumpIfFalse);
                emit(Op::Step, node.span);  // per-iteration step
                compile_block(node.body);
                emit(Op::Jump).a = loop_top;
                patch(to_end, pc());
                return;
            }
            case lang::StmtKind::Return: {
                const auto& node = static_cast<const lang::ReturnStmt&>(stmt);
                if (node.value) {
                    compile_expr(*node.value);
                } else {
                    emit(Op::PushUnit);
                }
                // Unwind order: each exec_block kills its scope as the
                // Return flow propagates (innermost first), then kill_frame
                // reaps the parameter scope.
                for (auto scope = scopes_.rbegin(); scope != scopes_.rend();
                     ++scope) {
                    emit_scope_kills(*scope, Op::KillSlot);
                }
                emit(Op::Ret);
                return;
            }
            case lang::StmtKind::Block:
                compile_block(static_cast<const lang::BlockStmt&>(stmt).block);
                return;
            case lang::StmtKind::Unsafe:
                compile_block(static_cast<const lang::UnsafeStmt&>(stmt).block);
                return;
            case lang::StmtKind::Become: {
                const auto& node = static_cast<const lang::BecomeStmt&>(stmt);
                compile_expr(*node.callee);
                for (const auto& arg : node.args) {
                    compile_expr(*arg);
                }
                // The become site kills every live local front-to-back
                // (parameters first, then enclosing blocks outward-in),
                // with kill_for_tail_call semantics.
                for (const ScopeInfo& scope : scopes_) {
                    emit_scope_kills(scope, Op::KillSlotTail);
                }
                Instr& in = emit(Op::TailCall, node.span);
                in.b = static_cast<std::int32_t>(node.args.size());
                in.type = ti(&node.callee->type);
                return;
            }
        }
    }

    // -- places ---------------------------------------------------------

    /// Compile eval_place(expr): pushes the place pointer; returns the
    /// statically known place type (null only on the unresolved throw
    /// paths, which never reach a consumer).
    const Type* compile_place(const lang::Expr& expr) {
        switch (expr.kind) {
            case lang::ExprKind::VarRef: {
                const auto& node = static_cast<const lang::VarRefExpr&>(expr);
                const miri::VarResolution& res = lowering_.var_refs[node.id];
                if (res.kind == miri::VarResolution::Kind::Local) {
                    Instr& in = emit(Op::PlaceLocal);
                    in.a = res.index;
                    in.aux = ai(&node.name);
                    return slot_types_[static_cast<std::size_t>(res.index)];
                }
                if (res.kind == miri::VarResolution::Kind::Static) {
                    Instr& in = emit(Op::PlaceStatic);
                    in.a = res.index;
                    in.aux = ai(&node.name);
                    return &program_.statics[static_cast<std::size_t>(res.index)]
                                .type;
                }
                emit(Op::PlaceUnresolved).aux = ai(&node.name);
                return nullptr;
            }
            case lang::ExprKind::Unary: {
                const auto& node = static_cast<const lang::UnaryExpr&>(expr);
                if (node.op != lang::UnaryOp::Deref) break;
                compile_expr(*node.operand);
                return &expr.type;
            }
            case lang::ExprKind::Index: {
                const auto& node = static_cast<const lang::IndexExpr&>(expr);
                const Type& base_type = node.base->type;
                const Type* array_type = nullptr;
                if (base_type.is_ref() && base_type.element().is_array()) {
                    compile_expr(*node.base);
                    array_type = &base_type.element();
                } else {
                    array_type = compile_place(*node.base);
                }
                // eval_place converts the base to a pointer before the
                // index expression runs; AsPtr pins that conversion point.
                emit(Op::AsPtr);
                compile_expr(*node.index);
                Instr& in = emit(Op::IndexPlace, node.span);
                in.imm = array_type->array_length();
                in.a = static_cast<std::int32_t>(
                    array_type->element().size_bytes());
                return &array_type->element();
            }
            default:
                break;
        }
        // Unreachable for type-checked programs; preserve the tree walk's
        // invariant-break error.
        throw std::logic_error("eval_place: expression is not a place");
    }

    // -- expressions ----------------------------------------------------

    void compile_expr(const lang::Expr& expr) {
        switch (expr.kind) {
            case lang::ExprKind::IntLit: {
                const auto& node = static_cast<const lang::IntLitExpr&>(expr);
                Instr& in = emit(Op::PushInt, expr.span);
                in.imm = miri::truncate_to_type(node.value, expr.type);
                return;
            }
            case lang::ExprKind::BoolLit: {
                Instr& in = emit(Op::PushBool, expr.span);
                in.a = static_cast<const lang::BoolLitExpr&>(expr).value ? 1 : 0;
                return;
            }
            case lang::ExprKind::VarRef:
                compile_var_ref(static_cast<const lang::VarRefExpr&>(expr));
                return;
            case lang::ExprKind::Unary:
                compile_unary(static_cast<const lang::UnaryExpr&>(expr));
                return;
            case lang::ExprKind::Binary:
                compile_binary(static_cast<const lang::BinaryExpr&>(expr));
                return;
            case lang::ExprKind::Cast:
                compile_cast(static_cast<const lang::CastExpr&>(expr));
                return;
            case lang::ExprKind::Index: {
                emit(Op::Step, expr.span);
                const Type* elem = compile_place(expr);
                Instr& in = emit(Op::LoadThrough, expr.span);
                in.type = ti(elem);
                return;
            }
            case lang::ExprKind::Call:
                compile_call(static_cast<const lang::CallExpr&>(expr));
                return;
            case lang::ExprKind::CallPtr: {
                const auto& node = static_cast<const lang::CallPtrExpr&>(expr);
                emit(Op::Step, expr.span);
                compile_expr(*node.callee);
                for (const auto& arg : node.args) {
                    compile_expr(*arg);
                }
                Instr& in = emit(Op::CallPtr, expr.span);
                in.b = static_cast<std::int32_t>(node.args.size());
                in.type = ti(&node.callee->type);
                return;
            }
            case lang::ExprKind::ArrayLit: {
                const auto& node = static_cast<const lang::ArrayLitExpr&>(expr);
                emit(Op::Step, expr.span);
                for (const auto& element : node.elements) {
                    compile_expr(*element);
                }
                emit(Op::MakeArray).a =
                    static_cast<std::int32_t>(node.elements.size());
                return;
            }
            case lang::ExprKind::ArrayRepeat: {
                const auto& node =
                    static_cast<const lang::ArrayRepeatExpr&>(expr);
                emit(Op::Step, expr.span);
                compile_expr(*node.element);
                emit(Op::MakeRepeat).imm = node.count;
                return;
            }
        }
    }

    void compile_var_ref(const lang::VarRefExpr& node) {
        const miri::VarResolution& res = lowering_.var_refs[node.id];
        switch (res.kind) {
            case miri::VarResolution::Kind::Local: {
                Instr& in = emit(Op::LoadLocal, node.span);
                in.a = res.index;
                in.type =
                    ti(slot_types_[static_cast<std::size_t>(res.index)]);
                in.aux = ai(&node.name);
                return;
            }
            case miri::VarResolution::Kind::Static: {
                Instr& in = emit(Op::LoadStatic, node.span);
                in.a = res.index;
                in.type = ti(
                    &program_.statics[static_cast<std::size_t>(res.index)].type);
                in.aux = ai(&node.name);
                // Forward reference during static setup falls through to a
                // same-named function item, like the tree walk.
                in.b = function_fallback(node.name);
                return;
            }
            case miri::VarResolution::Kind::Function: {
                Instr& in = emit(Op::PushFn, node.span);
                in.a = res.index;
                return;
            }
            case miri::VarResolution::Kind::Unresolved:
                break;
        }
        const std::int32_t fallback = function_fallback(node.name);
        if (fallback >= 0) {
            emit(Op::PushFn, node.span).a = fallback;
        } else {
            emit(Op::ThrowUnresolved, node.span).aux = ai(&node.name);
        }
    }

    std::int32_t function_fallback(const std::string& name) const {
        const lang::FnItem* fn = program_.find_function(name);
        if (fn == nullptr) return -1;
        return static_cast<std::int32_t>(fn - program_.functions.data());
    }

    void compile_unary(const lang::UnaryExpr& node) {
        emit(Op::Step, node.span);
        switch (node.op) {
            case lang::UnaryOp::Neg: {
                compile_expr(*node.operand);
                Instr& in = emit(Op::Neg, node.span);
                in.type = ti(&node.type);
                in.aux = ai(&node.operand->type);
                return;
            }
            case lang::UnaryOp::Not: {
                compile_expr(*node.operand);
                if (node.type.is_bool()) {
                    emit(Op::NotBool);
                } else {
                    emit(Op::NotBits).type = ti(&node.type);
                }
                return;
            }
            case lang::UnaryOp::Deref: {
                compile_expr(*node.operand);
                Instr& in = emit(Op::LoadThrough, node.span);
                in.type = ti(&node.type);
                return;
            }
            case lang::UnaryOp::AddrOf:
            case lang::UnaryOp::AddrOfMut: {
                const Type* place_type = compile_place(*node.operand);
                Instr& in = emit(Op::RetagRef, node.span);
                in.a = node.op == lang::UnaryOp::AddrOfMut ? 1 : 0;
                in.imm = place_type != nullptr ? place_type->size_bytes() : 0;
                return;
            }
        }
    }

    void compile_binary(const lang::BinaryExpr& node) {
        emit(Op::Step, node.span);
        compile_expr(*node.lhs);
        if (node.op == lang::BinaryOp::And || node.op == lang::BinaryOp::Or) {
            const std::int32_t short_circuit = emit_jump(
                node.op == lang::BinaryOp::And ? Op::AndJump : Op::OrJump);
            compile_expr(*node.rhs);
            patch(short_circuit, pc());
            emit(Op::BoolNorm);
            return;
        }
        compile_expr(*node.rhs);
        Instr& in = emit(Op::Binary, node.span);
        in.a = static_cast<std::int32_t>(node.op);
        in.type = ti(&node.type);
        in.aux = ai(&node.lhs->type);
    }

    void compile_cast(const lang::CastExpr& node) {
        emit(Op::Step, node.span);
        compile_expr(*node.operand);
        const Type& source = node.operand->type;
        const Type& target = node.target;
        // Same dispatch chain as eval_cast, resolved at compile time.
        if ((source.is_integer() || source.is_bool()) && target.is_integer()) {
            Instr& in = emit(Op::Cast, node.span);
            in.a = static_cast<std::int32_t>(CastKind::IntFromInt);
            in.b = source.is_signed_integer() ? 1 : 0;
            in.small = static_cast<std::uint8_t>(source.size_bytes());
            in.type = ti(&target);
            return;
        }
        if (source.is_integer() && target.is_raw_ptr()) {
            emit(Op::Cast, node.span).a =
                static_cast<std::int32_t>(CastKind::IntToRawPtr);
            return;
        }
        if (source.is_any_pointer() && target.is_integer()) {
            Instr& in = emit(Op::Cast, node.span);
            in.a = static_cast<std::int32_t>(CastKind::PtrToInt);
            in.type = ti(&target);
            return;
        }
        if (source.is_raw_ptr() && target.is_raw_ptr()) {
            return;  // identity: value unchanged
        }
        if (source.is_ref() && target.is_raw_ptr()) {
            Instr& in = emit(Op::Cast, node.span);
            in.a = static_cast<std::int32_t>(CastKind::RefToRaw);
            in.small = target.is_mut() ? 1 : 0;
            in.imm = source.element().size_bytes();
            return;
        }
        if (source.is_fn_ptr() && target.is_integer()) {
            Instr& in = emit(Op::Cast, node.span);
            in.a = static_cast<std::int32_t>(CastKind::FnToInt);
            in.type = ti(&target);
            return;
        }
        if (source.is_integer() && target.is_fn_ptr()) {
            emit(Op::Cast, node.span).a =
                static_cast<std::int32_t>(CastKind::IntToFn);
            return;
        }
        if (source.is_fn_ptr() && target.is_fn_ptr()) {
            return;  // identity
        }
        Instr& in = emit(Op::Cast, node.span);
        in.a = static_cast<std::int32_t>(CastKind::Unsupported);
        in.aux = ai(intern("eval_cast: unexpected cast " + source.to_string() +
                           " as " + target.to_string()));
    }

    void compile_call(const lang::CallExpr& node) {
        emit(Op::Step, node.span);
        const miri::CallResolution& res = lowering_.calls[node.id];
        for (const auto& arg : node.args) {
            compile_expr(*arg);
        }
        switch (res.kind) {
            case miri::CallResolution::Kind::Intrinsic: {
                Instr& in = emit(Op::Intrinsic, node.span);
                in.a = static_cast<std::int32_t>(intrinsic_id(node.callee));
                in.b = static_cast<std::int32_t>(node.args.size());
                switch (static_cast<IntrinsicId>(in.a)) {
                    case IntrinsicId::Offset:
                        if (node.args.size() > 1) {
                            in.small = static_cast<std::uint8_t>(
                                node.args[1]->type.size_bytes());
                            in.imm = node.args[0]->type.element().size_bytes();
                        }
                        break;
                    case IntrinsicId::PrintInt:
                        if (!node.args.empty()) {
                            in.small =
                                node.args[0]->type.is_signed_integer() ? 1 : 0;
                            in.imm = node.args[0]->type.size_bytes();
                        }
                        break;
                    case IntrinsicId::Unknown:
                        in.aux = ai(&node.callee);
                        break;
                    default:
                        break;
                }
                return;
            }
            case miri::CallResolution::Kind::LocalFnPtr: {
                Instr& in = emit(Op::CallLocalPtr, node.span);
                in.a = res.index;
                in.b = static_cast<std::int32_t>(node.args.size());
                in.type =
                    ti(slot_types_[static_cast<std::size_t>(res.index)]);
                in.aux = ai(&node.callee);
                return;
            }
            case miri::CallResolution::Kind::Direct: {
                Instr& in = emit(Op::CallDirect, node.span);
                in.a = res.index;
                in.b = static_cast<std::int32_t>(node.args.size());
                return;
            }
            case miri::CallResolution::Kind::Unresolved:
                emit(Op::CallUnknown, node.span).aux = ai(&node.callee);
                return;
        }
    }

    const lang::Program& program_;
    const miri::LoweredProgram& lowering_;
    VmProgram out_;
    std::vector<ScopeInfo> scopes_;
    std::vector<const Type*> slot_types_;
    std::map<std::array<std::uint32_t, 4>, std::uint32_t> span_ids_;
    std::map<const Type*, std::uint32_t> type_ids_;
    std::map<const void*, std::uint32_t> aux_ids_;
};

}  // namespace

VmProgram compile(const lang::Program& program,
                  const miri::LoweredProgram& lowering) {
    return Compiler(program, lowering).compile();
}

}  // namespace rustbrain::vm
