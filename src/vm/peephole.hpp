// Post-compile optimization pass over VmProgram: superinstruction fusion
// and register promotion of unaliased scalar locals. See bytecode.hpp for
// the fused-op encodings and DESIGN.md §11 for what the byte-identity
// contract permits the pass to do.
#pragma once

#include "vm/bytecode.hpp"

namespace rustbrain::vm {

/// Derive an optimized program from `input` (which must have come straight
/// from vm::compile):
///
///  1. Fuse the dominant instruction windows into superinstructions —
///     [Step, LoadLocal, LoadLocal, Binary] → BinaryLocals,
///     [Step, LoadLocal, PushInt, Binary] → BinaryLocalImm,
///     [PlaceLocal, StorePlace] → StoreLocal,
///     [Binary(cmp), JumpIfFalse] → CompareBranch —
///     longest window first, skipping any window whose interior contains a
///     jump target, then remap all jump targets / entries to the new pcs.
///     Each superinstruction replays its constituents' step() bookkeeping
///     exactly, so step counts (and the steps snapshot a mid-window UB
///     throw observes) are unchanged.
///  2. Promote unaliased scalar locals to a per-frame register file: an
///     integer- or bool-typed slot whose every occurrence is a
///     declaration, whole-value load/store, or kill (never PlaceLocal /
///     CallLocalPtr, i.e. its address is never taken) skips the
///     MemoryModel load/store round trip. Declarations still perform a
///     shadow allocation so the address / AllocId / borrow-tag /
///     bytes_allocated streams — observable through ptr-to-int casts and
///     later allocations — stay byte-identical.
///
/// The result borrows the same Program-owned storage as `input` and
/// additionally aliases strings owned by `input` itself; keep `input`
/// alive alongside the optimized program (verify::CompiledProgram owns
/// both).
[[nodiscard]] VmProgram optimize(const VmProgram& input);

}  // namespace rustbrain::vm
