// Post-compile optimization pass: superinstruction fusion + register
// promotion. See peephole.hpp for the contract and DESIGN.md §11 for the
// legality argument. Everything here is a pure bytecode→bytecode transform;
// the VM handlers for the fused ops replay their constituents exactly, so
// the pass only has to prove that (a) control never enters the middle of a
// fused window and (b) a promoted slot's memory is never observed.
#include "vm/peephole.hpp"

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace rustbrain::vm {

namespace {

bool is_compare(lang::BinaryOp op) {
    using lang::BinaryOp;
    return op == BinaryOp::Eq || op == BinaryOp::Ne || op == BinaryOp::Lt ||
           op == BinaryOp::Le || op == BinaryOp::Gt || op == BinaryOp::Ge;
}

/// Every pc that control can reach other than by falling through from
/// pc - 1: branch targets, function and static entries, and call-return
/// pcs. A fusion window whose *interior* contains one of these must be
/// left alone (entering mid-window would skip part of the replay).
std::vector<bool> collect_targets(const VmProgram& in) {
    std::vector<bool> target(in.code.size() + 1, false);
    auto mark = [&](std::int32_t pc) {
        if (pc >= 0 && static_cast<std::size_t>(pc) < target.size()) {
            target[static_cast<std::size_t>(pc)] = true;
        }
    };
    for (std::size_t pc = 0; pc < in.code.size(); ++pc) {
        const Instr& ins = in.code[pc];
        switch (ins.op) {
            case Op::Jump:
            case Op::JumpIfFalse:
            case Op::AndJump:
            case Op::OrJump:
            case Op::CompareBranch:
                mark(ins.a);
                break;
            case Op::LocalsBranch:
                mark(in.fused[static_cast<std::size_t>(ins.imm)].branch_target);
                break;
            case Op::LocalImmBranch:
                mark(in.fused[static_cast<std::size_t>(ins.b)].branch_target);
                break;
            case Op::CallDirect:
            case Op::CallLocalPtr:
            case Op::CallPtr:
                mark(static_cast<std::int32_t>(pc) + 1);  // Ret lands here
                break;
            default:
                break;
        }
    }
    for (const VmFunction& fn : in.functions) mark(fn.entry);
    for (std::int32_t entry : in.static_entries) mark(entry);
    return target;
}

/// Fusion decisions for the window starting at `pc` (first stage): how many
/// input instructions it covers (0 = no fusion). Longest window first, so
/// the 4-wide arithmetic patterns win over a 2-wide CompareBranch
/// overlapping their tail.
std::size_t match_window(const VmProgram& in, std::size_t pc,
                         const std::vector<bool>& target) {
    const std::vector<Instr>& code = in.code;
    const std::size_t n = code.size();
    auto interior_clear = [&](std::size_t width) {
        for (std::size_t i = 1; i < width; ++i) {
            if (target[pc + i]) return false;
        }
        return true;
    };
    if (pc + 4 <= n && code[pc].op == Op::Step &&
        code[pc + 1].op == Op::LoadLocal && code[pc + 3].op == Op::Binary &&
        (code[pc + 2].op == Op::LoadLocal || code[pc + 2].op == Op::PushInt) &&
        interior_clear(4)) {
        return 4;
    }
    if (pc + 2 <= n && code[pc].op == Op::PlaceLocal &&
        code[pc + 1].op == Op::StorePlace && interior_clear(2)) {
        return 2;
    }
    if (pc + 2 <= n && code[pc].op == Op::Binary &&
        is_compare(static_cast<lang::BinaryOp>(code[pc].a)) &&
        code[pc + 1].op == Op::JumpIfFalse && interior_clear(2)) {
        return 2;
    }
    return 0;
}

Instr fuse_window(const VmProgram& in, std::size_t pc, std::size_t width,
                  VmProgram& out) {
    const std::vector<Instr>& code = in.code;
    if (width == 4) {
        const Instr& step = code[pc];
        const Instr& lhs = code[pc + 1];
        const Instr& rhs = code[pc + 2];
        const Instr& bin = code[pc + 3];
        FusedDetail detail;
        detail.step_span = step.span;
        detail.lhs_span = lhs.span;
        detail.rhs_span = rhs.span;
        detail.lhs_name = lhs.aux;
        const std::uint32_t fused_index =
            static_cast<std::uint32_t>(out.fused.size());
        Instr fused;
        fused.small = static_cast<std::uint8_t>(bin.a);
        fused.span = bin.span;
        fused.type = bin.type;
        fused.aux = bin.aux;
        fused.a = lhs.a;
        if (rhs.op == Op::LoadLocal) {
            fused.op = Op::BinaryLocals;
            fused.b = rhs.a;
            fused.imm = fused_index;
            detail.rhs_name = rhs.aux;
        } else {
            fused.op = Op::BinaryLocalImm;
            fused.b = static_cast<std::int32_t>(fused_index);
            fused.imm = rhs.imm;  // the folded PushInt's pre-truncated literal
        }
        out.fused.push_back(detail);
        return fused;
    }
    if (code[pc].op == Op::PlaceLocal) {
        const Instr& place = code[pc];
        const Instr& store = code[pc + 1];
        Instr fused;
        fused.op = Op::StoreLocal;
        fused.a = place.a;
        fused.aux = place.aux;
        fused.span = store.span;
        fused.type = store.type;
        return fused;
    }
    const Instr& bin = code[pc];
    const Instr& jump = code[pc + 1];
    Instr fused;
    fused.op = Op::CompareBranch;
    fused.small = static_cast<std::uint8_t>(bin.a);
    fused.a = jump.a;  // old-space target, remapped below
    fused.span = bin.span;
    fused.type = bin.type;
    fused.aux = bin.aux;
    return fused;
}

/// Second-stage windows, over first-stage output: runs of consecutive
/// Steps (nested binary expressions emit their entry Steps back to back),
/// [BinaryLocalImm, Binary] accumulation links (left-leaning chains
/// like `acc + a * 2 + b * 3` leave one per term), and [PushInt, Binary]
/// tails (`expr % K` with a complex lhs evades the 4-wide stage-1 window).
constexpr std::size_t kMaxStepRun = 16;

std::size_t match_window2(const VmProgram& in, std::size_t pc,
                          const std::vector<bool>& target) {
    const std::vector<Instr>& code = in.code;
    const std::size_t n = code.size();
    if (code[pc].op == Op::Step) {
        std::size_t run = 1;
        while (run < kMaxStepRun && pc + run < n &&
               code[pc + run].op == Op::Step && !target[pc + run]) {
            ++run;
        }
        return run >= 2 ? run : 0;
    }
    if (pc + 2 <= n && code[pc].op == Op::BinaryLocalImm &&
        code[pc + 1].op == Op::Binary && !target[pc + 1]) {
        return 2;
    }
    if (pc + 2 <= n && code[pc].op == Op::PushInt &&
        code[pc + 1].op == Op::Binary && !target[pc + 1]) {
        return 2;
    }
    if (pc + 2 <= n &&
        (code[pc].op == Op::BinaryLocals ||
         code[pc].op == Op::BinaryLocalImm) &&
        code[pc + 1].op == Op::JumpIfFalse &&
        is_compare(static_cast<lang::BinaryOp>(code[pc].small)) &&
        !target[pc + 1]) {
        return 2;
    }
    return 0;
}

Instr fuse_window2(const VmProgram& in, std::size_t pc, std::size_t width,
                   VmProgram& out) {
    const std::vector<Instr>& code = in.code;
    if (code[pc].op == Op::Step) {
        Instr fused;
        fused.op = Op::StepN;
        fused.a = static_cast<std::int32_t>(width);
        fused.b = static_cast<std::int32_t>(out.step_runs.size());
        for (std::size_t i = 0; i < width; ++i) {
            out.step_runs.push_back(code[pc + i].span);
        }
        return fused;
    }
    if (code[pc + 1].op == Op::JumpIfFalse) {
        // Loop heads: keep the fused-compare encoding, swap the push of the
        // bool for the branch. Target stays in old pc space; the caller's
        // remap rewrites it through the FusedDetail.
        Instr fused = code[pc];
        const std::size_t detail =
            fused.op == Op::BinaryLocals ? static_cast<std::size_t>(fused.imm)
                                         : static_cast<std::size_t>(fused.b);
        fused.op = fused.op == Op::BinaryLocals ? Op::LocalsBranch
                                                : Op::LocalImmBranch;
        out.fused[detail].branch_target = code[pc + 1].a;
        return fused;
    }
    if (code[pc].op == Op::BinaryLocalImm) {
        Instr fused = code[pc];  // keep the BinaryLocalImm encoding verbatim
        fused.op = Op::BinaryAccImm;
        const Instr& outer = code[pc + 1];
        FusedDetail& d = out.fused[static_cast<std::size_t>(fused.b)];
        d.outer_op = static_cast<std::uint8_t>(outer.a);
        d.outer_span = outer.span;
        d.outer_type = outer.type;
        d.outer_aux = outer.aux;
        return fused;
    }
    const Instr& lit = code[pc];
    const Instr& bin = code[pc + 1];
    Instr fused;
    fused.op = Op::BinaryStackImm;
    fused.small = static_cast<std::uint8_t>(bin.a);
    fused.a = static_cast<std::int32_t>(lit.span);  // replay PushInt's step
    fused.imm = lit.imm;  // pre-truncated literal
    fused.span = bin.span;
    fused.type = bin.type;
    fused.aux = bin.aux;
    return fused;
}

/// One rewrite pass: greedy left-to-right window fusion plus the old→new
/// pc remap of every branch target and entry point.
VmProgram run_pass(const VmProgram& input,
                   std::size_t (*match)(const VmProgram&, std::size_t,
                                        const std::vector<bool>&),
                   Instr (*fuse)(const VmProgram&, std::size_t, std::size_t,
                                 VmProgram&)) {
    VmProgram out;
    out.functions = input.functions;
    out.static_entries = input.static_entries;
    out.main_fn = input.main_fn;
    out.spans = input.spans;
    out.types = input.types;
    out.auxes = input.auxes;  // aliases input's strings; keep input alive
    out.fused = input.fused;
    out.step_runs = input.step_runs;
    out.code.reserve(input.code.size());

    // Interior pcs get no mapping — collect_targets() proved control never
    // lands on them, and the remap below asserts it.
    const std::vector<bool> target = collect_targets(input);
    std::vector<std::int32_t> new_pc(input.code.size() + 1, -1);
    std::size_t pc = 0;
    while (pc < input.code.size()) {
        new_pc[pc] = static_cast<std::int32_t>(out.code.size());
        const std::size_t width = match(input, pc, target);
        if (width == 0) {
            out.code.push_back(input.code[pc]);
            ++pc;
        } else {
            out.code.push_back(fuse(input, pc, width, out));
            pc += width;
        }
    }
    new_pc[input.code.size()] = static_cast<std::int32_t>(out.code.size());

    auto remap = [&](std::int32_t old) {
        const std::int32_t mapped = new_pc[static_cast<std::size_t>(old)];
        if (mapped < 0) {
            throw std::logic_error(
                "vm::optimize: jump into the interior of a fused window");
        }
        return mapped;
    };
    for (Instr& ins : out.code) {
        switch (ins.op) {
            case Op::Jump:
            case Op::JumpIfFalse:
            case Op::AndJump:
            case Op::OrJump:
            case Op::CompareBranch:
                ins.a = remap(ins.a);
                break;
            case Op::LocalsBranch: {
                std::int32_t& t =
                    out.fused[static_cast<std::size_t>(ins.imm)].branch_target;
                t = remap(t);
                break;
            }
            case Op::LocalImmBranch: {
                std::int32_t& t =
                    out.fused[static_cast<std::size_t>(ins.b)].branch_target;
                t = remap(t);
                break;
            }
            default:
                break;
        }
    }
    for (VmFunction& fn : out.functions) fn.entry = remap(fn.entry);
    for (std::int32_t& entry : out.static_entries) entry = remap(entry);
    return out;
}

/// Per-slot occurrence summary for one function's code range.
struct SlotSummary {
    bool declared = false;
    bool escapes = false;      // PlaceLocal / CallLocalPtr: address observed
    bool integer_only = true;  // every declaration declares an integer type
};

/// True when `in.a` (and for BinaryLocals `in.b`) is a frame-slot index.
/// Everything else interprets `a` differently (binop, fn index, cast kind,
/// static index, …) and must not feed the analysis.
bool is_slot_ref(Op op) {
    switch (op) {
        case Op::LoadLocal:
        case Op::PlaceLocal:
        case Op::DeclLocal:
        case Op::DeclParam:
        case Op::KillSlot:
        case Op::KillSlotTail:
        case Op::CallLocalPtr:
        case Op::StoreLocal:
        case Op::BinaryLocals:
        case Op::BinaryLocalImm:
        case Op::BinaryAccImm:
        case Op::LocalsBranch:
        case Op::LocalImmBranch:
            return true;
        default:
            return false;
    }
}

/// Register promotion over one function's [begin, end) code range.
/// A slot is promoted when its address is never taken (no PlaceLocal /
/// CallLocalPtr), every declaration declares a plain integer, and it is
/// declared in-range at all. Bools stay memory-resident: a bool load
/// re-validates the stored byte (bits > 1 is UB), and a register cannot
/// reproduce that check without duplicating MemoryModel logic.
void promote_function(VmProgram& out, VmFunction& fn, std::size_t begin,
                      std::size_t end) {
    if (fn.slot_count == 0) return;
    std::vector<SlotSummary> slots(fn.slot_count);
    auto summary = [&](std::int32_t slot) -> SlotSummary* {
        if (slot < 0 || static_cast<std::uint32_t>(slot) >= fn.slot_count) {
            return nullptr;
        }
        return &slots[static_cast<std::uint32_t>(slot)];
    };
    for (std::size_t pc = begin; pc < end; ++pc) {
        const Instr& ins = out.code[pc];
        if (!is_slot_ref(ins.op)) continue;
        SlotSummary* s = summary(ins.a);
        if (s == nullptr) continue;
        switch (ins.op) {
            case Op::PlaceLocal:
            case Op::CallLocalPtr:
                s->escapes = true;
                break;
            case Op::DeclLocal:
            case Op::DeclParam: {
                s->declared = true;
                const lang::Type* type = out.types[ins.type];
                if (type == nullptr || !type->is_integer()) {
                    s->integer_only = false;
                }
                break;
            }
            default:
                // Loads, stores, and kills are whole-value accesses: they
                // neither take the slot's address nor constrain its type.
                break;
        }
    }

    std::vector<std::int32_t> reg_of(fn.slot_count, -1);
    std::uint32_t next_reg = 0;
    for (std::uint32_t i = 0; i < fn.slot_count; ++i) {
        if (slots[i].declared && !slots[i].escapes && slots[i].integer_only) {
            reg_of[i] = static_cast<std::int32_t>(next_reg++);
        }
    }
    fn.reg_count = next_reg;
    if (next_reg == 0) return;

    auto reg_for = [&](std::int32_t slot) -> std::int32_t {
        if (slot < 0 || static_cast<std::uint32_t>(slot) >= fn.slot_count) {
            return -1;
        }
        return reg_of[static_cast<std::uint32_t>(slot)];
    };
    for (std::size_t pc = begin; pc < end; ++pc) {
        Instr& ins = out.code[pc];
        switch (ins.op) {
            case Op::DeclLocal:
            case Op::DeclParam:
            case Op::LoadLocal:
            case Op::StoreLocal: {
                const std::int32_t reg = reg_for(ins.a);
                if (reg >= 0) ins.ex = static_cast<std::uint16_t>(reg + 1);
                break;
            }
            case Op::BinaryLocals:
            case Op::LocalsBranch: {
                FusedDetail& d = out.fused[static_cast<std::size_t>(ins.imm)];
                d.lhs_reg = reg_for(ins.a);
                d.rhs_reg = reg_for(ins.b);
                break;
            }
            case Op::BinaryLocalImm:
            case Op::BinaryAccImm:
            case Op::LocalImmBranch: {
                FusedDetail& d =
                    out.fused[static_cast<std::size_t>(ins.b)];
                d.lhs_reg = reg_for(ins.a);
                break;
            }
            default:
                break;
        }
    }
}

}  // namespace

VmProgram optimize(const VmProgram& input) {
    CompileStats::optimize_passes.fetch_add(1, std::memory_order_relaxed);

    // Two fusion stages (the second fuses across the first's output), then
    // register promotion over the final code.
    VmProgram out = run_pass(run_pass(input, match_window, fuse_window),
                             match_window2, fuse_window2);

    // Register promotion, function by function. A function's code
    // is the contiguous range from its entry to the next entry (functions
    // and static chunks are emitted back to back, in entry order).
    std::vector<std::int32_t> boundaries;
    boundaries.reserve(out.functions.size() + out.static_entries.size() + 1);
    for (const VmFunction& fn : out.functions) boundaries.push_back(fn.entry);
    for (std::int32_t entry : out.static_entries) boundaries.push_back(entry);
    boundaries.push_back(static_cast<std::int32_t>(out.code.size()));
    for (VmFunction& fn : out.functions) {
        std::int32_t end = static_cast<std::int32_t>(out.code.size());
        for (std::int32_t b : boundaries) {
            if (b > fn.entry && b < end) end = b;
        }
        promote_function(out, fn, static_cast<std::size_t>(fn.entry),
                         static_cast<std::size_t>(end));
    }
    return out;
}

}  // namespace rustbrain::vm
