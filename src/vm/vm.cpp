// Bytecode dispatch loop. Every handler is a direct port of the matching
// miri::Interpreter code path — same memory-model calls, same messages, same
// spans, same step() points — so the two tiers stay byte-identical.
#include "vm/vm.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace rustbrain::vm {

using lang::Type;
using miri::AccessCtx;
using miri::AllocId;
using miri::AllocKind;
using miri::Finding;
using miri::FnPtrVal;
using miri::kNoAlloc;
using miri::kNoTag;
using miri::PanicException;
using miri::Pointer;
using miri::UbCategory;
using miri::UbException;
using miri::Value;
using miri::VectorClock;

namespace {
const std::string& name_of(const Instr& in) {
    return *static_cast<const std::string*>(in.aux);
}

Value arith_result(std::uint64_t bits, const Type& type) {
    return Value::scalar(miri::truncate_to_type(bits, type));
}

std::int64_t signed_value(const Value& v, const Type& t) {
    return v.as_signed(t.size_bytes());
}
}  // namespace

Vm::Vm(const lang::Program& program, const VmProgram& code,
       std::vector<std::int64_t> inputs, miri::InterpLimits limits)
    : program_(program),
      code_(code),
      inputs_(std::move(inputs)),
      limits_(limits) {
    static_slots_.assign(program_.statics.size(), kNoAlloc);
    stack_.reserve(256);
    slots_.reserve(256);
    frames_.reserve(64);
}

void Vm::panic(std::string message, support::SourceSpan span) const {
    throw PanicException{std::move(message), span};
}

void Vm::step(const support::SourceSpan& span) {
    if (++steps_ > limits_.max_steps) {
        panic("step limit exceeded (possible infinite loop)", span);
    }
}

VectorClock& Vm::current_vc() {
    if (current_thread_ == 0) return main_vc_;
    return threads_[current_thread_ - 1].vc;
}

AccessCtx Vm::access_ctx(support::SourceSpan span, bool atomic) const {
    AccessCtx ctx;
    ctx.tid = current_thread_;
    ctx.vc = multithreaded_
                 ? (current_thread_ == 0 ? &main_vc_
                                         : &threads_[current_thread_ - 1].vc)
                 : nullptr;
    ctx.atomic = atomic;
    ctx.span = span;
    return ctx;
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

miri::RunResult Vm::run() {
    miri::RunResult result;
    try {
        setup_statics();
        if (code_.main_fn < 0) {
            throw UbException{Finding{UbCategory::CompileError,
                                      "program has no 'main' function",
                                      {}}};
        }
        run_function(code_.main_fn,
                     code_.functions[static_cast<std::size_t>(code_.main_fn)]
                         .span);

        for (const ThreadState& thread : threads_) {
            if (!thread.joined) {
                throw UbException{Finding{
                    UbCategory::Concurrency,
                    "thread leaked: spawned thread was never joined before main exited",
                    {}}};
            }
        }
        for (std::size_t i = 0; i < mutexes_.size(); ++i) {
            if (mutexes_[i].held_by.has_value()) {
                throw UbException{Finding{
                    UbCategory::Concurrency,
                    "mutex " + std::to_string(i + 1) + " still held at main exit",
                    {}}};
            }
        }
        if (auto leak = mem_.check_leaks()) {
            throw UbException{*leak};
        }
    } catch (const UbException& ub) {
        result.finding = ub.finding;
    } catch (const PanicException& p) {
        result.finding = Finding{UbCategory::Panic, p.message, p.span};
    }
    result.output = output_;
    result.steps = steps_;
    return result;
}

void Vm::setup_statics() {
    for (std::size_t i = 0; i < program_.statics.size(); ++i) {
        const auto& item = program_.statics[i];
        const AllocId alloc = mem_.allocate(item.type.size_bytes(),
                                            item.type.align_bytes(),
                                            AllocKind::Static, item.name,
                                            item.span);
        static_slots_[i] = alloc;
        pc_ = code_.static_entries[i];
        const Value init = dispatch(frames_.size());
        mem_.store(mem_.base_pointer(alloc), item.type, init,
                   access_ctx(item.span));
    }
}

miri::Value Vm::run_function(std::int32_t fn_index, support::SourceSpan span) {
    const std::size_t frame_floor = frames_.size();
    enter_function(fn_index, 0, /*ret_pc=*/-1, span);
    return dispatch(frame_floor);
}

void Vm::enter_function(std::int32_t fn_index, std::uint32_t nargs,
                        std::int32_t ret_pc, support::SourceSpan span) {
    if (fn_index < 0 ||
        static_cast<std::size_t>(fn_index) >= code_.functions.size()) {
        throw UbException{Finding{UbCategory::FuncCall,
                                  "calling a pointer that is not a function",
                                  span}};
    }
    if (++call_depth_ > limits_.max_call_depth) {
        --call_depth_;
        panic("stack overflow: call depth exceeded " +
                  std::to_string(limits_.max_call_depth),
              span);
    }
    const VmFunction& fn = code_.functions[static_cast<std::size_t>(fn_index)];
    Frame frame;
    frame.fn = fn_index;
    frame.ret_pc = ret_pc;
    frame.args_base = static_cast<std::uint32_t>(stack_.size() - nargs);
    frame.nargs = nargs;
    frame.slot_base = static_cast<std::uint32_t>(slots_.size());
    frames_.push_back(frame);
    slots_.resize(slots_.size() + fn.slot_count);
    pc_ = fn.entry;
}

void Vm::run_thread(ThreadState& thread, support::SourceSpan span) {
    // Exceptions terminate the whole run (run() converts them straight into
    // the finding), so unlike the tree walk there is no state to restore on
    // the unwind path — the restores below only matter on success.
    const miri::ThreadId saved_thread = current_thread_;
    current_thread_ = thread.id;
    const std::uint32_t saved_depth = call_depth_;
    call_depth_ = 0;
    run_function(thread.entry_fn, span);
    call_depth_ = saved_depth;
    current_thread_ = saved_thread;
    thread.executed = true;
}

std::int32_t Vm::resolve_fn_target(const FnPtrVal& fn, const Type& static_type,
                                   support::SourceSpan span,
                                   bool is_become) const {
    if (!fn.valid() ||
        static_cast<std::size_t>(fn.fn_index) >= program_.functions.size()) {
        throw UbException{
            Finding{is_become ? UbCategory::TailCall : UbCategory::FuncCall,
                    is_become
                        ? "tail call through a pointer that is not a function"
                        : "calling a pointer that is not a function",
                    span}};
    }
    const lang::FnItem& target =
        program_.functions[static_cast<std::size_t>(fn.fn_index)];
    if (static_type.is_fn_ptr() && !(target.fn_type() == static_type)) {
        throw UbException{Finding{
            is_become ? UbCategory::TailCall : UbCategory::FuncPointer,
            std::string(is_become ? "tail call" : "call") +
                " through a function pointer with the wrong signature: pointer says " +
                static_type.to_string() + " but '" + target.name + "' is " +
                target.fn_type().to_string(),
            span}};
    }
    return fn.fn_index;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

miri::Value Vm::dispatch(std::size_t frame_floor) {
    // The program counter lives in a local so the hot loop keeps it in a
    // register; it is synced with pc_ only around calls that re-enter
    // the dispatcher (enter_function sets pc_, Join saves/restores it).
    std::int32_t pc = pc_;
    while (true) {
        const Instr& in = code_.code[static_cast<std::size_t>(pc)];
        switch (in.op) {
            case Op::Step:
                step(in.span);
                ++pc;
                continue;
            case Op::Jump:
                pc = in.a;
                continue;
            case Op::JumpIfFalse: {
                const bool taken = !stack_.back().as_bool();
                stack_.pop_back();
                pc = taken ? in.a : pc + 1;
                continue;
            }
            case Op::AndJump:
                if (!stack_.back().as_bool()) {
                    pc = in.a;
                } else {
                    stack_.pop_back();
                    ++pc;
                }
                continue;
            case Op::OrJump:
                if (stack_.back().as_bool()) {
                    pc = in.a;
                } else {
                    stack_.pop_back();
                    ++pc;
                }
                continue;
            case Op::BoolNorm:
                stack_.back() = Value::boolean(stack_.back().as_bool());
                ++pc;
                continue;
            case Op::Pop:
                stack_.pop_back();
                ++pc;
                continue;

            case Op::PushUnit:
                stack_.push_back(Value::unit());
                ++pc;
                continue;
            case Op::PushInt:
                step(in.span);
                stack_.push_back(Value::scalar(in.imm));
                ++pc;
                continue;
            case Op::PushBool:
                step(in.span);
                stack_.push_back(Value::boolean(in.a != 0));
                ++pc;
                continue;
            case Op::PushFn:
                step(in.span);
                stack_.push_back(Value::function(FnPtrVal{in.a}));
                ++pc;
                continue;
            case Op::LoadLocal: {
                step(in.span);
                const SlotState& slot =
                    slots_[frames_.back().slot_base +
                           static_cast<std::uint32_t>(in.a)];
                if (slot.alloc == kNoAlloc) {
                    throw std::logic_error("eval_place: unresolved name '" +
                                           name_of(in) + "'");
                }
                stack_.push_back(mem_.load(mem_.base_pointer(slot.alloc),
                                           *slot.type, access_ctx(in.span)));
                ++pc;
                continue;
            }
            case Op::LoadStatic: {
                step(in.span);
                const AllocId alloc =
                    static_slots_[static_cast<std::size_t>(in.a)];
                if (alloc != kNoAlloc) {
                    stack_.push_back(mem_.load(mem_.base_pointer(alloc),
                                               *in.type, access_ctx(in.span)));
                } else if (in.b >= 0) {
                    // Forward reference during static setup: fall through to
                    // the same-named function item, like the tree walk.
                    stack_.push_back(Value::function(FnPtrVal{in.b}));
                } else {
                    throw std::logic_error("unresolved name '" + name_of(in) +
                                           "'");
                }
                ++pc;
                continue;
            }
            case Op::ThrowUnresolved:
                step(in.span);
                throw std::logic_error("unresolved name '" + name_of(in) + "'");

            case Op::PlaceLocal: {
                const SlotState& slot =
                    slots_[frames_.back().slot_base +
                           static_cast<std::uint32_t>(in.a)];
                if (slot.alloc == kNoAlloc) {
                    throw std::logic_error("eval_place: unresolved name '" +
                                           name_of(in) + "'");
                }
                stack_.push_back(Value::pointer(mem_.base_pointer(slot.alloc)));
                ++pc;
                continue;
            }
            case Op::PlaceStatic: {
                const AllocId alloc =
                    static_slots_[static_cast<std::size_t>(in.a)];
                if (alloc == kNoAlloc) {
                    throw std::logic_error("eval_place: unresolved name '" +
                                           name_of(in) + "'");
                }
                stack_.push_back(Value::pointer(mem_.base_pointer(alloc)));
                ++pc;
                continue;
            }
            case Op::PlaceUnresolved:
                throw std::logic_error("eval_place: unresolved name '" +
                                       name_of(in) + "'");
            case Op::AsPtr:
                (void)stack_.back().as_ptr();
                ++pc;
                continue;
            case Op::IndexPlace: {
                const std::uint64_t i = stack_.back().bits();
                stack_.pop_back();
                Pointer element_ptr = stack_.back().as_ptr();
                stack_.pop_back();
                if (i >= in.imm) {
                    panic("index out of bounds: the len is " +
                              std::to_string(in.imm) + " but the index is " +
                              std::to_string(i),
                          in.span);
                }
                element_ptr.addr += i * static_cast<std::uint64_t>(in.a);
                stack_.push_back(Value::pointer(element_ptr));
                ++pc;
                continue;
            }

            case Op::LoadThrough: {
                const Pointer p = stack_.back().as_ptr();
                stack_.pop_back();
                stack_.push_back(mem_.load(p, *in.type, access_ctx(in.span)));
                ++pc;
                continue;
            }
            case Op::StorePlace: {
                const Pointer p = stack_.back().as_ptr();
                stack_.pop_back();
                mem_.store(p, *in.type, stack_.back(), access_ctx(in.span));
                stack_.pop_back();
                ++pc;
                continue;
            }
            case Op::RetagRef: {
                const Pointer p = stack_.back().as_ptr();
                stack_.pop_back();
                stack_.push_back(Value::pointer(
                    mem_.retag_ref(p, in.imm, in.a != 0, in.span)));
                ++pc;
                continue;
            }
            case Op::DeclLocal: {
                const AllocId alloc =
                    mem_.allocate(in.type->size_bytes(), in.type->align_bytes(),
                                  AllocKind::Stack, name_of(in), in.span);
                mem_.store(mem_.base_pointer(alloc), *in.type, stack_.back(),
                           access_ctx(in.span));
                stack_.pop_back();
                slots_[frames_.back().slot_base +
                       static_cast<std::uint32_t>(in.a)] = {alloc, in.type};
                ++pc;
                continue;
            }
            case Op::DeclParam: {
                const Frame& frame = frames_.back();
                const Value value =
                    static_cast<std::uint32_t>(in.b) < frame.nargs
                        ? stack_[frame.args_base +
                                 static_cast<std::uint32_t>(in.b)]
                        : Value::unit();
                const AllocId alloc =
                    mem_.allocate(in.type->size_bytes(), in.type->align_bytes(),
                                  AllocKind::Stack, name_of(in), in.span);
                mem_.store(mem_.base_pointer(alloc), *in.type, value,
                           access_ctx(in.span));
                slots_[frame.slot_base + static_cast<std::uint32_t>(in.a)] = {
                    alloc, in.type};
                ++pc;
                continue;
            }
            case Op::DropArgs:
                stack_.resize(frames_.back().args_base);
                ++pc;
                continue;
            case Op::KillSlot: {
                SlotState& slot = slots_[frames_.back().slot_base +
                                         static_cast<std::uint32_t>(in.a)];
                if (slot.alloc != kNoAlloc) {
                    mem_.kill(slot.alloc);
                    slot = {};
                }
                ++pc;
                continue;
            }
            case Op::KillSlotTail: {
                SlotState& slot = slots_[frames_.back().slot_base +
                                         static_cast<std::uint32_t>(in.a)];
                if (slot.alloc != kNoAlloc) {
                    mem_.kill_for_tail_call(slot.alloc);
                    slot = {};
                }
                ++pc;
                continue;
            }

            case Op::Neg: {
                const Value operand = stack_.back();
                stack_.pop_back();
                const Type& operand_type =
                    *static_cast<const Type*>(in.aux);
                const std::int64_t value = signed_value(operand, operand_type);
                const std::uint64_t size = in.type->size_bytes();
                const std::int64_t min_value =
                    size >= 8 ? std::numeric_limits<std::int64_t>::min()
                              : -(1LL << (size * 8 - 1));
                if (value == min_value) {
                    panic("attempt to negate with overflow", in.span);
                }
                stack_.push_back(arith_result(
                    static_cast<std::uint64_t>(-value), *in.type));
                ++pc;
                continue;
            }
            case Op::NotBool:
                stack_.back() = Value::boolean(!stack_.back().as_bool());
                ++pc;
                continue;
            case Op::NotBits:
                stack_.back() = arith_result(~stack_.back().bits(), *in.type);
                ++pc;
                continue;
            case Op::Binary: {
                const Value rhs = std::move(stack_.back());
                stack_.pop_back();
                const Value lhs = std::move(stack_.back());
                stack_.pop_back();
                stack_.push_back(eval_binary(in, lhs, rhs));
                ++pc;
                continue;
            }
            case Op::Cast: {
                const Value operand = std::move(stack_.back());
                stack_.pop_back();
                stack_.push_back(eval_cast(in, operand));
                ++pc;
                continue;
            }
            case Op::MakeArray: {
                const std::size_t n = static_cast<std::size_t>(in.a);
                std::vector<Value> elements(stack_.end() -
                                                static_cast<std::ptrdiff_t>(n),
                                            stack_.end());
                stack_.resize(stack_.size() - n);
                stack_.push_back(Value::array(std::move(elements)));
                ++pc;
                continue;
            }
            case Op::MakeRepeat: {
                const Value element = stack_.back();
                stack_.pop_back();
                stack_.push_back(Value::array(std::vector<Value>(
                    static_cast<std::size_t>(in.imm), element)));
                ++pc;
                continue;
            }

            case Op::CallDirect:
                enter_function(in.a, static_cast<std::uint32_t>(in.b), pc + 1,
                               in.span);
                pc = pc_;
                continue;
            case Op::CallLocalPtr: {
                const SlotState& slot =
                    slots_[frames_.back().slot_base +
                           static_cast<std::uint32_t>(in.a)];
                if (slot.alloc == kNoAlloc) {
                    throw std::logic_error("call to unknown function '" +
                                           name_of(in) + "'");
                }
                const Value callee =
                    mem_.load(mem_.base_pointer(slot.alloc), *slot.type,
                              access_ctx(in.span));
                const std::int32_t target = resolve_fn_target(
                    callee.as_fn(), *slot.type, in.span, /*is_become=*/false);
                enter_function(target, static_cast<std::uint32_t>(in.b),
                               pc + 1, in.span);
                pc = pc_;
                continue;
            }
            case Op::CallPtr: {
                const std::size_t callee_at =
                    stack_.size() - static_cast<std::size_t>(in.b) - 1;
                const std::int32_t target = resolve_fn_target(
                    stack_[callee_at].as_fn(), *in.type, in.span,
                    /*is_become=*/false);
                stack_.erase(stack_.begin() +
                             static_cast<std::ptrdiff_t>(callee_at));
                enter_function(target, static_cast<std::uint32_t>(in.b),
                               pc + 1, in.span);
                pc = pc_;
                continue;
            }
            case Op::TailCall: {
                const std::size_t callee_at =
                    stack_.size() - static_cast<std::size_t>(in.b) - 1;
                const std::int32_t target = resolve_fn_target(
                    stack_[callee_at].as_fn(), *in.type, in.span,
                    /*is_become=*/true);
                stack_.erase(stack_.begin() +
                             static_cast<std::ptrdiff_t>(callee_at));
                // Reuse the frame in place: resize the slot window for the
                // target, keep ret_pc, leave call_depth_ untouched.
                Frame& frame = frames_.back();
                const VmFunction& fn =
                    code_.functions[static_cast<std::size_t>(target)];
                slots_.resize(frame.slot_base);
                slots_.resize(frame.slot_base + fn.slot_count);
                frame.fn = target;
                frame.nargs = static_cast<std::uint32_t>(in.b);
                frame.args_base =
                    static_cast<std::uint32_t>(stack_.size() - frame.nargs);
                pc = fn.entry;
                continue;
            }
            case Op::CallUnknown:
                throw std::logic_error("call to unknown function '" +
                                       name_of(in) + "'");
            case Op::Intrinsic:
                pc_ = pc;
                do_intrinsic(in);
                pc = pc_;
                ++pc;
                continue;

            case Op::Ret: {
                const Frame frame = frames_.back();
                frames_.pop_back();
                slots_.resize(frame.slot_base);
                --call_depth_;
                if (frames_.size() == frame_floor) {
                    Value result = std::move(stack_.back());
                    stack_.pop_back();
                    return result;
                }
                pc = frame.ret_pc;
                continue;
            }
            case Op::Halt: {
                Value result = std::move(stack_.back());
                stack_.pop_back();
                return result;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Binary / cast helpers (ports of eval_binary / eval_cast)
// ---------------------------------------------------------------------------

miri::Value Vm::eval_binary(const Instr& in, const Value& lhs,
                            const Value& rhs) {
    using lang::BinaryOp;
    const BinaryOp op = static_cast<BinaryOp>(in.a);
    const Type& result_type = *in.type;
    const Type& operand_type = *static_cast<const Type*>(in.aux);
    const std::uint64_t size = operand_type.size_bytes();
    const bool is_signed = operand_type.is_signed_integer();
    const support::SourceSpan span = in.span;

    auto check_overflow = [&](std::int64_t wide, const char* op_name) {
        if (size >= 8) return;
        if (is_signed) {
            const std::int64_t min_value = -(1LL << (size * 8 - 1));
            const std::int64_t max_value = (1LL << (size * 8 - 1)) - 1;
            if (wide < min_value || wide > max_value) {
                panic(std::string("attempt to ") + op_name + " with overflow",
                      span);
            }
        } else {
            const std::uint64_t max_value = (1ULL << (size * 8)) - 1;
            if (static_cast<std::uint64_t>(wide) > max_value || wide < 0) {
                panic(std::string("attempt to ") + op_name + " with overflow",
                      span);
            }
        }
    };

    switch (op) {
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul: {
            const char* name = op == BinaryOp::Add   ? "add"
                               : op == BinaryOp::Sub ? "subtract"
                                                     : "multiply";
            if (size >= 8) {
                if (is_signed) {
                    const std::int64_t a = signed_value(lhs, operand_type);
                    const std::int64_t b = signed_value(rhs, operand_type);
                    std::int64_t out = 0;
                    bool overflow = false;
                    if (op == BinaryOp::Add) {
                        overflow = __builtin_add_overflow(a, b, &out);
                    } else if (op == BinaryOp::Sub) {
                        overflow = __builtin_sub_overflow(a, b, &out);
                    } else {
                        overflow = __builtin_mul_overflow(a, b, &out);
                    }
                    if (overflow) {
                        panic(std::string("attempt to ") + name +
                                  " with overflow",
                              span);
                    }
                    return arith_result(static_cast<std::uint64_t>(out),
                                        result_type);
                }
                const std::uint64_t a = lhs.bits();
                const std::uint64_t b = rhs.bits();
                std::uint64_t out = 0;
                bool overflow = false;
                if (op == BinaryOp::Add) {
                    overflow = __builtin_add_overflow(a, b, &out);
                } else if (op == BinaryOp::Sub) {
                    overflow = __builtin_sub_overflow(a, b, &out);
                } else {
                    overflow = __builtin_mul_overflow(a, b, &out);
                }
                if (overflow) {
                    panic(std::string("attempt to ") + name + " with overflow",
                          span);
                }
                return arith_result(out, result_type);
            }
            const std::int64_t a = is_signed
                                       ? signed_value(lhs, operand_type)
                                       : static_cast<std::int64_t>(lhs.bits());
            const std::int64_t b = is_signed
                                       ? signed_value(rhs, operand_type)
                                       : static_cast<std::int64_t>(rhs.bits());
            std::int64_t wide = 0;
            if (op == BinaryOp::Add) wide = a + b;
            if (op == BinaryOp::Sub) wide = a - b;
            if (op == BinaryOp::Mul) wide = a * b;
            check_overflow(wide, name);
            return arith_result(static_cast<std::uint64_t>(wide), result_type);
        }
        case BinaryOp::Div:
        case BinaryOp::Rem: {
            const bool is_div = op == BinaryOp::Div;
            if (rhs.bits() == 0) {
                panic(is_div ? "attempt to divide by zero"
                             : "attempt to calculate the remainder with a divisor of zero",
                      span);
            }
            if (is_signed) {
                const std::int64_t a = signed_value(lhs, operand_type);
                const std::int64_t b = signed_value(rhs, operand_type);
                const std::int64_t min_value =
                    size >= 8 ? std::numeric_limits<std::int64_t>::min()
                              : -(1LL << (size * 8 - 1));
                if (a == min_value && b == -1) {
                    panic(is_div ? "attempt to divide with overflow"
                                 : "attempt to calculate the remainder with overflow",
                          span);
                }
                const std::int64_t out = is_div ? a / b : a % b;
                return arith_result(static_cast<std::uint64_t>(out),
                                    result_type);
            }
            const std::uint64_t out =
                is_div ? lhs.bits() / rhs.bits() : lhs.bits() % rhs.bits();
            return arith_result(out, result_type);
        }
        case BinaryOp::Shl:
        case BinaryOp::Shr: {
            const std::uint64_t shift = rhs.bits();
            if (shift >= size * 8) {
                panic(op == BinaryOp::Shl
                          ? "attempt to shift left with overflow"
                          : "attempt to shift right with overflow",
                      span);
            }
            if (op == BinaryOp::Shl) {
                return arith_result(lhs.bits() << shift, result_type);
            }
            if (is_signed) {
                return arith_result(static_cast<std::uint64_t>(
                                        signed_value(lhs, operand_type) >>
                                        static_cast<std::int64_t>(shift)),
                                    result_type);
            }
            return arith_result(lhs.bits() >> shift, result_type);
        }
        case BinaryOp::BitAnd:
            return arith_result(lhs.bits() & rhs.bits(), result_type);
        case BinaryOp::BitOr:
            return arith_result(lhs.bits() | rhs.bits(), result_type);
        case BinaryOp::BitXor:
            return arith_result(lhs.bits() ^ rhs.bits(), result_type);
        case BinaryOp::Eq:
            return Value::boolean(lhs.bits() == rhs.bits());
        case BinaryOp::Ne:
            return Value::boolean(lhs.bits() != rhs.bits());
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge: {
            bool result = false;
            if (is_signed) {
                const std::int64_t a = signed_value(lhs, operand_type);
                const std::int64_t b = signed_value(rhs, operand_type);
                result = op == BinaryOp::Lt   ? a < b
                         : op == BinaryOp::Le ? a <= b
                         : op == BinaryOp::Gt ? a > b
                                              : a >= b;
            } else {
                const std::uint64_t a = lhs.bits();
                const std::uint64_t b = rhs.bits();
                result = op == BinaryOp::Lt   ? a < b
                         : op == BinaryOp::Le ? a <= b
                         : op == BinaryOp::Gt ? a > b
                                              : a >= b;
            }
            return Value::boolean(result);
        }
        case BinaryOp::And:
        case BinaryOp::Or:
            break;  // compiled to AndJump/OrJump, never reach here
    }
    return Value::unit();
}

miri::Value Vm::eval_cast(const Instr& in, const Value& operand) {
    switch (static_cast<CastKind>(in.a)) {
        case CastKind::IntFromInt: {
            const std::uint64_t wide =
                in.b != 0 ? static_cast<std::uint64_t>(operand.as_signed(
                                static_cast<std::uint64_t>(in.c)))
                          : operand.bits();
            return arith_result(wide, *in.type);
        }
        case CastKind::IntToRawPtr:
            return Value::pointer(Pointer{operand.bits(), kNoAlloc, kNoTag});
        case CastKind::PtrToInt:
            return arith_result(operand.bits(), *in.type);
        case CastKind::RefToRaw:
            return Value::pointer(mem_.retag_raw(operand.as_ptr(), in.imm,
                                                 in.c != 0, in.span));
        case CastKind::FnToInt:
            return arith_result(operand.bits(), *in.type);
        case CastKind::IntToFn:
            return Value::function(FnPtrVal{miri::fn_addr_to_index(
                operand.bits(), program_.functions.size())});
        case CastKind::Unsupported:
            break;
    }
    throw std::logic_error(name_of(in));
}

// ---------------------------------------------------------------------------
// Intrinsics (port of eval_intrinsic; arguments are already on the stack)
// ---------------------------------------------------------------------------

void Vm::do_intrinsic(const Instr& in) {
    const std::size_t nargs = static_cast<std::size_t>(in.b);
    std::vector<Value> args(stack_.end() - static_cast<std::ptrdiff_t>(nargs),
                            stack_.end());
    stack_.resize(stack_.size() - nargs);
    auto arg_bits = [&](std::size_t i) {
        return i < args.size() ? args[i].bits() : 0;
    };
    const support::SourceSpan span = in.span;

    switch (static_cast<IntrinsicId>(in.a)) {
        case IntrinsicId::Alloc: {
            const std::uint64_t size = arg_bits(0);
            const std::uint64_t align = arg_bits(1);
            const AllocId id =
                mem_.allocate(size, align, AllocKind::Heap, "heap", span);
            stack_.push_back(Value::pointer(mem_.base_pointer(id)));
            return;
        }
        case IntrinsicId::Dealloc:
            mem_.deallocate(args[0].as_ptr(), arg_bits(1), arg_bits(2), span);
            stack_.push_back(Value::unit());
            return;
        case IntrinsicId::Offset: {
            const Pointer p = args[0].as_ptr();
            const std::int64_t count =
                args[1].as_signed(static_cast<std::uint64_t>(in.c));
            const std::int64_t element_size = static_cast<std::int64_t>(in.imm);
            stack_.push_back(Value::pointer(
                mem_.offset_pointer(p, count * element_size, span)));
            return;
        }
        case IntrinsicId::PrintInt:
            if (in.c != 0) {
                output_.push_back(std::to_string(args[0].as_signed(in.imm)));
            } else {
                output_.push_back(std::to_string(args[0].bits()));
            }
            stack_.push_back(Value::unit());
            return;
        case IntrinsicId::PrintBool:
            output_.push_back(args[0].as_bool() ? "true" : "false");
            stack_.push_back(Value::unit());
            return;
        case IntrinsicId::Input: {
            const std::uint64_t index = arg_bits(0);
            const std::int64_t value =
                index < inputs_.size() ? inputs_[index] : 0;
            stack_.push_back(
                Value::scalar(static_cast<std::uint64_t>(value)));
            return;
        }
        case IntrinsicId::Assert:
            if (!args[0].as_bool()) {
                panic("assertion failed", span);
            }
            stack_.push_back(Value::unit());
            return;
        case IntrinsicId::Panic:
            panic("explicit panic", span);
        case IntrinsicId::Spawn: {
            multithreaded_ = true;
            ThreadState thread;
            thread.id = static_cast<miri::ThreadId>(threads_.size() + 1);
            thread.entry_fn = args[0].as_fn().fn_index;
            thread.vc = current_vc();
            thread.vc.increment(thread.id);
            current_vc().increment(current_thread_);
            threads_.push_back(std::move(thread));
            stack_.push_back(Value::scalar(threads_.size()));
            return;
        }
        case IntrinsicId::Join: {
            const std::uint64_t handle = arg_bits(0);
            if (handle == 0 || handle > threads_.size()) {
                throw UbException{Finding{UbCategory::Concurrency,
                                          "joining an invalid thread handle",
                                          span}};
            }
            ThreadState& thread = threads_[handle - 1];
            if (thread.joined) {
                throw UbException{
                    Finding{UbCategory::Concurrency,
                            "joining a thread that was already joined", span}};
            }
            if (!thread.executed) {
                const std::int32_t saved_pc = pc_;
                run_thread(thread, span);
                pc_ = saved_pc;
            }
            thread.joined = true;
            current_vc().merge(thread.vc);
            current_vc().increment(current_thread_);
            stack_.push_back(Value::unit());
            return;
        }
        case IntrinsicId::MutexNew:
            mutexes_.emplace_back();
            stack_.push_back(Value::scalar(mutexes_.size()));
            return;
        case IntrinsicId::MutexLock:
        case IntrinsicId::MutexUnlock: {
            const std::uint64_t handle = arg_bits(0);
            if (handle == 0 || handle > mutexes_.size()) {
                throw UbException{Finding{UbCategory::Concurrency,
                                          "invalid mutex handle", span}};
            }
            MutexState& mutex = mutexes_[handle - 1];
            if (static_cast<IntrinsicId>(in.a) == IntrinsicId::MutexLock) {
                if (mutex.held_by.has_value()) {
                    throw UbException{Finding{
                        UbCategory::Concurrency,
                        *mutex.held_by == current_thread_
                            ? "deadlock: thread re-locking a mutex it already holds"
                            : "deadlock: locking a mutex held by a finished thread",
                        span}};
                }
                mutex.held_by = current_thread_;
                current_vc().merge(mutex.vc);  // acquire
            } else {
                if (!mutex.held_by.has_value() ||
                    *mutex.held_by != current_thread_) {
                    throw UbException{
                        Finding{UbCategory::Concurrency,
                                "unlocking a mutex not held by this thread",
                                span}};
                }
                mutex.held_by.reset();
                mutex.vc.merge(current_vc());  // release
                current_vc().increment(current_thread_);
            }
            stack_.push_back(Value::unit());
            return;
        }
        case IntrinsicId::AtomicLoad:
        case IntrinsicId::AtomicStore:
        case IntrinsicId::AtomicFetchAdd: {
            const Pointer p = args[0].as_ptr();
            const Type i64_type = Type::i64();
            const IntrinsicId id = static_cast<IntrinsicId>(in.a);
            const bool is_load = id == IntrinsicId::AtomicLoad;
            const bool is_rmw = id == IntrinsicId::AtomicFetchAdd;
            const std::pair<AllocId, std::uint64_t> key{p.alloc, p.addr};
            VectorClock& loc_vc = atomic_vcs_[key];
            current_vc().merge(loc_vc);  // acquire
            Value result = Value::unit();
            if (is_load) {
                result =
                    mem_.load(p, i64_type, access_ctx(span, /*atomic=*/true));
            } else if (is_rmw) {
                const Value old =
                    mem_.load(p, i64_type, access_ctx(span, /*atomic=*/true));
                const std::uint64_t updated = old.bits() + args[1].bits();
                mem_.store(p, i64_type, Value::scalar(updated),
                           access_ctx(span, /*atomic=*/true));
                result = old;
            } else {
                mem_.store(p, i64_type, args[1],
                           access_ctx(span, /*atomic=*/true));
            }
            if (!is_load) {
                loc_vc.merge(current_vc());  // release
                current_vc().increment(current_thread_);
            }
            stack_.push_back(result);
            return;
        }
        case IntrinsicId::Unknown:
            break;
    }
    throw std::logic_error("unhandled intrinsic '" + name_of(in) + "'");
}

}  // namespace rustbrain::vm
