// Bytecode dispatch loop. Every handler is a direct port of the matching
// miri::Interpreter code path — same memory-model calls, same messages, same
// spans, same step() points — so the tiers stay byte-identical.
//
// Dispatch is single-sourced through the VM_CASE / VM_NEXT macros: on
// GCC/Clang each handler ends with a computed goto straight to the next
// opcode's handler (threaded dispatch — no shared branch for the predictor
// to mispredict); defining RUSTBRAIN_VM_SWITCH_DISPATCH falls back to the
// portable switch-in-a-loop. The label table in dispatch() must list every
// Op in exact enum order.
//
// Superinstruction handlers (BinaryLocals, BinaryLocalImm, StoreLocal,
// CompareBranch) execute the *exact* expansion of their fused window —
// the same step() calls at the same spans interleaved with the same memory
// accesses — so a panic or UB thrown mid-window observes the same steps_
// snapshot as the unfused program. Register-promoted locals (Instr::ex /
// FusedDetail::*_reg) skip the MemoryModel round trip; their declarations
// still shadow-allocate so address/id/tag streams stay identical.
#include "vm/vm.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(RUSTBRAIN_VM_SWITCH_DISPATCH)
#define RUSTBRAIN_VM_THREADED 1
#else
#define RUSTBRAIN_VM_THREADED 0
#endif

namespace rustbrain::vm {

using lang::Type;
using miri::AccessCtx;
using miri::AllocId;
using miri::AllocKind;
using miri::Finding;
using miri::FnPtrVal;
using miri::kNoAlloc;
using miri::kNoTag;
using miri::PanicException;
using miri::Pointer;
using miri::UbCategory;
using miri::UbException;
using miri::Value;
using miri::VectorClock;

namespace {
Value arith_result(std::uint64_t bits, const Type& type) {
    return Value::scalar(miri::truncate_to_type(bits, type));
}

std::int64_t signed_value(const Value& v, const Type& t) {
    return v.as_signed(t.size_bytes());
}

/// Store+load round trip for a promoted integer slot, collapsed: store
/// truncates to the type's width (little-endian), load zero-extends — the
/// composition is truncate_to_type on the raw bits. (Only integer slots are
/// promoted; bool loads add a validity check, so bools stay in memory.)
Value reg_normalize(const Value& value, const Type& type) {
    return Value::scalar(miri::truncate_to_type(value.bits(), type));
}
}  // namespace

Vm::Vm(const lang::Program& program, const VmProgram& code,
       std::vector<std::int64_t> inputs, miri::InterpLimits limits)
    : program_(program),
      code_(code),
      inputs_(std::move(inputs)),
      limits_(limits) {
    static_slots_.assign(program_.statics.size(), kNoAlloc);
    stack_.reserve(256);
    slots_.reserve(256);
    frames_.reserve(64);
}

void Vm::panic(std::string message, support::SourceSpan span) const {
    throw PanicException{std::move(message), span};
}

void Vm::step(const support::SourceSpan& span) {
    if (++steps_ > limits_.max_steps) {
        panic("step limit exceeded (possible infinite loop)", span);
    }
}

VectorClock& Vm::current_vc() {
    if (current_thread_ == 0) return main_vc_;
    return threads_[current_thread_ - 1].vc;
}

AccessCtx Vm::access_ctx(support::SourceSpan span, bool atomic) const {
    AccessCtx ctx;
    ctx.tid = current_thread_;
    ctx.vc = multithreaded_
                 ? (current_thread_ == 0 ? &main_vc_
                                         : &threads_[current_thread_ - 1].vc)
                 : nullptr;
    ctx.atomic = atomic;
    ctx.span = span;
    return ctx;
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

miri::RunResult Vm::run() {
    miri::RunResult result;
    try {
        setup_statics();
        if (code_.main_fn < 0) {
            throw UbException{Finding{UbCategory::CompileError,
                                      "program has no 'main' function",
                                      {}}};
        }
        run_function(code_.main_fn,
                     code_.functions[static_cast<std::size_t>(code_.main_fn)]
                         .span);

        for (const ThreadState& thread : threads_) {
            if (!thread.joined) {
                throw UbException{Finding{
                    UbCategory::Concurrency,
                    "thread leaked: spawned thread was never joined before main exited",
                    {}}};
            }
        }
        for (std::size_t i = 0; i < mutexes_.size(); ++i) {
            if (mutexes_[i].held_by.has_value()) {
                throw UbException{Finding{
                    UbCategory::Concurrency,
                    "mutex " + std::to_string(i + 1) + " still held at main exit",
                    {}}};
            }
        }
        if (auto leak = mem_.check_leaks()) {
            throw UbException{*leak};
        }
    } catch (const UbException& ub) {
        result.finding = ub.finding;
    } catch (const PanicException& p) {
        result.finding = Finding{UbCategory::Panic, p.message, p.span};
    }
    result.output = output_;
    result.steps = steps_;
    return result;
}

void Vm::setup_statics() {
    for (std::size_t i = 0; i < program_.statics.size(); ++i) {
        const auto& item = program_.statics[i];
        const AllocId alloc = mem_.allocate(item.type.size_bytes(),
                                            item.type.align_bytes(),
                                            AllocKind::Static, item.name,
                                            item.span);
        static_slots_[i] = alloc;
        pc_ = code_.static_entries[i];
        const Value init = dispatch(frames_.size());
        mem_.store(mem_.base_pointer(alloc), item.type, init,
                   access_ctx(item.span));
    }
}

miri::Value Vm::run_function(std::int32_t fn_index, support::SourceSpan span) {
    const std::size_t frame_floor = frames_.size();
    enter_function(fn_index, 0, /*ret_pc=*/-1, span);
    return dispatch(frame_floor);
}

void Vm::enter_function(std::int32_t fn_index, std::uint32_t nargs,
                        std::int32_t ret_pc, support::SourceSpan span) {
    if (fn_index < 0 ||
        static_cast<std::size_t>(fn_index) >= code_.functions.size()) {
        throw UbException{Finding{UbCategory::FuncCall,
                                  "calling a pointer that is not a function",
                                  span}};
    }
    if (++call_depth_ > limits_.max_call_depth) {
        --call_depth_;
        panic("stack overflow: call depth exceeded " +
                  std::to_string(limits_.max_call_depth),
              span);
    }
    const VmFunction& fn = code_.functions[static_cast<std::size_t>(fn_index)];
    Frame frame;
    frame.fn = fn_index;
    frame.ret_pc = ret_pc;
    frame.args_base = static_cast<std::uint32_t>(stack_.size() - nargs);
    frame.nargs = nargs;
    frame.slot_base = static_cast<std::uint32_t>(slots_.size());
    frame.reg_base = static_cast<std::uint32_t>(regs_.size());
    frames_.push_back(frame);
    slots_.resize(slots_.size() + fn.slot_count);
    regs_.resize(regs_.size() + fn.reg_count);
    pc_ = fn.entry;
}

void Vm::run_thread(ThreadState& thread, support::SourceSpan span) {
    // Exceptions terminate the whole run (run() converts them straight into
    // the finding), so unlike the tree walk there is no state to restore on
    // the unwind path — the restores below only matter on success.
    const miri::ThreadId saved_thread = current_thread_;
    current_thread_ = thread.id;
    const std::uint32_t saved_depth = call_depth_;
    call_depth_ = 0;
    run_function(thread.entry_fn, span);
    call_depth_ = saved_depth;
    current_thread_ = saved_thread;
    thread.executed = true;
}

std::int32_t Vm::resolve_fn_target(const FnPtrVal& fn, const Type& static_type,
                                   support::SourceSpan span,
                                   bool is_become) const {
    if (!fn.valid() ||
        static_cast<std::size_t>(fn.fn_index) >= program_.functions.size()) {
        throw UbException{
            Finding{is_become ? UbCategory::TailCall : UbCategory::FuncCall,
                    is_become
                        ? "tail call through a pointer that is not a function"
                        : "calling a pointer that is not a function",
                    span}};
    }
    const lang::FnItem& target =
        program_.functions[static_cast<std::size_t>(fn.fn_index)];
    if (static_type.is_fn_ptr() && !(target.fn_type() == static_type)) {
        throw UbException{Finding{
            is_become ? UbCategory::TailCall : UbCategory::FuncPointer,
            std::string(is_become ? "tail call" : "call") +
                " through a function pointer with the wrong signature: pointer says " +
                static_type.to_string() + " but '" + target.name + "' is " +
                target.fn_type().to_string(),
            span}};
    }
    return fn.fn_index;
}

miri::Value Vm::load_slot(std::int32_t slot_index, std::int32_t reg,
                          std::uint32_t name_idx, support::SourceSpan span) {
    const Frame& frame = frames_.back();
    const SlotState& slot =
        slots_[frame.slot_base + static_cast<std::uint32_t>(slot_index)];
    if (slot.alloc == kNoAlloc) {
        throw std::logic_error("eval_place: unresolved name '" +
                               name_at(name_idx) + "'");
    }
    if (reg >= 0) {
        return regs_[frame.reg_base + static_cast<std::uint32_t>(reg)];
    }
    return mem_.load(mem_.base_pointer(slot.alloc), *slot.type,
                     access_ctx(span));
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

#if RUSTBRAIN_VM_THREADED
#define VM_CASE(name) lbl_##name
#define VM_NEXT()                             \
    goto* kLabels[static_cast<std::size_t>(   \
        code[static_cast<std::size_t>(pc)].op)]
#else
#define VM_CASE(name) case Op::name
#define VM_NEXT() goto vm_top
#endif

#define VM_FETCH const Instr& in = code[static_cast<std::size_t>(pc)]

miri::Value Vm::dispatch(std::size_t frame_floor) {
    // The program counter lives in a local so the hot loop keeps it in a
    // register; it is synced with pc_ only around calls that re-enter
    // the dispatcher (enter_function sets pc_, Join saves/restores it).
    const Instr* const code = code_.code.data();
    std::int32_t pc = pc_;

#if RUSTBRAIN_VM_THREADED
    // One label per Op, in exact enum order (bytecode.hpp).
    static const void* const kLabels[] = {
        &&lbl_Step,        &&lbl_Jump,         &&lbl_JumpIfFalse,
        &&lbl_AndJump,     &&lbl_OrJump,       &&lbl_BoolNorm,
        &&lbl_Pop,         &&lbl_PushUnit,     &&lbl_PushInt,
        &&lbl_PushBool,    &&lbl_PushFn,       &&lbl_LoadLocal,
        &&lbl_LoadStatic,  &&lbl_ThrowUnresolved,
        &&lbl_PlaceLocal,  &&lbl_PlaceStatic,  &&lbl_PlaceUnresolved,
        &&lbl_AsPtr,       &&lbl_IndexPlace,   &&lbl_LoadThrough,
        &&lbl_StorePlace,  &&lbl_RetagRef,     &&lbl_DeclLocal,
        &&lbl_DeclParam,   &&lbl_DropArgs,     &&lbl_KillSlot,
        &&lbl_KillSlotTail,&&lbl_Neg,          &&lbl_NotBool,
        &&lbl_NotBits,     &&lbl_Binary,       &&lbl_Cast,
        &&lbl_MakeArray,   &&lbl_MakeRepeat,   &&lbl_CallDirect,
        &&lbl_CallLocalPtr,&&lbl_CallPtr,      &&lbl_TailCall,
        &&lbl_CallUnknown, &&lbl_Intrinsic,    &&lbl_Ret,
        &&lbl_Halt,        &&lbl_BinaryLocals, &&lbl_BinaryLocalImm,
        &&lbl_StoreLocal,  &&lbl_CompareBranch,&&lbl_StepN,
        &&lbl_BinaryAccImm,&&lbl_BinaryStackImm,&&lbl_LocalsBranch,
        &&lbl_LocalImmBranch,
    };
    static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                      static_cast<std::size_t>(Op::LocalImmBranch) + 1,
                  "label table must cover every Op");
    VM_NEXT();
#else
vm_top:
    switch (code[static_cast<std::size_t>(pc)].op) {
#endif

    VM_CASE(Step): {
        VM_FETCH;
        step(span_of(in));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(Jump): {
        VM_FETCH;
        pc = in.a;
        VM_NEXT();
    }
    VM_CASE(JumpIfFalse): {
        VM_FETCH;
        const bool taken = !stack_.back().as_bool();
        stack_.pop_back();
        pc = taken ? in.a : pc + 1;
        VM_NEXT();
    }
    VM_CASE(AndJump): {
        VM_FETCH;
        if (!stack_.back().as_bool()) {
            pc = in.a;
        } else {
            stack_.pop_back();
            ++pc;
        }
        VM_NEXT();
    }
    VM_CASE(OrJump): {
        VM_FETCH;
        if (stack_.back().as_bool()) {
            pc = in.a;
        } else {
            stack_.pop_back();
            ++pc;
        }
        VM_NEXT();
    }
    VM_CASE(BoolNorm): {
        stack_.back() = Value::boolean(stack_.back().as_bool());
        ++pc;
        VM_NEXT();
    }
    VM_CASE(Pop): {
        stack_.pop_back();
        ++pc;
        VM_NEXT();
    }

    VM_CASE(PushUnit): {
        stack_.push_back(Value::unit());
        ++pc;
        VM_NEXT();
    }
    VM_CASE(PushInt): {
        VM_FETCH;
        step(span_of(in));
        stack_.push_back(Value::scalar(in.imm));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(PushBool): {
        VM_FETCH;
        step(span_of(in));
        stack_.push_back(Value::boolean(in.a != 0));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(PushFn): {
        VM_FETCH;
        step(span_of(in));
        stack_.push_back(Value::function(FnPtrVal{in.a}));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(LoadLocal): {
        VM_FETCH;
        const support::SourceSpan& span = span_of(in);
        step(span);
        stack_.push_back(load_slot(in.a, static_cast<std::int32_t>(in.ex) - 1,
                                   in.aux, span));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(LoadStatic): {
        VM_FETCH;
        const support::SourceSpan& span = span_of(in);
        step(span);
        const AllocId alloc = static_slots_[static_cast<std::size_t>(in.a)];
        if (alloc != kNoAlloc) {
            stack_.push_back(mem_.load(mem_.base_pointer(alloc), type_of(in),
                                       access_ctx(span)));
        } else if (in.b >= 0) {
            // Forward reference during static setup: fall through to the
            // same-named function item, like the tree walk.
            stack_.push_back(Value::function(FnPtrVal{in.b}));
        } else {
            throw std::logic_error("unresolved name '" + name_of(in) + "'");
        }
        ++pc;
        VM_NEXT();
    }
    VM_CASE(ThrowUnresolved): {
        VM_FETCH;
        step(span_of(in));
        throw std::logic_error("unresolved name '" + name_of(in) + "'");
    }

    VM_CASE(PlaceLocal): {
        VM_FETCH;
        const SlotState& slot =
            slots_[frames_.back().slot_base + static_cast<std::uint32_t>(in.a)];
        if (slot.alloc == kNoAlloc) {
            throw std::logic_error("eval_place: unresolved name '" +
                                   name_of(in) + "'");
        }
        stack_.push_back(Value::pointer(mem_.base_pointer(slot.alloc)));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(PlaceStatic): {
        VM_FETCH;
        const AllocId alloc = static_slots_[static_cast<std::size_t>(in.a)];
        if (alloc == kNoAlloc) {
            throw std::logic_error("eval_place: unresolved name '" +
                                   name_of(in) + "'");
        }
        stack_.push_back(Value::pointer(mem_.base_pointer(alloc)));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(PlaceUnresolved): {
        VM_FETCH;
        throw std::logic_error("eval_place: unresolved name '" + name_of(in) +
                               "'");
    }
    VM_CASE(AsPtr): {
        (void)stack_.back().as_ptr();
        ++pc;
        VM_NEXT();
    }
    VM_CASE(IndexPlace): {
        VM_FETCH;
        const std::uint64_t i = stack_.back().bits();
        stack_.pop_back();
        Pointer element_ptr = stack_.back().as_ptr();
        stack_.pop_back();
        if (i >= in.imm) {
            panic("index out of bounds: the len is " + std::to_string(in.imm) +
                      " but the index is " + std::to_string(i),
                  span_of(in));
        }
        element_ptr.addr += i * static_cast<std::uint64_t>(in.a);
        stack_.push_back(Value::pointer(element_ptr));
        ++pc;
        VM_NEXT();
    }

    VM_CASE(LoadThrough): {
        VM_FETCH;
        const Pointer p = stack_.back().as_ptr();
        stack_.pop_back();
        stack_.push_back(mem_.load(p, type_of(in), access_ctx(span_of(in))));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(StorePlace): {
        VM_FETCH;
        const Pointer p = stack_.back().as_ptr();
        stack_.pop_back();
        mem_.store(p, type_of(in), stack_.back(), access_ctx(span_of(in)));
        stack_.pop_back();
        ++pc;
        VM_NEXT();
    }
    VM_CASE(RetagRef): {
        VM_FETCH;
        const Pointer p = stack_.back().as_ptr();
        stack_.pop_back();
        stack_.push_back(Value::pointer(
            mem_.retag_ref(p, in.imm, in.a != 0, span_of(in))));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(DeclLocal): {
        VM_FETCH;
        const Type& type = type_of(in);
        const support::SourceSpan& span = span_of(in);
        if (in.ex == 0) {
            const AllocId alloc =
                mem_.allocate(type.size_bytes(), type.align_bytes(),
                              AllocKind::Stack, name_of(in), span);
            mem_.store(mem_.base_pointer(alloc), type, stack_.back(),
                       access_ctx(span));
            stack_.pop_back();
            slots_[frames_.back().slot_base +
                   static_cast<std::uint32_t>(in.a)] = {alloc, &type};
        } else {
            // Register-promoted local: identical allocation bookkeeping
            // (the address/id/tag streams are observable), value kept in
            // the frame's register window instead of memory.
            const AllocId alloc =
                mem_.allocate_shadow(type.size_bytes(), type.align_bytes(),
                                     AllocKind::Stack, name_of(in), span);
            regs_[frames_.back().reg_base + (in.ex - 1u)] =
                reg_normalize(stack_.back(), type);
            stack_.pop_back();
            slots_[frames_.back().slot_base +
                   static_cast<std::uint32_t>(in.a)] = {alloc, &type};
        }
        ++pc;
        VM_NEXT();
    }
    VM_CASE(DeclParam): {
        VM_FETCH;
        const Type& type = type_of(in);
        const support::SourceSpan& span = span_of(in);
        const Frame& frame = frames_.back();
        const Value value =
            static_cast<std::uint32_t>(in.b) < frame.nargs
                ? stack_[frame.args_base + static_cast<std::uint32_t>(in.b)]
                : Value::unit();
        if (in.ex == 0) {
            const AllocId alloc =
                mem_.allocate(type.size_bytes(), type.align_bytes(),
                              AllocKind::Stack, name_of(in), span);
            mem_.store(mem_.base_pointer(alloc), type, value,
                       access_ctx(span));
            slots_[frame.slot_base + static_cast<std::uint32_t>(in.a)] = {
                alloc, &type};
        } else {
            const AllocId alloc =
                mem_.allocate_shadow(type.size_bytes(), type.align_bytes(),
                                     AllocKind::Stack, name_of(in), span);
            regs_[frame.reg_base + (in.ex - 1u)] = reg_normalize(value, type);
            slots_[frame.slot_base + static_cast<std::uint32_t>(in.a)] = {
                alloc, &type};
        }
        ++pc;
        VM_NEXT();
    }
    VM_CASE(DropArgs): {
        stack_.resize(frames_.back().args_base);
        ++pc;
        VM_NEXT();
    }
    VM_CASE(KillSlot): {
        VM_FETCH;
        SlotState& slot =
            slots_[frames_.back().slot_base + static_cast<std::uint32_t>(in.a)];
        if (slot.alloc != kNoAlloc) {
            mem_.kill(slot.alloc);
            slot = {};
        }
        ++pc;
        VM_NEXT();
    }
    VM_CASE(KillSlotTail): {
        VM_FETCH;
        SlotState& slot =
            slots_[frames_.back().slot_base + static_cast<std::uint32_t>(in.a)];
        if (slot.alloc != kNoAlloc) {
            mem_.kill_for_tail_call(slot.alloc);
            slot = {};
        }
        ++pc;
        VM_NEXT();
    }

    VM_CASE(Neg): {
        VM_FETCH;
        const Value operand = stack_.back();
        stack_.pop_back();
        const Type& operand_type = operand_type_of(in);
        const Type& result_type = type_of(in);
        const std::int64_t value = signed_value(operand, operand_type);
        const std::uint64_t size = result_type.size_bytes();
        const std::int64_t min_value =
            size >= 8 ? std::numeric_limits<std::int64_t>::min()
                      : -(1LL << (size * 8 - 1));
        if (value == min_value) {
            panic("attempt to negate with overflow", span_of(in));
        }
        stack_.push_back(
            arith_result(static_cast<std::uint64_t>(-value), result_type));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(NotBool): {
        stack_.back() = Value::boolean(!stack_.back().as_bool());
        ++pc;
        VM_NEXT();
    }
    VM_CASE(NotBits): {
        VM_FETCH;
        stack_.back() = arith_result(~stack_.back().bits(), type_of(in));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(Binary): {
        VM_FETCH;
        const Value rhs = std::move(stack_.back());
        stack_.pop_back();
        Value& top = stack_.back();  // lhs, combined in place
        top = eval_binary(static_cast<lang::BinaryOp>(in.a), type_of(in),
                          operand_type_of(in), span_of(in), top, rhs);
        ++pc;
        VM_NEXT();
    }
    VM_CASE(Cast): {
        VM_FETCH;
        const Value operand = std::move(stack_.back());
        stack_.pop_back();
        stack_.push_back(eval_cast(in, operand));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(MakeArray): {
        VM_FETCH;
        const std::size_t n = static_cast<std::size_t>(in.a);
        std::vector<Value> elements(
            stack_.end() - static_cast<std::ptrdiff_t>(n), stack_.end());
        stack_.resize(stack_.size() - n);
        stack_.push_back(Value::array(std::move(elements)));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(MakeRepeat): {
        VM_FETCH;
        const Value element = stack_.back();
        stack_.pop_back();
        stack_.push_back(Value::array(
            std::vector<Value>(static_cast<std::size_t>(in.imm), element)));
        ++pc;
        VM_NEXT();
    }

    VM_CASE(CallDirect): {
        VM_FETCH;
        enter_function(in.a, static_cast<std::uint32_t>(in.b), pc + 1,
                       span_of(in));
        pc = pc_;
        VM_NEXT();
    }
    VM_CASE(CallLocalPtr): {
        VM_FETCH;
        const support::SourceSpan& span = span_of(in);
        const SlotState& slot =
            slots_[frames_.back().slot_base + static_cast<std::uint32_t>(in.a)];
        if (slot.alloc == kNoAlloc) {
            throw std::logic_error("call to unknown function '" + name_of(in) +
                                   "'");
        }
        const Value callee = mem_.load(mem_.base_pointer(slot.alloc),
                                       *slot.type, access_ctx(span));
        const std::int32_t target = resolve_fn_target(
            callee.as_fn(), *slot.type, span, /*is_become=*/false);
        enter_function(target, static_cast<std::uint32_t>(in.b), pc + 1, span);
        pc = pc_;
        VM_NEXT();
    }
    VM_CASE(CallPtr): {
        VM_FETCH;
        const support::SourceSpan& span = span_of(in);
        const std::size_t callee_at =
            stack_.size() - static_cast<std::size_t>(in.b) - 1;
        const std::int32_t target = resolve_fn_target(
            stack_[callee_at].as_fn(), type_of(in), span, /*is_become=*/false);
        stack_.erase(stack_.begin() + static_cast<std::ptrdiff_t>(callee_at));
        enter_function(target, static_cast<std::uint32_t>(in.b), pc + 1, span);
        pc = pc_;
        VM_NEXT();
    }
    VM_CASE(TailCall): {
        VM_FETCH;
        const std::size_t callee_at =
            stack_.size() - static_cast<std::size_t>(in.b) - 1;
        const std::int32_t target =
            resolve_fn_target(stack_[callee_at].as_fn(), type_of(in),
                              span_of(in), /*is_become=*/true);
        stack_.erase(stack_.begin() + static_cast<std::ptrdiff_t>(callee_at));
        // Reuse the frame in place: resize the slot and register windows
        // for the target, keep ret_pc, leave call_depth_ untouched.
        Frame& frame = frames_.back();
        const VmFunction& fn = code_.functions[static_cast<std::size_t>(target)];
        slots_.resize(frame.slot_base);
        slots_.resize(frame.slot_base + fn.slot_count);
        regs_.resize(frame.reg_base);
        regs_.resize(frame.reg_base + fn.reg_count);
        frame.fn = target;
        frame.nargs = static_cast<std::uint32_t>(in.b);
        frame.args_base =
            static_cast<std::uint32_t>(stack_.size() - frame.nargs);
        pc = fn.entry;
        VM_NEXT();
    }
    VM_CASE(CallUnknown): {
        VM_FETCH;
        throw std::logic_error("call to unknown function '" + name_of(in) +
                               "'");
    }
    VM_CASE(Intrinsic): {
        VM_FETCH;
        pc_ = pc;
        do_intrinsic(in);
        pc = pc_;
        ++pc;
        VM_NEXT();
    }

    VM_CASE(Ret): {
        const Frame frame = frames_.back();
        frames_.pop_back();
        slots_.resize(frame.slot_base);
        regs_.resize(frame.reg_base);
        --call_depth_;
        if (frames_.size() == frame_floor) {
            Value result = std::move(stack_.back());
            stack_.pop_back();
            return result;
        }
        pc = frame.ret_pc;
        VM_NEXT();
    }
    VM_CASE(Halt): {
        Value result = std::move(stack_.back());
        stack_.pop_back();
        return result;
    }

    // -- superinstructions (vm::optimize) -------------------------------

    VM_CASE(BinaryLocals): {
        VM_FETCH;
        const FusedDetail& d = code_.fused[static_cast<std::size_t>(in.imm)];
        step2(code_.spans[d.step_span], code_.spans[d.lhs_span]);
        const Value lhs =
            load_slot(in.a, d.lhs_reg, d.lhs_name, code_.spans[d.lhs_span]);
        step(code_.spans[d.rhs_span]);
        const Value rhs =
            load_slot(in.b, d.rhs_reg, d.rhs_name, code_.spans[d.rhs_span]);
        stack_.push_back(eval_binary(static_cast<lang::BinaryOp>(in.small),
                                     type_of(in), operand_type_of(in),
                                     span_of(in), lhs, rhs));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(BinaryLocalImm): {
        VM_FETCH;
        const FusedDetail& d = code_.fused[static_cast<std::size_t>(in.b)];
        step2(code_.spans[d.step_span], code_.spans[d.lhs_span]);
        const Value lhs =
            load_slot(in.a, d.lhs_reg, d.lhs_name, code_.spans[d.lhs_span]);
        step(code_.spans[d.rhs_span]);  // the folded PushInt's step
        stack_.push_back(eval_binary(static_cast<lang::BinaryOp>(in.small),
                                     type_of(in), operand_type_of(in),
                                     span_of(in), lhs, Value::scalar(in.imm)));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(StoreLocal): {
        VM_FETCH;
        const Frame& frame = frames_.back();
        const SlotState& slot =
            slots_[frame.slot_base + static_cast<std::uint32_t>(in.a)];
        if (slot.alloc == kNoAlloc) {
            throw std::logic_error("eval_place: unresolved name '" +
                                   name_of(in) + "'");
        }
        if (in.ex != 0) {
            regs_[frame.reg_base + (in.ex - 1u)] =
                reg_normalize(stack_.back(), type_of(in));
        } else {
            mem_.store(mem_.base_pointer(slot.alloc), type_of(in),
                       stack_.back(), access_ctx(span_of(in)));
        }
        stack_.pop_back();
        ++pc;
        VM_NEXT();
    }
    VM_CASE(CompareBranch): {
        VM_FETCH;
        const Value rhs = std::move(stack_.back());
        stack_.pop_back();
        const Value lhs = std::move(stack_.back());
        stack_.pop_back();
        const Value cond = eval_binary(static_cast<lang::BinaryOp>(in.small),
                                       type_of(in), operand_type_of(in),
                                       span_of(in), lhs, rhs);
        pc = cond.as_bool() ? pc + 1 : in.a;
        VM_NEXT();
    }
    VM_CASE(StepN): {
        VM_FETCH;
        const std::uint64_t n = static_cast<std::uint64_t>(in.a);
        if (steps_ + n <= limits_.max_steps) {
            // Bulk fast path: nothing between consecutive Steps can throw,
            // so only the final count is observable.
            steps_ += n;
        } else {
            // Near the limit: replay one by one so the panic reports the
            // exact step's span the unfused program would.
            for (std::uint64_t i = 0; i < n; ++i) {
                step(code_.spans[code_.step_runs[
                    static_cast<std::size_t>(in.b) + i]]);
            }
        }
        ++pc;
        VM_NEXT();
    }
    VM_CASE(BinaryAccImm): {
        VM_FETCH;
        const FusedDetail& d = code_.fused[static_cast<std::size_t>(in.b)];
        step2(code_.spans[d.step_span], code_.spans[d.lhs_span]);
        const Value local =
            load_slot(in.a, d.lhs_reg, d.lhs_name, code_.spans[d.lhs_span]);
        step(code_.spans[d.rhs_span]);  // the folded PushInt's step
        const Value inner = eval_binary(static_cast<lang::BinaryOp>(in.small),
                                        type_of(in), operand_type_of(in),
                                        span_of(in), local,
                                        Value::scalar(in.imm));
        Value& top = stack_.back();  // outer lhs, combined in place
        top = eval_binary(
            static_cast<lang::BinaryOp>(d.outer_op), *code_.types[d.outer_type],
            *static_cast<const lang::Type*>(code_.auxes[d.outer_aux]),
            code_.spans[d.outer_span], top, inner);
        ++pc;
        VM_NEXT();
    }
    VM_CASE(BinaryStackImm): {
        VM_FETCH;
        step(code_.spans[static_cast<std::uint32_t>(in.a)]);  // PushInt's step
        Value& top = stack_.back();  // lhs, combined in place
        top = eval_binary(static_cast<lang::BinaryOp>(in.small), type_of(in),
                          operand_type_of(in), span_of(in), top,
                          Value::scalar(in.imm));
        ++pc;
        VM_NEXT();
    }
    VM_CASE(LocalsBranch): {
        VM_FETCH;
        const FusedDetail& d = code_.fused[static_cast<std::size_t>(in.imm)];
        step2(code_.spans[d.step_span], code_.spans[d.lhs_span]);
        const Value lhs =
            load_slot(in.a, d.lhs_reg, d.lhs_name, code_.spans[d.lhs_span]);
        step(code_.spans[d.rhs_span]);
        const Value rhs =
            load_slot(in.b, d.rhs_reg, d.rhs_name, code_.spans[d.rhs_span]);
        const Value cond = eval_binary(static_cast<lang::BinaryOp>(in.small),
                                       type_of(in), operand_type_of(in),
                                       span_of(in), lhs, rhs);
        pc = cond.as_bool() ? pc + 1 : d.branch_target;
        VM_NEXT();
    }
    VM_CASE(LocalImmBranch): {
        VM_FETCH;
        const FusedDetail& d = code_.fused[static_cast<std::size_t>(in.b)];
        step2(code_.spans[d.step_span], code_.spans[d.lhs_span]);
        const Value lhs =
            load_slot(in.a, d.lhs_reg, d.lhs_name, code_.spans[d.lhs_span]);
        step(code_.spans[d.rhs_span]);  // the folded PushInt's step
        const Value cond = eval_binary(static_cast<lang::BinaryOp>(in.small),
                                       type_of(in), operand_type_of(in),
                                       span_of(in), lhs, Value::scalar(in.imm));
        pc = cond.as_bool() ? pc + 1 : d.branch_target;
        VM_NEXT();
    }

#if !RUSTBRAIN_VM_THREADED
    }
#endif
    throw std::logic_error("vm dispatch: fell out of the opcode table");
}

#undef VM_CASE
#undef VM_NEXT
#undef VM_FETCH

// ---------------------------------------------------------------------------
// Binary / cast helpers (ports of eval_binary / eval_cast)
// ---------------------------------------------------------------------------

miri::Value Vm::eval_binary(lang::BinaryOp op, const Type& result_type,
                            const Type& operand_type, support::SourceSpan span,
                            const Value& lhs, const Value& rhs) {
    using lang::BinaryOp;
    const std::uint64_t size = operand_type.size_bytes();
    const bool is_signed = operand_type.is_signed_integer();

    auto check_overflow = [&](std::int64_t wide, const char* op_name) {
        if (size >= 8) return;
        if (is_signed) {
            const std::int64_t min_value = -(1LL << (size * 8 - 1));
            const std::int64_t max_value = (1LL << (size * 8 - 1)) - 1;
            if (wide < min_value || wide > max_value) {
                panic(std::string("attempt to ") + op_name + " with overflow",
                      span);
            }
        } else {
            const std::uint64_t max_value = (1ULL << (size * 8)) - 1;
            if (static_cast<std::uint64_t>(wide) > max_value || wide < 0) {
                panic(std::string("attempt to ") + op_name + " with overflow",
                      span);
            }
        }
    };

    switch (op) {
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul: {
            const char* name = op == BinaryOp::Add   ? "add"
                               : op == BinaryOp::Sub ? "subtract"
                                                     : "multiply";
            if (size >= 8) {
                if (is_signed) {
                    const std::int64_t a = signed_value(lhs, operand_type);
                    const std::int64_t b = signed_value(rhs, operand_type);
                    std::int64_t out = 0;
                    bool overflow = false;
                    if (op == BinaryOp::Add) {
                        overflow = __builtin_add_overflow(a, b, &out);
                    } else if (op == BinaryOp::Sub) {
                        overflow = __builtin_sub_overflow(a, b, &out);
                    } else {
                        overflow = __builtin_mul_overflow(a, b, &out);
                    }
                    if (overflow) {
                        panic(std::string("attempt to ") + name +
                                  " with overflow",
                              span);
                    }
                    return arith_result(static_cast<std::uint64_t>(out),
                                        result_type);
                }
                const std::uint64_t a = lhs.bits();
                const std::uint64_t b = rhs.bits();
                std::uint64_t out = 0;
                bool overflow = false;
                if (op == BinaryOp::Add) {
                    overflow = __builtin_add_overflow(a, b, &out);
                } else if (op == BinaryOp::Sub) {
                    overflow = __builtin_sub_overflow(a, b, &out);
                } else {
                    overflow = __builtin_mul_overflow(a, b, &out);
                }
                if (overflow) {
                    panic(std::string("attempt to ") + name + " with overflow",
                          span);
                }
                return arith_result(out, result_type);
            }
            const std::int64_t a = is_signed
                                       ? signed_value(lhs, operand_type)
                                       : static_cast<std::int64_t>(lhs.bits());
            const std::int64_t b = is_signed
                                       ? signed_value(rhs, operand_type)
                                       : static_cast<std::int64_t>(rhs.bits());
            std::int64_t wide = 0;
            if (op == BinaryOp::Add) wide = a + b;
            if (op == BinaryOp::Sub) wide = a - b;
            if (op == BinaryOp::Mul) wide = a * b;
            check_overflow(wide, name);
            return arith_result(static_cast<std::uint64_t>(wide), result_type);
        }
        case BinaryOp::Div:
        case BinaryOp::Rem: {
            const bool is_div = op == BinaryOp::Div;
            if (rhs.bits() == 0) {
                panic(is_div ? "attempt to divide by zero"
                             : "attempt to calculate the remainder with a divisor of zero",
                      span);
            }
            if (is_signed) {
                const std::int64_t a = signed_value(lhs, operand_type);
                const std::int64_t b = signed_value(rhs, operand_type);
                const std::int64_t min_value =
                    size >= 8 ? std::numeric_limits<std::int64_t>::min()
                              : -(1LL << (size * 8 - 1));
                if (a == min_value && b == -1) {
                    panic(is_div ? "attempt to divide with overflow"
                                 : "attempt to calculate the remainder with overflow",
                          span);
                }
                const std::int64_t out = is_div ? a / b : a % b;
                return arith_result(static_cast<std::uint64_t>(out),
                                    result_type);
            }
            const std::uint64_t out =
                is_div ? lhs.bits() / rhs.bits() : lhs.bits() % rhs.bits();
            return arith_result(out, result_type);
        }
        case BinaryOp::Shl:
        case BinaryOp::Shr: {
            const std::uint64_t shift = rhs.bits();
            if (shift >= size * 8) {
                panic(op == BinaryOp::Shl
                          ? "attempt to shift left with overflow"
                          : "attempt to shift right with overflow",
                      span);
            }
            if (op == BinaryOp::Shl) {
                return arith_result(lhs.bits() << shift, result_type);
            }
            if (is_signed) {
                return arith_result(static_cast<std::uint64_t>(
                                        signed_value(lhs, operand_type) >>
                                        static_cast<std::int64_t>(shift)),
                                    result_type);
            }
            return arith_result(lhs.bits() >> shift, result_type);
        }
        case BinaryOp::BitAnd:
            return arith_result(lhs.bits() & rhs.bits(), result_type);
        case BinaryOp::BitOr:
            return arith_result(lhs.bits() | rhs.bits(), result_type);
        case BinaryOp::BitXor:
            return arith_result(lhs.bits() ^ rhs.bits(), result_type);
        case BinaryOp::Eq:
            return Value::boolean(lhs.bits() == rhs.bits());
        case BinaryOp::Ne:
            return Value::boolean(lhs.bits() != rhs.bits());
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge: {
            bool result = false;
            if (is_signed) {
                const std::int64_t a = signed_value(lhs, operand_type);
                const std::int64_t b = signed_value(rhs, operand_type);
                result = op == BinaryOp::Lt   ? a < b
                         : op == BinaryOp::Le ? a <= b
                         : op == BinaryOp::Gt ? a > b
                                              : a >= b;
            } else {
                const std::uint64_t a = lhs.bits();
                const std::uint64_t b = rhs.bits();
                result = op == BinaryOp::Lt   ? a < b
                         : op == BinaryOp::Le ? a <= b
                         : op == BinaryOp::Gt ? a > b
                                              : a >= b;
            }
            return Value::boolean(result);
        }
        case BinaryOp::And:
        case BinaryOp::Or:
            break;  // compiled to AndJump/OrJump, never reach here
    }
    return Value::unit();
}

miri::Value Vm::eval_cast(const Instr& in, const Value& operand) {
    switch (static_cast<CastKind>(in.a)) {
        case CastKind::IntFromInt: {
            const std::uint64_t wide =
                in.b != 0 ? static_cast<std::uint64_t>(operand.as_signed(
                                static_cast<std::uint64_t>(in.small)))
                          : operand.bits();
            return arith_result(wide, type_of(in));
        }
        case CastKind::IntToRawPtr:
            return Value::pointer(Pointer{operand.bits(), kNoAlloc, kNoTag});
        case CastKind::PtrToInt:
            return arith_result(operand.bits(), type_of(in));
        case CastKind::RefToRaw:
            return Value::pointer(mem_.retag_raw(operand.as_ptr(), in.imm,
                                                 in.small != 0, span_of(in)));
        case CastKind::FnToInt:
            return arith_result(operand.bits(), type_of(in));
        case CastKind::IntToFn:
            return Value::function(FnPtrVal{miri::fn_addr_to_index(
                operand.bits(), program_.functions.size())});
        case CastKind::Unsupported:
            break;
    }
    throw std::logic_error(name_of(in));
}

// ---------------------------------------------------------------------------
// Intrinsics (port of eval_intrinsic; arguments are already on the stack)
// ---------------------------------------------------------------------------

void Vm::do_intrinsic(const Instr& in) {
    const std::size_t nargs = static_cast<std::size_t>(in.b);
    std::vector<Value> args(stack_.end() - static_cast<std::ptrdiff_t>(nargs),
                            stack_.end());
    stack_.resize(stack_.size() - nargs);
    auto arg_bits = [&](std::size_t i) {
        return i < args.size() ? args[i].bits() : 0;
    };
    const support::SourceSpan span = span_of(in);

    switch (static_cast<IntrinsicId>(in.a)) {
        case IntrinsicId::Alloc: {
            const std::uint64_t size = arg_bits(0);
            const std::uint64_t align = arg_bits(1);
            const AllocId id =
                mem_.allocate(size, align, AllocKind::Heap, "heap", span);
            stack_.push_back(Value::pointer(mem_.base_pointer(id)));
            return;
        }
        case IntrinsicId::Dealloc:
            mem_.deallocate(args[0].as_ptr(), arg_bits(1), arg_bits(2), span);
            stack_.push_back(Value::unit());
            return;
        case IntrinsicId::Offset: {
            const Pointer p = args[0].as_ptr();
            const std::int64_t count =
                args[1].as_signed(static_cast<std::uint64_t>(in.small));
            const std::int64_t element_size = static_cast<std::int64_t>(in.imm);
            stack_.push_back(Value::pointer(
                mem_.offset_pointer(p, count * element_size, span)));
            return;
        }
        case IntrinsicId::PrintInt:
            if (in.small != 0) {
                output_.push_back(std::to_string(args[0].as_signed(in.imm)));
            } else {
                output_.push_back(std::to_string(args[0].bits()));
            }
            stack_.push_back(Value::unit());
            return;
        case IntrinsicId::PrintBool:
            output_.push_back(args[0].as_bool() ? "true" : "false");
            stack_.push_back(Value::unit());
            return;
        case IntrinsicId::Input: {
            const std::uint64_t index = arg_bits(0);
            const std::int64_t value =
                index < inputs_.size() ? inputs_[index] : 0;
            stack_.push_back(
                Value::scalar(static_cast<std::uint64_t>(value)));
            return;
        }
        case IntrinsicId::Assert:
            if (!args[0].as_bool()) {
                panic("assertion failed", span);
            }
            stack_.push_back(Value::unit());
            return;
        case IntrinsicId::Panic:
            panic("explicit panic", span);
        case IntrinsicId::Spawn: {
            multithreaded_ = true;
            ThreadState thread;
            thread.id = static_cast<miri::ThreadId>(threads_.size() + 1);
            thread.entry_fn = args[0].as_fn().fn_index;
            thread.vc = current_vc();
            thread.vc.increment(thread.id);
            current_vc().increment(current_thread_);
            threads_.push_back(std::move(thread));
            stack_.push_back(Value::scalar(threads_.size()));
            return;
        }
        case IntrinsicId::Join: {
            const std::uint64_t handle = arg_bits(0);
            if (handle == 0 || handle > threads_.size()) {
                throw UbException{Finding{UbCategory::Concurrency,
                                          "joining an invalid thread handle",
                                          span}};
            }
            ThreadState& thread = threads_[handle - 1];
            if (thread.joined) {
                throw UbException{
                    Finding{UbCategory::Concurrency,
                            "joining a thread that was already joined", span}};
            }
            if (!thread.executed) {
                const std::int32_t saved_pc = pc_;
                run_thread(thread, span);
                pc_ = saved_pc;
            }
            thread.joined = true;
            current_vc().merge(thread.vc);
            current_vc().increment(current_thread_);
            stack_.push_back(Value::unit());
            return;
        }
        case IntrinsicId::MutexNew:
            mutexes_.emplace_back();
            stack_.push_back(Value::scalar(mutexes_.size()));
            return;
        case IntrinsicId::MutexLock:
        case IntrinsicId::MutexUnlock: {
            const std::uint64_t handle = arg_bits(0);
            if (handle == 0 || handle > mutexes_.size()) {
                throw UbException{Finding{UbCategory::Concurrency,
                                          "invalid mutex handle", span}};
            }
            MutexState& mutex = mutexes_[handle - 1];
            if (static_cast<IntrinsicId>(in.a) == IntrinsicId::MutexLock) {
                if (mutex.held_by.has_value()) {
                    throw UbException{Finding{
                        UbCategory::Concurrency,
                        *mutex.held_by == current_thread_
                            ? "deadlock: thread re-locking a mutex it already holds"
                            : "deadlock: locking a mutex held by a finished thread",
                        span}};
                }
                mutex.held_by = current_thread_;
                current_vc().merge(mutex.vc);  // acquire
            } else {
                if (!mutex.held_by.has_value() ||
                    *mutex.held_by != current_thread_) {
                    throw UbException{
                        Finding{UbCategory::Concurrency,
                                "unlocking a mutex not held by this thread",
                                span}};
                }
                mutex.held_by.reset();
                mutex.vc.merge(current_vc());  // release
                current_vc().increment(current_thread_);
            }
            stack_.push_back(Value::unit());
            return;
        }
        case IntrinsicId::AtomicLoad:
        case IntrinsicId::AtomicStore:
        case IntrinsicId::AtomicFetchAdd: {
            const Pointer p = args[0].as_ptr();
            const Type i64_type = Type::i64();
            const IntrinsicId id = static_cast<IntrinsicId>(in.a);
            const bool is_load = id == IntrinsicId::AtomicLoad;
            const bool is_rmw = id == IntrinsicId::AtomicFetchAdd;
            const std::pair<AllocId, std::uint64_t> key{p.alloc, p.addr};
            VectorClock& loc_vc = atomic_vcs_[key];
            current_vc().merge(loc_vc);  // acquire
            Value result = Value::unit();
            if (is_load) {
                result =
                    mem_.load(p, i64_type, access_ctx(span, /*atomic=*/true));
            } else if (is_rmw) {
                const Value old =
                    mem_.load(p, i64_type, access_ctx(span, /*atomic=*/true));
                const std::uint64_t updated = old.bits() + args[1].bits();
                mem_.store(p, i64_type, Value::scalar(updated),
                           access_ctx(span, /*atomic=*/true));
                result = old;
            } else {
                mem_.store(p, i64_type, args[1],
                           access_ctx(span, /*atomic=*/true));
            }
            if (!is_load) {
                loc_vc.merge(current_vc());  // release
                current_vc().increment(current_thread_);
            }
            stack_.push_back(result);
            return;
        }
        case IntrinsicId::Unknown:
            break;
    }
    throw std::logic_error("unhandled intrinsic '" + name_of(in) + "'");
}

}  // namespace rustbrain::vm
