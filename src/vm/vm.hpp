// Bytecode VM for MiriLite — the third interpreter tier.
//
// Executes a vm::VmProgram over an explicit value stack and dense activation
// records: one contiguous SlotState vector shared by every live frame, each
// frame owning a [slot_base, slot_base + slot_count) window plus a base
// pointer into the value stack for its arguments. `become` reuses the top
// frame in place (resize the slot window, keep the return pc), so tail-call
// chains use O(1) native stack and never grow call_depth_, exactly like the
// tree walk's trampoline.
//
// The VM reuses miri::MemoryModel, the vector-clock race detector, and the
// thread/mutex/atomic bookkeeping verbatim, and enforces InterpLimits at the
// same program points, so RunResults are byte-identical to miri::Interpreter
// — findings, messages, spans, outputs, and step counts. The three-way
// equivalence is asserted corpus-wide by tests/miri_vm_test.cpp and the
// differential stress tests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "miri/interp.hpp"
#include "miri/memory.hpp"
#include "miri/value.hpp"
#include "vm/bytecode.hpp"

namespace rustbrain::vm {

class Vm {
  public:
    /// `program` must be the exact tree `code` was compiled from (same
    /// pairing contract as LoweredProgram).
    Vm(const lang::Program& program, const VmProgram& code,
       std::vector<std::int64_t> inputs, miri::InterpLimits limits = {});

    /// Execute main (and all joined threads); UB and panics come back as
    /// RunResult::finding, identical to miri::Interpreter::run().
    miri::RunResult run();

  private:
    struct SlotState {
        miri::AllocId alloc = miri::kNoAlloc;
        const lang::Type* type = nullptr;
    };

    struct Frame {
        std::int32_t fn = -1;
        std::int32_t ret_pc = -1;        // -1: returns to native caller
        std::uint32_t args_base = 0;     // value-stack index of arg 0
        std::uint32_t nargs = 0;
        std::uint32_t slot_base = 0;     // window start in slots_
    };

    struct ThreadState {
        miri::ThreadId id = 0;
        std::int32_t entry_fn = -1;
        miri::VectorClock vc;
        bool executed = false;
        bool joined = false;
    };

    struct MutexState {
        std::optional<miri::ThreadId> held_by;
        miri::VectorClock vc;
    };

    void setup_statics();
    miri::Value run_function(std::int32_t fn_index, support::SourceSpan span);
    miri::Value dispatch(std::size_t frame_floor);
    void enter_function(std::int32_t fn_index, std::uint32_t nargs,
                        std::int32_t ret_pc, support::SourceSpan span);
    void do_intrinsic(const Instr& in);
    void run_thread(ThreadState& thread, support::SourceSpan span);
    std::int32_t resolve_fn_target(const miri::FnPtrVal& fn,
                                   const lang::Type& static_type,
                                   support::SourceSpan span,
                                   bool is_become) const;
    miri::Value eval_binary(const Instr& in, const miri::Value& lhs,
                            const miri::Value& rhs);
    miri::Value eval_cast(const Instr& in, const miri::Value& operand);

    void step(const support::SourceSpan& span);
    [[noreturn]] void panic(std::string message, support::SourceSpan span) const;
    [[nodiscard]] miri::AccessCtx access_ctx(support::SourceSpan span,
                                             bool atomic = false) const;
    miri::VectorClock& current_vc();

    const lang::Program& program_;
    const VmProgram& code_;
    std::vector<std::int64_t> inputs_;
    miri::InterpLimits limits_;

    miri::MemoryModel mem_;
    std::vector<miri::Value> stack_;
    std::vector<SlotState> slots_;
    std::vector<Frame> frames_;
    std::vector<miri::AllocId> static_slots_;
    std::int32_t pc_ = 0;

    miri::ThreadId current_thread_ = 0;
    std::vector<ThreadState> threads_;
    miri::VectorClock main_vc_;
    std::vector<MutexState> mutexes_;
    std::map<std::pair<miri::AllocId, std::uint64_t>, miri::VectorClock>
        atomic_vcs_;
    bool multithreaded_ = false;

    std::vector<std::string> output_;
    std::uint64_t steps_ = 0;
    std::uint32_t call_depth_ = 0;
};

}  // namespace rustbrain::vm
