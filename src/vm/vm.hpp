// Bytecode VM for MiriLite — the third interpreter tier.
//
// Executes a vm::VmProgram over an explicit value stack and dense activation
// records: one contiguous SlotState vector shared by every live frame, each
// frame owning a [slot_base, slot_base + slot_count) window plus a base
// pointer into the value stack for its arguments. `become` reuses the top
// frame in place (resize the slot window, keep the return pc), so tail-call
// chains use O(1) native stack and never grow call_depth_, exactly like the
// tree walk's trampoline.
//
// The same Vm runs both plain programs (straight from vm::compile) and
// optimized ones (vm::optimize): superinstructions and register-promoted
// locals are just additional opcodes / a per-frame register window that
// plain programs never use. Dispatch is computed-goto (labels as values)
// on GCC/Clang; define RUSTBRAIN_VM_SWITCH_DISPATCH to force the portable
// switch loop.
//
// The VM reuses miri::MemoryModel, the vector-clock race detector, and the
// thread/mutex/atomic bookkeeping verbatim, and enforces InterpLimits at the
// same program points, so RunResults are byte-identical to miri::Interpreter
// — findings, messages, spans, outputs, and step counts. The four-way
// equivalence (tree / slot / vm / vm-optimized) is asserted corpus-wide by
// tests/miri_vm_test.cpp and the differential stress tests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "miri/interp.hpp"
#include "miri/memory.hpp"
#include "miri/value.hpp"
#include "vm/bytecode.hpp"

namespace rustbrain::vm {

class Vm {
  public:
    /// `program` must be the exact tree `code` was compiled from (same
    /// pairing contract as LoweredProgram).
    Vm(const lang::Program& program, const VmProgram& code,
       std::vector<std::int64_t> inputs, miri::InterpLimits limits = {});

    /// Execute main (and all joined threads); UB and panics come back as
    /// RunResult::finding, identical to miri::Interpreter::run().
    miri::RunResult run();

  private:
    struct SlotState {
        miri::AllocId alloc = miri::kNoAlloc;
        const lang::Type* type = nullptr;
    };

    struct Frame {
        std::int32_t fn = -1;
        std::int32_t ret_pc = -1;        // -1: returns to native caller
        std::uint32_t args_base = 0;     // value-stack index of arg 0
        std::uint32_t nargs = 0;
        std::uint32_t slot_base = 0;     // window start in slots_
        std::uint32_t reg_base = 0;      // window start in regs_
    };

    struct ThreadState {
        miri::ThreadId id = 0;
        std::int32_t entry_fn = -1;
        miri::VectorClock vc;
        bool executed = false;
        bool joined = false;
    };

    struct MutexState {
        std::optional<miri::ThreadId> held_by;
        miri::VectorClock vc;
    };

    void setup_statics();
    miri::Value run_function(std::int32_t fn_index, support::SourceSpan span);
    miri::Value dispatch(std::size_t frame_floor);
    void enter_function(std::int32_t fn_index, std::uint32_t nargs,
                        std::int32_t ret_pc, support::SourceSpan span);
    void do_intrinsic(const Instr& in);
    void run_thread(ThreadState& thread, support::SourceSpan span);
    std::int32_t resolve_fn_target(const miri::FnPtrVal& fn,
                                   const lang::Type& static_type,
                                   support::SourceSpan span,
                                   bool is_become) const;
    miri::Value eval_binary(lang::BinaryOp op, const lang::Type& result_type,
                            const lang::Type& operand_type,
                            support::SourceSpan span, const miri::Value& lhs,
                            const miri::Value& rhs);
    miri::Value eval_cast(const Instr& in, const miri::Value& operand);

    /// Fused-load helper: dead-slot check, then register read or
    /// MemoryModel load — the exact LoadLocal tail.
    miri::Value load_slot(std::int32_t slot_index, std::int32_t reg,
                          std::uint32_t name_idx, support::SourceSpan span);

    void step(const support::SourceSpan& span);
    /// Two back-to-back step()s with nothing observable between them (the
    /// leading [Step, LoadLocal-entry] pair of every fused binary): bulk
    /// increment away from the limit, exact sequential replay near it so a
    /// step-limit panic reports the same span and count as the expansion.
    void step2(const support::SourceSpan& first,
               const support::SourceSpan& second) {
        if (steps_ + 2 <= limits_.max_steps) {
            steps_ += 2;
        } else {
            step(first);
            step(second);
        }
    }
    [[noreturn]] void panic(std::string message, support::SourceSpan span) const;
    [[nodiscard]] miri::AccessCtx access_ctx(support::SourceSpan span,
                                             bool atomic = false) const;
    miri::VectorClock& current_vc();

    // Side-table accessors for the packed Instr.
    [[nodiscard]] const support::SourceSpan& span_of(const Instr& in) const {
        return code_.spans[in.span];
    }
    [[nodiscard]] const lang::Type& type_of(const Instr& in) const {
        return *code_.types[in.type];
    }
    [[nodiscard]] const std::string& name_of(const Instr& in) const {
        return *static_cast<const std::string*>(code_.auxes[in.aux]);
    }
    [[nodiscard]] const std::string& name_at(std::uint32_t aux_idx) const {
        return *static_cast<const std::string*>(code_.auxes[aux_idx]);
    }
    [[nodiscard]] const lang::Type& operand_type_of(const Instr& in) const {
        return *static_cast<const lang::Type*>(code_.auxes[in.aux]);
    }

    const lang::Program& program_;
    const VmProgram& code_;
    std::vector<std::int64_t> inputs_;
    miri::InterpLimits limits_;

    miri::MemoryModel mem_;
    std::vector<miri::Value> stack_;
    std::vector<SlotState> slots_;
    std::vector<miri::Value> regs_;  // promoted locals (optimized tier)
    std::vector<Frame> frames_;
    std::vector<miri::AllocId> static_slots_;
    std::int32_t pc_ = 0;

    miri::ThreadId current_thread_ = 0;
    std::vector<ThreadState> threads_;
    miri::VectorClock main_vc_;
    std::vector<MutexState> mutexes_;
    std::map<std::pair<miri::AllocId, std::uint64_t>, miri::VectorClock>
        atomic_vcs_;
    bool multithreaded_ = false;

    std::vector<std::string> output_;
    std::uint64_t steps_ = 0;
    std::uint32_t call_depth_ = 0;
};

}  // namespace rustbrain::vm
