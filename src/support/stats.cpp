#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rustbrain::support {

void RunningStats::add(double sample) {
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        if (sample < min_) min_ = sample;
        if (sample > max_) max_ = sample;
    }
    ++count_;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double normal_cdf(double x) {
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double z_critical(double confidence) {
    if (confidence <= 0.0 || confidence >= 1.0) {
        throw std::invalid_argument("z_critical: confidence must be in (0,1)");
    }
    // Common levels, exact table values.
    if (std::abs(confidence - 0.90) < 1e-12) return 1.6448536269514722;
    if (std::abs(confidence - 0.95) < 1e-12) return 1.959963984540054;
    if (std::abs(confidence - 0.99) < 1e-12) return 2.5758293035489004;
    // Bisection on the CDF for anything else.
    const double target = 1.0 - (1.0 - confidence) / 2.0;
    double lo = 0.0;
    double hi = 10.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (normal_cdf(mid) < target) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

ConfidenceInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double confidence) {
    if (trials == 0) {
        return {0.0, 1.0};
    }
    if (successes > trials) {
        throw std::invalid_argument("wilson_interval: successes > trials");
    }
    const double z = z_critical(confidence);
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double margin =
        (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
    double lower = center - margin;
    double upper = center + margin;
    // At the boundaries the Wilson bound is exactly p; pin it so callers can
    // rely on contains(p) despite floating-point rounding.
    if (successes == 0) lower = 0.0;
    if (successes == trials) upper = 1.0;
    if (lower < 0.0) lower = 0.0;
    if (upper > 1.0) upper = 1.0;
    return {lower, upper};
}

ConfidenceInterval mean_interval(const RunningStats& stats, double confidence) {
    if (stats.count() == 0) {
        return {0.0, 0.0};
    }
    const double z = z_critical(confidence);
    const double margin =
        z * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
    return {stats.mean() - margin, stats.mean() + margin};
}

double mean_of(const std::vector<double>& samples) {
    if (samples.empty()) return 0.0;
    double total = 0.0;
    for (double sample : samples) total += sample;
    return total / static_cast<double>(samples.size());
}

Reservoir::Reservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(derive_seed(seed, "reservoir")) {
    samples_.reserve(capacity_);
}

void Reservoir::add(double sample) {
    ++seen_;
    if (capacity_ == 0) return;
    if (samples_.size() < capacity_) {
        samples_.push_back(sample);
        return;
    }
    // Algorithm R: the nth arrival replaces a uniformly chosen slot with
    // probability capacity/n, so every arrival is kept with equal chance.
    const std::uint64_t slot = rng_.next_below(seen_);
    if (slot < capacity_) samples_[slot] = sample;
}

double Reservoir::percentile(double fraction) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    if (fraction < 0.0) fraction = 0.0;
    if (fraction > 1.0) fraction = 1.0;
    const auto index = static_cast<std::size_t>(
        fraction * static_cast<double>(sorted.size() - 1));
    return sorted[index];
}

}  // namespace rustbrain::support
