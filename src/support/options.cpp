#include "support/options.hpp"

#include <stdexcept>

#include "support/strings.hpp"

namespace rustbrain::support {

OptionMap OptionMap::parse(const std::string& spec) {
    OptionMap options;
    for (const std::string& entry : split(spec, ',')) {
        if (entry.empty()) continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0) {
            throw std::invalid_argument(
                "malformed option '" + entry +
                "' (expected key=value[,key=value...])");
        }
        options.values[entry.substr(0, eq)] = entry.substr(eq + 1);
    }
    return options;
}

std::string OptionMap::get(const std::string& key,
                           const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
}

double OptionMap::get_double(const std::string& key, double fallback) const {
    auto it = values.find(key);
    if (it == values.end()) return fallback;
    // Fail loudly on trailing junk ("0.5x"), not just on unparseable text.
    try {
        std::size_t consumed = 0;
        const double value = std::stod(it->second, &consumed);
        if (consumed == it->second.size()) return value;
    } catch (...) {
    }
    throw std::invalid_argument("option " + key + "=" + it->second +
                                " is not a number");
}

int OptionMap::get_int(const std::string& key, int fallback) const {
    auto it = values.find(key);
    if (it == values.end()) return fallback;
    try {
        std::size_t consumed = 0;
        const int value = std::stoi(it->second, &consumed);
        if (consumed == it->second.size()) return value;
    } catch (...) {
    }
    throw std::invalid_argument("option " + key + "=" + it->second +
                                " is not an integer");
}

std::uint64_t OptionMap::get_u64(const std::string& key,
                                 std::uint64_t fallback) const {
    auto it = values.find(key);
    if (it == values.end()) return fallback;
    // stoull accepts a leading '-' (wrapping to a huge value); reject it.
    try {
        if (it->second.empty() || it->second[0] == '-') {
            throw std::invalid_argument(it->second);
        }
        std::size_t consumed = 0;
        const std::uint64_t value = std::stoull(it->second, &consumed);
        if (consumed == it->second.size()) return value;
    } catch (...) {
    }
    throw std::invalid_argument("option " + key + "=" + it->second +
                                " is not an unsigned integer");
}

bool OptionMap::get_bool(const std::string& key, bool fallback) const {
    auto it = values.find(key);
    if (it == values.end()) return fallback;
    const std::string& value = it->second;
    if (value == "on" || value == "true" || value == "yes" || value == "1") {
        return true;
    }
    if (value == "off" || value == "false" || value == "no" || value == "0") {
        return false;
    }
    throw std::invalid_argument("option " + key + "=" + value +
                                " is not a boolean (use on/off)");
}

void OptionMap::check_known(std::initializer_list<const char*> known) const {
    for (const auto& [key, value] : values) {
        bool found = false;
        for (const char* candidate : known) {
            if (key == candidate) {
                found = true;
                break;
            }
        }
        if (!found) {
            std::string message =
                "unknown option '" + key + "'; understood options are:";
            for (const char* candidate : known) {
                message += ' ';
                message += candidate;
            }
            throw std::invalid_argument(message);
        }
    }
}

}  // namespace rustbrain::support
