// Plain-text table rendering for the benchmark harness. Every figure/table
// bench prints its series through this so output is uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace rustbrain::support {

class TextTable {
  public:
    explicit TextTable(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);
    [[nodiscard]] std::string render() const;
    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace rustbrain::support
