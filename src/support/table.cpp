#include "support/table.hpp"

#include <algorithm>
#include <stdexcept>

namespace rustbrain::support {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) {
        throw std::invalid_argument("TextTable: need at least one column");
    }
}

void TextTable::add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
        widths[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    }

    auto render_row = [&](const std::vector<std::string>& cells) {
        std::string line = "|";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            line += ' ';
            line += cells[i];
            line.append(widths[i] - cells[i].size(), ' ');
            line += " |";
        }
        line += '\n';
        return line;
    };

    std::string separator = "|";
    for (std::size_t width : widths) {
        separator.append(width + 2, '-');
        separator += '|';
    }
    separator += '\n';

    std::string out = render_row(headers_);
    out += separator;
    for (const auto& row : rows_) {
        out += render_row(row);
    }
    return out;
}

}  // namespace rustbrain::support
