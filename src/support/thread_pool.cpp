#include "support/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <utility>

namespace rustbrain::support {

std::size_t ThreadPool::hardware_threads() {
    // Shared machines (CI, build boxes) tune sweep width without touching
    // code: a positive RUSTBRAIN_WORKERS wins over the detected core count.
    // BatchReport.workers_used reflects whatever this returns.
    if (const char* env = std::getenv("RUSTBRAIN_WORKERS")) {
        char* end = nullptr;
        const long value = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && value > 0) {
            return static_cast<std::size_t>(value);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
    const std::size_t count = threads == 0 ? hardware_threads() : threads;
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    job_ready_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::worker_loop(std::size_t worker_id) {
    while (true) {
        std::function<void(std::size_t)> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            job_ready_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
            if (jobs_.empty()) return;  // stopping_
            job = std::move(jobs_.front());
            jobs_.pop();
            ++in_flight_;
        }
        try {
            job(worker_id);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_) first_error_ = std::current_exception();
        }
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0 && jobs_.empty()) idle_.notify_all();
        }
    }
}

void ThreadPool::submit(std::function<void()> job) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        jobs_.emplace([job = std::move(job)](std::size_t) { job(); });
    }
    job_ready_.notify_one();
}

void ThreadPool::wait_idle() {
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this] { return jobs_.empty() && in_flight_ == 0; });
        error = std::exchange(first_error_, nullptr);
    }
    if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t index, std::size_t worker)>& body) {
    if (count == 0) return;
    auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
    auto failed = std::make_shared<std::atomic<bool>>(false);
    // One driver job per worker; each drains the shared cursor so indices
    // are load-balanced regardless of per-index cost.
    const std::size_t drivers = workers_.size() < count ? workers_.size() : count;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t d = 0; d < drivers; ++d) {
            jobs_.emplace([cursor, failed, count, &body](std::size_t worker) {
                while (!failed->load(std::memory_order_relaxed)) {
                    const std::size_t index =
                        cursor->fetch_add(1, std::memory_order_relaxed);
                    if (index >= count) return;
                    try {
                        body(index, worker);
                    } catch (...) {
                        failed->store(true, std::memory_order_relaxed);
                        throw;
                    }
                }
            });
        }
    }
    job_ready_.notify_all();
    wait_idle();
}

}  // namespace rustbrain::support
