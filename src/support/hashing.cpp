#include "support/hashing.hpp"

namespace rustbrain::support {

std::uint64_t fnv1a64_u64(std::uint64_t value, std::uint64_t seed) {
    std::uint64_t h = seed;
    for (int i = 0; i < 8; ++i) {
        h ^= (value >> (8 * i)) & 0xFFU;
        h *= kFnvPrime;
    }
    return h;
}

}  // namespace rustbrain::support
