#include "support/sim_clock.hpp"

#include <stdexcept>

namespace rustbrain::support {

void SimClock::charge(const std::string& category, double milliseconds) {
    if (milliseconds < 0.0) {
        throw std::invalid_argument("SimClock::charge: negative time");
    }
    now_ms_ += milliseconds;
    by_category_[category] += milliseconds;
}

double SimClock::total_for(const std::string& category) const {
    auto it = by_category_.find(category);
    return it == by_category_.end() ? 0.0 : it->second;
}

void SimClock::reset() {
    now_ms_ = 0.0;
    by_category_.clear();
}

ClockPhase::ClockPhase(SimClock& clock, std::string phase)
    : clock_(clock), phase_(std::move(phase)), start_ms_(clock.now_ms()) {}

ClockPhase::~ClockPhase() {
    clock_.charge("phase:" + phase_, 0.0);  // ensure the key exists
}

double ClockPhase::elapsed_ms() const { return clock_.now_ms() - start_ms_; }

}  // namespace rustbrain::support
