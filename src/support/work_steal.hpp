// WorkStealScheduler — per-worker deques with steal-on-idle, layered on
// ThreadPool.
//
// ThreadPool::parallel_for load-balances a *closed* index range; a
// long-lived service needs the open-ended shape: tasks trickle in forever,
// and a worker that drains its own deque should take work from a loaded
// sibling instead of sleeping. The scheduler pins one driver job per
// ThreadPool worker for its whole lifetime; submissions land round-robin
// on per-worker deques; owners pop newest-first (LIFO keeps a worker's
// working set warm), thieves steal oldest-first (FIFO takes the work the
// owner would reach last). Steal counts and per-worker execution tallies
// are exposed so imbalance is measurable, not guessed.
//
// Exceptions thrown by tasks are captured and rethrown on the next
// wait_idle() (first one wins), mirroring ThreadPool's contract; the
// worker that caught one keeps serving.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "support/thread_pool.hpp"

namespace rustbrain::support {

class WorkStealScheduler {
  public:
    /// Runs on the worker that executed it; `worker` is in [0, size()).
    using Task = std::function<void(std::size_t worker)>;

    struct Stats {
        std::uint64_t submitted = 0;
        std::uint64_t steals = 0;  // tasks executed off another worker's deque
        std::vector<std::uint64_t> executed;  // per worker
    };

    /// Occupies every worker of `pool` for the scheduler's lifetime; the
    /// pool must outlive the scheduler and must not be used for anything
    /// else while it lives.
    explicit WorkStealScheduler(ThreadPool& pool);
    ~WorkStealScheduler();

    WorkStealScheduler(const WorkStealScheduler&) = delete;
    WorkStealScheduler& operator=(const WorkStealScheduler&) = delete;

    /// Enqueue one task (thread-safe; round-robin over the worker deques).
    void submit(Task task);

    /// Block until every submitted task has finished, then rethrow the
    /// first captured task exception (if any).
    void wait_idle();

    [[nodiscard]] std::size_t size() const { return deques_.size(); }
    [[nodiscard]] Stats stats() const;

  private:
    struct WorkerDeque {
        mutable std::mutex mutex;
        std::deque<Task> tasks;
        std::uint64_t executed = 0;
    };

    void worker_loop(std::size_t worker);
    /// Pop from our own deque (back = newest), else steal from a sibling
    /// (front = oldest). `stolen` reports which happened.
    bool try_take(std::size_t worker, Task& task, bool& stolen);

    ThreadPool& pool_;
    std::vector<std::unique_ptr<WorkerDeque>> deques_;
    mutable std::mutex sleep_mutex_;
    std::condition_variable work_ready_;
    std::condition_variable all_done_;
    std::uint64_t queued_ = 0;       // submitted, not yet taken
    std::uint64_t outstanding_ = 0;  // submitted, not yet finished
    std::uint64_t submitted_ = 0;
    std::uint64_t steals_ = 0;
    std::uint64_t next_target_ = 0;  // round-robin submission cursor
    bool stopping_ = false;
    std::exception_ptr first_error_;
};

}  // namespace rustbrain::support
