// Stable hashing utilities (FNV-1a) used for seed derivation and AST feature
// hashing. std::hash is not stable across implementations, so everything
// that influences experiment results goes through these.
#pragma once

#include <cstdint>
#include <string_view>

namespace rustbrain::support {

constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

constexpr std::uint64_t fnv1a64(std::string_view text,
                                std::uint64_t seed = kFnvOffsetBasis) {
    std::uint64_t h = seed;
    for (char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= kFnvPrime;
    }
    return h;
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
    // 64-bit variant of boost::hash_combine's mixing constant.
    return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

std::uint64_t fnv1a64_u64(std::uint64_t value, std::uint64_t seed = kFnvOffsetBasis);

}  // namespace rustbrain::support
