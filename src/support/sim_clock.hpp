// Deterministic virtual time.
//
// Table I compares repair latency (RustBrain with/without knowledge base vs
// human experts). Real wall-clock of a simulator says nothing about that, so
// every modelled operation — LLM calls (token-proportional), MiriLite runs,
// KB queries, agent bookkeeping, rollbacks — charges virtual milliseconds to
// a SimClock. All reported "times" in the benches are virtual.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace rustbrain::support {

class SimClock {
  public:
    /// Advance time, attributing the charge to a named category
    /// (e.g. "llm", "miri", "kb", "rollback").
    void charge(const std::string& category, double milliseconds);

    [[nodiscard]] double now_ms() const { return now_ms_; }
    [[nodiscard]] double total_for(const std::string& category) const;
    [[nodiscard]] const std::map<std::string, double>& breakdown() const {
        return by_category_;
    }

    void reset();

  private:
    double now_ms_ = 0.0;
    std::map<std::string, double> by_category_;
};

/// RAII scope that measures nothing itself but marks a named phase; on
/// destruction it adds the phase's accumulated charge to a parent counter.
/// Used by the report generator to split fast- vs slow-thinking time.
class ClockPhase {
  public:
    ClockPhase(SimClock& clock, std::string phase);
    ~ClockPhase();
    ClockPhase(const ClockPhase&) = delete;
    ClockPhase& operator=(const ClockPhase&) = delete;

    [[nodiscard]] double elapsed_ms() const;

  private:
    SimClock& clock_;
    std::string phase_;
    double start_ms_;
};

}  // namespace rustbrain::support
