// ZipfSampler — deterministic zipfian rank sampling.
//
// Realistic repeated traffic is skewed: a few cases dominate while a long
// tail appears once. The traffic-replay bench (and any forge workload that
// wants realistic repetition) draws case indices from Zipf(s) over n ranks:
// P(rank k) proportional to 1 / (k+1)^s. s = 0 degenerates to uniform;
// larger s concentrates mass on the smallest ranks. Sampling inverts the
// precomputed CDF with a binary search, so a draw is O(log n) and the
// sequence is a pure function of (n, s, rng seed) — the same determinism
// contract as every other stochastic component (support/rng.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace rustbrain::support {

class ZipfSampler {
  public:
    /// Distribution over ranks [0, n). `n` must be > 0; `skew` must be
    /// >= 0 and finite. Throws std::invalid_argument otherwise.
    ZipfSampler(std::size_t n, double skew);

    /// Draw one rank using `rng` (callers own the stream, so the same
    /// sampler can serve several independent deterministic sequences).
    [[nodiscard]] std::size_t sample(Rng& rng) const;

    [[nodiscard]] std::size_t size() const { return cdf_.size(); }
    [[nodiscard]] double skew() const { return skew_; }
    /// P(rank) — exposed for tests and for reporting expected repetition.
    [[nodiscard]] double probability(std::size_t rank) const;

  private:
    double skew_ = 0.0;
    std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); back() == 1.0
};

}  // namespace rustbrain::support
