// Source locations and spans for mini-Rust diagnostics.
#pragma once

#include <cstdint>
#include <string>

namespace rustbrain::support {

/// A half-open byte range [begin, end) into a source buffer, with 1-based
/// line/column of the start for human-readable diagnostics.
struct SourceSpan {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint32_t line = 0;
    std::uint32_t column = 0;

    [[nodiscard]] bool valid() const { return line != 0; }
    [[nodiscard]] std::uint32_t length() const { return end > begin ? end - begin : 0; }

    /// Smallest span covering both operands (line/column taken from the
    /// earlier one).
    [[nodiscard]] SourceSpan merge(const SourceSpan& other) const {
        SourceSpan out = begin <= other.begin ? *this : other;
        out.end = end > other.end ? end : other.end;
        return out;
    }

    [[nodiscard]] std::string to_string() const {
        return std::to_string(line) + ":" + std::to_string(column);
    }
};

}  // namespace rustbrain::support
