// Statistics used by the evaluation harness: running moments and the
// confidence intervals reported in RQ3 (Fig 11, 95% CIs on pass/exec rates).
#pragma once

#include <cstddef>
#include <vector>

namespace rustbrain::support {

/// Welford running mean/variance.
class RunningStats {
  public:
    void add(double sample);
    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double variance() const;  // sample variance (n-1)
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

struct ConfidenceInterval {
    double lower = 0.0;
    double upper = 0.0;
    [[nodiscard]] double width() const { return upper - lower; }
    [[nodiscard]] bool contains(double value) const {
        return value >= lower && value <= upper;
    }
};

/// Wilson score interval for a binomial proportion — the right tool for
/// pass/exec rates with modest n (plain normal intervals can escape [0,1]).
ConfidenceInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double confidence = 0.95);

/// Normal-approximation interval for a mean given per-trial samples.
ConfidenceInterval mean_interval(const RunningStats& stats, double confidence = 0.95);

/// Two-sided critical z for a confidence level (0.90 / 0.95 / 0.99 are exact
/// table entries; other inputs are resolved by bisection on the normal CDF).
double z_critical(double confidence);

/// Standard normal CDF.
double normal_cdf(double x);

/// Arithmetic mean of a vector (0.0 for empty input).
double mean_of(const std::vector<double>& samples);

}  // namespace rustbrain::support
