// Statistics used by the evaluation harness: running moments and the
// confidence intervals reported in RQ3 (Fig 11, 95% CIs on pass/exec rates).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace rustbrain::support {

/// Welford running mean/variance.
class RunningStats {
  public:
    void add(double sample);
    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double variance() const;  // sample variance (n-1)
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

struct ConfidenceInterval {
    double lower = 0.0;
    double upper = 0.0;
    [[nodiscard]] double width() const { return upper - lower; }
    [[nodiscard]] bool contains(double value) const {
        return value >= lower && value <= upper;
    }
};

/// Wilson score interval for a binomial proportion — the right tool for
/// pass/exec rates with modest n (plain normal intervals can escape [0,1]).
ConfidenceInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double confidence = 0.95);

/// Normal-approximation interval for a mean given per-trial samples.
ConfidenceInterval mean_interval(const RunningStats& stats, double confidence = 0.95);

/// Two-sided critical z for a confidence level (0.90 / 0.95 / 0.99 are exact
/// table entries; other inputs are resolved by bisection on the normal CDF).
double z_critical(double confidence);

/// Standard normal CDF.
double normal_cdf(double x);

/// Arithmetic mean of a vector (0.0 for empty input).
double mean_of(const std::vector<double>& samples);

/// Bounded uniform sample of an unbounded stream (Vitter's Algorithm R)
/// with a deterministic internal generator: the kept set is a pure function
/// of (capacity, seed, arrival sequence), so percentile reports are
/// reproducible given the same stream — no wall-clock, no global RNG.
/// Memory is capped at `capacity` doubles no matter how long the stream
/// runs; ServiceStats uses this for queue-latency p50/p95/p99.
class Reservoir {
  public:
    explicit Reservoir(std::size_t capacity = 512, std::uint64_t seed = 0);

    void add(double sample);
    /// Samples offered so far (>= size()).
    [[nodiscard]] std::uint64_t seen() const { return seen_; }
    /// Samples currently kept (<= capacity()).
    [[nodiscard]] std::size_t size() const { return samples_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    /// Percentile over the kept samples: sorted copy, index
    /// fraction * (n - 1) (the bench percentile convention). 0.0 when empty.
    [[nodiscard]] double percentile(double fraction) const;

  private:
    std::size_t capacity_;
    Rng rng_;
    std::vector<double> samples_;
    std::uint64_t seen_ = 0;
};

}  // namespace rustbrain::support
