// LruMap — a bounded map with true least-recently-used eviction.
//
// The shared caches (llm::PromptCache, verify::VerifyCache) used to bound
// growth by flushing a whole shard when it hit its cap, which drops hot
// entries along with cold ones — fine for one-shot sweeps, hostile to a
// long-lived service whose whole value is keeping the hot set warm across
// requests. LruMap keeps an access-ordered list next to the index: find()
// moves an entry to the front, insertion past capacity evicts from the
// back, and every eviction records how long the victim had been idle (in
// accesses), so cache pressure is observable instead of silent.
//
// The legacy behavior survives behind EvictionPolicy::FlushOnCap (a full
// clear() when the cap is reached) for comparison and regression coverage;
// both policies are pure performance knobs — the caches' bit-identity
// contract means dropping any entry is always safe.
//
// Not thread-safe by itself: callers shard and lock exactly as they did
// around the unordered_map this replaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace rustbrain::support {

enum class EvictionPolicy {
    Lru,         // evict the least-recently-used entry, one at a time
    FlushOnCap,  // legacy: drop the whole map when the cap is reached
};

struct LruStats {
    std::uint64_t evictions = 0;  // single-entry LRU evictions
    std::uint64_t flushes = 0;    // whole-map FlushOnCap drops
    /// Sum over evictions of how many accesses ago the victim was last
    /// touched; evicted_idle_ticks / evictions = mean idle age at eviction.
    std::uint64_t evicted_idle_ticks = 0;
};

template <typename Key, typename Value>
class LruMap {
  public:
    LruMap() = default;

    /// Both knobs, applied before first use (the shard arrays that hold
    /// LruMaps are default-constructed). `capacity` 0 means 1.
    void configure(EvictionPolicy policy, std::size_t capacity) {
        policy_ = policy;
        capacity_ = capacity == 0 ? 1 : capacity;
    }

    /// The entry for `key`, promoted to most-recently-used; null if absent.
    Value* find(const Key& key) {
        auto it = index_.find(key);
        if (it == index_.end()) return nullptr;
        ++tick_;
        it->second->last_touch = tick_;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->value;
    }

    /// The entry for `key` with no LRU promotion — for callers that must
    /// validate the entry first (hash-collision checks): a mismatching
    /// probe is a miss and must not refresh the colliding owner's slot.
    /// Promote with find() once the match check succeeds.
    Value* peek(const Key& key) {
        auto it = index_.find(key);
        return it == index_.end() ? nullptr : &it->second->value;
    }

    /// Insert a fresh entry as most-recently-used, evicting (or flushing)
    /// first when at capacity. Precondition: `key` is absent (callers
    /// always find() first under the same lock).
    Value& insert(const Key& key, Value value) {
        if (order_.size() >= capacity_) {
            if (policy_ == EvictionPolicy::FlushOnCap) {
                clear();
                ++stats_.flushes;
            } else {
                const Node& victim = order_.back();
                ++stats_.evictions;
                stats_.evicted_idle_ticks += tick_ - victim.last_touch;
                index_.erase(victim.key);
                order_.pop_back();
            }
        }
        ++tick_;
        order_.push_front(Node{key, std::move(value), tick_});
        index_.emplace(key, order_.begin());
        return order_.front().value;
    }

    void clear() {
        index_.clear();
        order_.clear();
    }

    [[nodiscard]] std::size_t size() const { return order_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] const LruStats& stats() const { return stats_; }

  private:
    struct Node {
        Key key;
        Value value;
        std::uint64_t last_touch = 0;
    };

    EvictionPolicy policy_ = EvictionPolicy::Lru;
    std::size_t capacity_ = 1;
    std::uint64_t tick_ = 0;  // access clock: one tick per find-hit/insert
    std::list<Node> order_;   // front = most recent, back = eviction victim
    std::unordered_map<Key, typename std::list<Node>::iterator> index_;
    LruStats stats_;
};

}  // namespace rustbrain::support
