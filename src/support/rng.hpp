// Deterministic random number generation.
//
// Every stochastic component in the reproduction (SimLLM sampling,
// hallucination injection, scheduler interleaving, dataset generation)
// derives its own stream from a global seed via named sub-seeding, so whole
// experiment runs are bit-identical across machines and reruns.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace rustbrain::support {

/// SplitMix64: used for seed derivation and as a cheap standalone generator.
class SplitMix64 {
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
    std::uint64_t next();

  private:
    std::uint64_t state_;
};

/// xoshiro256** — the main generator. Small, fast, high quality, and fully
/// deterministic given a seed (unlike std::mt19937 whose distributions are
/// implementation-defined; we implement our own distributions below).
class Rng {
  public:
    explicit Rng(std::uint64_t seed);

    std::uint64_t next_u64();
    /// Uniform in [0, bound) without modulo bias. bound must be > 0.
    std::uint64_t next_below(std::uint64_t bound);
    /// Uniform double in [0, 1).
    double next_double();
    /// Bernoulli trial.
    bool chance(double probability);
    /// Uniform int in [lo, hi] inclusive.
    std::int64_t next_range(std::int64_t lo, std::int64_t hi);
    /// Standard normal via Box–Muller (deterministic across platforms).
    double next_gaussian();

    /// Sample an index from unnormalized non-negative weights. Returns
    /// weights.size() - 1 on degenerate all-zero input with non-empty list.
    std::size_t sample_weighted(const std::vector<double>& weights);

    /// Derive a child generator from this one's seed and a name. Children
    /// with distinct names have independent streams.
    [[nodiscard]] Rng fork(std::string_view name) const;

    [[nodiscard]] std::uint64_t seed() const { return seed_; }

  private:
    std::uint64_t seed_;
    std::uint64_t state_[4];
    bool has_spare_gaussian_ = false;
    double spare_gaussian_ = 0.0;
};

/// Stable 64-bit seed derivation: combine a base seed with a name.
std::uint64_t derive_seed(std::uint64_t base, std::string_view name);

}  // namespace rustbrain::support
