#include "support/strings.hpp"

#include <cctype>
#include <cstdio>

namespace rustbrain::support {

std::vector<std::string> split(std::string_view text, char delimiter) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t pos = text.find(delimiter, start);
        if (pos == std::string_view::npos) {
            parts.emplace_back(text.substr(start));
            break;
        }
        parts.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return parts;
}

std::string_view trim(std::string_view text) {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
    return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view separator) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += separator;
        out += parts[i];
    }
    return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
    return text.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

std::string replace_all(std::string_view text, std::string_view from, std::string_view to) {
    if (from.empty()) return std::string(text);
    std::string out;
    std::size_t start = 0;
    for (;;) {
        const std::size_t pos = text.find(from, start);
        if (pos == std::string_view::npos) {
            out.append(text.substr(start));
            return out;
        }
        out.append(text.substr(start, pos - start));
        out.append(to);
        start = pos + from.size();
    }
}

std::string indent(std::string_view text, int spaces) {
    const std::string pad(static_cast<std::size_t>(spaces > 0 ? spaces : 0), ' ');
    std::string out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t pos = text.find('\n', start);
        const std::string_view line =
            pos == std::string_view::npos ? text.substr(start) : text.substr(start, pos - start);
        if (!line.empty()) {
            out += pad;
            out += line;
        }
        if (pos == std::string_view::npos) break;
        out += '\n';
        start = pos + 1;
    }
    return out;
}

std::string format_double(double value, int precision) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

}  // namespace rustbrain::support
