// Small string helpers used across the toolchain.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rustbrain::support {

std::vector<std::string> split(std::string_view text, char delimiter);
std::string_view trim(std::string_view text);
std::string join(const std::vector<std::string>& parts, std::string_view separator);
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
bool contains(std::string_view text, std::string_view needle);
std::string to_lower(std::string_view text);
std::string replace_all(std::string_view text, std::string_view from, std::string_view to);
/// Indent every line of `text` by `spaces` spaces.
std::string indent(std::string_view text, int spaces);
/// Format a double with fixed precision (locale-independent).
std::string format_double(double value, int precision);

}  // namespace rustbrain::support
