#include "support/diagnostics.hpp"

namespace rustbrain::support {

namespace {
const char* severity_name(Severity severity) {
    switch (severity) {
        case Severity::Note: return "note";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "unknown";
}
}  // namespace

std::string Diagnostic::to_string() const {
    std::string out = severity_name(severity);
    if (span.valid()) {
        out += " at ";
        out += span.to_string();
    }
    out += ": ";
    out += message;
    return out;
}

void DiagnosticEngine::error(std::string message, SourceSpan span) {
    diagnostics_.push_back({Severity::Error, std::move(message), span});
    ++error_count_;
}

void DiagnosticEngine::warning(std::string message, SourceSpan span) {
    diagnostics_.push_back({Severity::Warning, std::move(message), span});
}

void DiagnosticEngine::note(std::string message, SourceSpan span) {
    diagnostics_.push_back({Severity::Note, std::move(message), span});
}

std::string DiagnosticEngine::summary() const {
    std::string out;
    for (const auto& diagnostic : diagnostics_) {
        out += diagnostic.to_string();
        out += '\n';
    }
    return out;
}

void DiagnosticEngine::clear() {
    diagnostics_.clear();
    error_count_ = 0;
}

}  // namespace rustbrain::support
