#include "support/rng.hpp"

#include <cmath>
#include <stdexcept>

#include "support/hashing.hpp"

namespace rustbrain::support {

std::uint64_t SplitMix64::next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
    SplitMix64 seeder(seed);
    for (auto& word : state_) {
        word = seeder.next();
    }
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
    if (bound == 0) {
        throw std::invalid_argument("Rng::next_below: bound must be > 0");
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t sample = next_u64();
        if (sample >= threshold) {
            return sample % bound;
        }
    }
}

double Rng::next_double() {
    // 53 high bits -> [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double probability) {
    if (probability <= 0.0) return false;
    if (probability >= 1.0) return true;
    return next_double() < probability;
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) {
        throw std::invalid_argument("Rng::next_range: lo > hi");
    }
    const std::uint64_t width = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(width == 0 ? next_u64() : next_below(width));
}

double Rng::next_gaussian() {
    if (has_spare_gaussian_) {
        has_spare_gaussian_ = false;
        return spare_gaussian_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
        u = 2.0 * next_double() - 1.0;
        v = 2.0 * next_double() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_gaussian_ = v * factor;
    has_spare_gaussian_ = true;
    return u * factor;
}

std::size_t Rng::sample_weighted(const std::vector<double>& weights) {
    if (weights.empty()) {
        throw std::invalid_argument("Rng::sample_weighted: empty weights");
    }
    double total = 0.0;
    for (double weight : weights) {
        if (weight > 0.0) total += weight;
    }
    if (total <= 0.0) {
        return weights.size() - 1;
    }
    double pick = next_double() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] <= 0.0) continue;
        pick -= weights[i];
        if (pick <= 0.0) {
            return i;
        }
    }
    return weights.size() - 1;
}

Rng Rng::fork(std::string_view name) const {
    return Rng(derive_seed(seed_, name));
}

std::uint64_t derive_seed(std::uint64_t base, std::string_view name) {
    std::uint64_t h = fnv1a64(name);
    SplitMix64 mixer(base ^ h);
    // A couple of rounds decorrelates adjacent bases with identical names.
    mixer.next();
    return mixer.next();
}

}  // namespace rustbrain::support
