#include "support/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rustbrain::support {

ZipfSampler::ZipfSampler(std::size_t n, double skew) : skew_(skew) {
    if (n == 0) {
        throw std::invalid_argument("ZipfSampler: n must be > 0");
    }
    if (!(skew >= 0.0) || !std::isfinite(skew)) {
        throw std::invalid_argument("ZipfSampler: skew must be finite and >= 0");
    }
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
        cdf_[k] = total;
    }
    for (double& value : cdf_) value /= total;
    cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
    const double u = rng.next_double();  // in [0, 1)
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t rank) const {
    if (rank >= cdf_.size()) return 0.0;
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace rustbrain::support
