// Diagnostic accumulation shared by the lexer, parser, type checker and
// MiriLite. Diagnostics are values, not exceptions: UB findings are the
// *output* of the toolchain, not failures of it.
#pragma once

#include <string>
#include <vector>

#include "support/source_span.hpp"

namespace rustbrain::support {

enum class Severity { Note, Warning, Error };

struct Diagnostic {
    Severity severity = Severity::Error;
    std::string message;
    SourceSpan span;

    [[nodiscard]] std::string to_string() const;
};

/// Ordered collection of diagnostics with convenience emitters.
class DiagnosticEngine {
  public:
    void error(std::string message, SourceSpan span = {});
    void warning(std::string message, SourceSpan span = {});
    void note(std::string message, SourceSpan span = {});

    [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
    [[nodiscard]] std::size_t error_count() const { return error_count_; }
    [[nodiscard]] const std::vector<Diagnostic>& all() const { return diagnostics_; }
    [[nodiscard]] std::string summary() const;
    void clear();

  private:
    std::vector<Diagnostic> diagnostics_;
    std::size_t error_count_ = 0;
};

}  // namespace rustbrain::support
