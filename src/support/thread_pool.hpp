// Fixed-size worker pool for corpus-scale fan-out.
//
// Two usage modes:
//   * submit(job)            — fire-and-collect individual jobs;
//   * parallel_for(n, body)  — run body(index, worker) for every index in
//     [0, n), load-balanced over the workers via an atomic cursor. The
//     worker id is stable for the duration of one parallel_for, so callers
//     can keep one expensive engine (e.g. a RustBrain instance) per worker.
//
// Exceptions thrown by jobs are captured and rethrown on the calling
// thread (first one wins); remaining indices are drained without running.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rustbrain::support {

class ThreadPool {
  public:
    /// `threads == 0` means hardware_threads().
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Enqueue one job; wait_idle() blocks until all submitted jobs finish.
    void submit(std::function<void()> job);

    /// Block until the queue is empty and every worker is idle, then rethrow
    /// the first exception any job raised (if any).
    void wait_idle();

    /// Run body(index, worker) for every index in [0, count). Blocks until
    /// done; rethrows the first job exception. `worker` is in [0, size()).
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t index,
                                               std::size_t worker)>& body);

    /// A positive RUSTBRAIN_WORKERS env value if set, else
    /// max(1, std::thread::hardware_concurrency()).
    static std::size_t hardware_threads();

  private:
    void worker_loop(std::size_t worker_id);

    std::vector<std::thread> workers_;
    std::queue<std::function<void(std::size_t)>> jobs_;
    std::mutex mutex_;
    std::condition_variable job_ready_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
    std::exception_ptr first_error_;
};

}  // namespace rustbrain::support
