#include "support/work_steal.hpp"

#include <utility>

namespace rustbrain::support {

WorkStealScheduler::WorkStealScheduler(ThreadPool& pool) : pool_(pool) {
    deques_.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
        deques_.push_back(std::make_unique<WorkerDeque>());
    }
    // One driver per pool worker, pinned for the scheduler's lifetime. The
    // drivers are plain pool jobs, so the pool's own exception/idle
    // machinery stays untouched.
    for (std::size_t i = 0; i < deques_.size(); ++i) {
        pool_.submit([this, i] { worker_loop(i); });
    }
}

WorkStealScheduler::~WorkStealScheduler() {
    {
        const std::lock_guard<std::mutex> lock(sleep_mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    // Drivers drain their deques before exiting; once they return the pool
    // is idle and the deques can be torn down safely.
    pool_.wait_idle();
}

void WorkStealScheduler::submit(Task task) {
    std::size_t target = 0;
    {
        const std::lock_guard<std::mutex> lock(sleep_mutex_);
        target = next_target_++ % deques_.size();
    }
    {
        WorkerDeque& deque = *deques_[target];
        const std::lock_guard<std::mutex> lock(deque.mutex);
        deque.tasks.push_back(std::move(task));
    }
    {
        // Counters move only after the task is visible in a deque, so a
        // woken worker always finds what the predicate promised.
        const std::lock_guard<std::mutex> lock(sleep_mutex_);
        ++queued_;
        ++outstanding_;
        ++submitted_;
    }
    work_ready_.notify_one();
}

bool WorkStealScheduler::try_take(std::size_t worker, Task& task, bool& stolen) {
    {
        WorkerDeque& own = *deques_[worker];
        const std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.back());
            own.tasks.pop_back();  // LIFO on our own deque
            stolen = false;
            return true;
        }
    }
    for (std::size_t offset = 1; offset < deques_.size(); ++offset) {
        WorkerDeque& victim = *deques_[(worker + offset) % deques_.size()];
        const std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            task = std::move(victim.tasks.front());
            victim.tasks.pop_front();  // FIFO steal: take the oldest work
            stolen = true;
            return true;
        }
    }
    return false;
}

void WorkStealScheduler::worker_loop(std::size_t worker) {
    while (true) {
        Task task;
        bool stolen = false;
        if (try_take(worker, task, stolen)) {
            {
                const std::lock_guard<std::mutex> lock(sleep_mutex_);
                --queued_;
                if (stolen) ++steals_;
            }
            try {
                task(worker);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(sleep_mutex_);
                if (!first_error_) first_error_ = std::current_exception();
            }
            {
                WorkerDeque& own = *deques_[worker];
                const std::lock_guard<std::mutex> lock(own.mutex);
                ++own.executed;
            }
            bool done = false;
            {
                const std::lock_guard<std::mutex> lock(sleep_mutex_);
                --outstanding_;
                done = outstanding_ == 0;
            }
            if (done) all_done_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        work_ready_.wait(lock, [this] { return stopping_ || queued_ > 0; });
        if (stopping_ && queued_ == 0) return;
    }
}

void WorkStealScheduler::wait_idle() {
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        all_done_.wait(lock, [this] { return outstanding_ == 0; });
        error = std::exchange(first_error_, nullptr);
    }
    if (error) std::rethrow_exception(error);
}

WorkStealScheduler::Stats WorkStealScheduler::stats() const {
    Stats stats;
    {
        const std::lock_guard<std::mutex> lock(sleep_mutex_);
        stats.submitted = submitted_;
        stats.steals = steals_;
    }
    stats.executed.reserve(deques_.size());
    for (const auto& deque : deques_) {
        const std::lock_guard<std::mutex> lock(deque->mutex);
        stats.executed.push_back(deque->executed);
    }
    return stats;
}

}  // namespace rustbrain::support
