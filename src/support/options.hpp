// String-keyed option maps ("key=value,key=value") shared by every registry
// seam in the system: core::EngineRegistry builds repair engines from them
// and gen::GeneratorRegistry builds case generators. Typed getters parse on
// demand and fail loudly on junk; check_known() rejects stray keys with a
// message listing what IS understood, so a typo in a sweep or forge config
// fails fast instead of silently running defaults.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>

namespace rustbrain::support {

struct OptionMap {
    std::map<std::string, std::string> values;

    /// Parse a "key=value,key=value" spec (empty string => no options).
    /// Throws std::invalid_argument on a malformed entry.
    static OptionMap parse(const std::string& spec);

    [[nodiscard]] std::string get(const std::string& key,
                                  const std::string& fallback) const;
    [[nodiscard]] double get_double(const std::string& key, double fallback) const;
    [[nodiscard]] int get_int(const std::string& key, int fallback) const;
    [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                        std::uint64_t fallback) const;
    /// Accepts on/off, true/false, yes/no, 1/0.
    [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

    /// Throws std::invalid_argument naming the first key not in `known`.
    void check_known(std::initializer_list<const char*> known) const;
};

}  // namespace rustbrain::support
