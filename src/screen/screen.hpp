// Static UB pre-screener — constraint propagation over LoweredProgram.
//
// The screener is the rung between "no verify" and "full MiriLite" the
// ROADMAP names: an abstract interpreter that propagates value / bounds /
// initialization / borrow-state constraints over the slot-lowered program
// (reusing the dense indices from miri/lower.hpp — no name scans) and
// returns a three-point verdict lattice:
//
//   ProvenSafe   the screener walked every input run to completion through
//                constructs it models exactly and proved no UB fires. The
//                accompanying report (outputs + step count) is synthesized
//                and is byte-identical to what MiriLite would produce, so
//                verify::Oracle can skip interpretation entirely.
//   LikelyUB     a definite finding (category + span) on a concrete path —
//                advisory only; the Oracle still runs MiriLite, the verdict
//                feeds thinking policies and observability.
//   Unknown      anything the screener does not model: references, raw
//                pointers, heap intrinsics, threads/atomics, `become`,
//                non-singleton constraints reaching control flow, or the
//                op budget running out. Unknown is always sound.
//
// Soundness contract: ProvenSafe must NEVER contradict MiriLite. The
// screener guarantees this by construction — it only reports ProvenSafe
// when every abstract value on the executed path stayed a singleton
// interval (exact), every construct was one it mirrors operation-for-
// operation (including step accounting and output formatting), and every
// run finished cleanly within the interpreter limits. Everything else
// degrades to Unknown; errors never escape screen_program (asserted over
// the hand-written + forged corpora in tests/screen_soundness_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "miri/finding.hpp"
#include "miri/interp.hpp"
#include "miri/lower.hpp"
#include "miri/mirilite.hpp"
#include "support/source_span.hpp"

namespace rustbrain::screen {

/// Closed signed interval [lo, hi] — the screener's value-constraint
/// domain. Concrete execution keeps every interval a singleton; joins (and
/// the full range) exist for the lattice operations the checks are written
/// against, so widening a future non-concrete source of values (symbolic
/// inputs, merged branches) slots in without touching the checks.
struct Interval {
    std::int64_t lo = 0;
    std::int64_t hi = 0;

    static Interval singleton(std::int64_t value) { return {value, value}; }
    static Interval full();
    /// The representable range of an integer of `size_bytes` bytes
    /// (size_bytes < 8; 8-byte widths use the hardware-overflow path).
    static Interval type_range(std::uint64_t size_bytes, bool is_signed);

    [[nodiscard]] bool is_singleton() const { return lo == hi; }
    [[nodiscard]] bool contains(std::int64_t value) const {
        return lo <= value && value <= hi;
    }
    /// True when every value of this interval lies inside `other`.
    [[nodiscard]] bool within(const Interval& other) const {
        return other.lo <= lo && hi <= other.hi;
    }
    [[nodiscard]] Interval join(const Interval& other) const {
        return {lo < other.lo ? lo : other.lo, hi > other.hi ? hi : other.hi};
    }
};

enum class VerdictKind {
    ProvenSafe,
    LikelyUB,
    Unknown,
};

/// "proven-safe" / "likely-ub" / "unknown" (trace labels, bench columns).
const char* verdict_kind_name(VerdictKind kind);

struct ScreenOptions {
    /// Abstract-op budget per screening (all runs together). Exhausting it
    /// degrades to Unknown — screening must stay strictly cheaper than the
    /// interpretation it tries to skip.
    std::uint64_t max_ops = 250'000;
};

struct ScreenVerdict {
    VerdictKind kind = VerdictKind::Unknown;
    /// ProvenSafe = 1.0 (exact on the modelled subset), LikelyUB = 0.95
    /// (the concrete path is exact but MiriLite stays the authority),
    /// Unknown = 0.0.
    double confidence = 0.0;
    /// Pinned category; meaningful only when kind == LikelyUB.
    miri::UbCategory category = miri::UbCategory::Panic;
    /// Site of the definite finding (LikelyUB only).
    support::SourceSpan span;
    /// Finding message (LikelyUB) or the degradation reason (Unknown).
    std::string detail;
    /// Abstract ops spent screening — the verdict's cost.
    std::uint64_t ops = 0;
};

struct ScreenResult {
    ScreenVerdict verdict;
    /// Valid only when verdict.kind == ProvenSafe: the exact MiriReport
    /// (per-run outputs, summed steps, no findings) MiriLite would have
    /// produced, ready for verify::Oracle to return without interpreting.
    miri::MiriReport report;
};

/// Screen `program` (paired with its exact lowering — see miri/lower.hpp)
/// against every input vector, mirroring verify::Oracle::interpret's run
/// normalization (an empty `input_sets` means one run with no inputs).
/// Never throws: every internal error degrades to an Unknown verdict.
[[nodiscard]] ScreenResult screen_program(
    const lang::Program& program, const miri::LoweredProgram& lowering,
    const std::vector<std::vector<std::int64_t>>& input_sets,
    const miri::InterpLimits& limits, const ScreenOptions& options = {});

}  // namespace rustbrain::screen
